#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/stopwatch.hpp"

namespace micco::service {

namespace {

// Envelope geometry: {"v":1,"crc":"<16 hex>","rec":<record>}
//                    |-- 14 ---|---16---|--- 8 --|
inline constexpr std::string_view kEnvelopePrefix = "{\"v\":1,\"crc\":\"";
inline constexpr std::string_view kEnvelopeSeparator = "\",\"rec\":";
inline constexpr std::size_t kCrcBegin = 14;
inline constexpr std::size_t kCrcLen = 16;
inline constexpr std::size_t kRecBegin = 38;  // 14 + 16 + 8
/// prefix + crc + separator + at least "{}" + closing '}'.
inline constexpr std::size_t kMinLineBytes = kRecBegin + 3;

bool is_hex_lower(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

// -- EINTR-retrying durability wrappers -------------------------------------
// The only raw ::write/::fsync calls in the tree (micco-lint:
// raw-durability-io). Both retry interrupted syscalls; write_all also
// resumes short writes so a journal line is either fully appended or the
// caller learns it was not.

bool write_all(int fd, const char* data, std::size_t size, int* err_out) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *err_out = errno;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_retry(int fd, int* err_out) {
  for (;;) {
    if (::fsync(fd) == 0) return true;
    if (errno == EINTR) continue;
    *err_out = errno;
    return false;
  }
}

/// fsyncs the directory containing `path` — the classic WAL directory-sync
/// step. A newly created journal file (or a truncation's new size) is only
/// durable once the directory entry itself is; without this, a power loss
/// can forget the file existed, or resurrect a torn tail that recovery
/// believed it removed.
bool fsync_parent_dir(const std::string& path, int* err_out) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : path.substr(0, slash == 0 ? 1 : slash);
  int fd = -1;
  for (;;) {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) {
    *err_out = errno;
    return false;
  }
  const bool ok = fsync_retry(fd, err_out);
  ::close(fd);
  return ok;
}

}  // namespace

std::string fnv1a64_hex(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  std::string hex;
  hex.reserve(kCrcLen);
  for (int nibble = 15; nibble >= 0; --nibble) {
    hex += "0123456789abcdef"[(hash >> (nibble * 4)) & 0xf];
  }
  return hex;
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

std::optional<FsyncPolicy> parse_fsync_policy(const std::string& text) {
  if (text == "never") return FsyncPolicy::kNever;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "always") return FsyncPolicy::kAlways;
  return std::nullopt;
}

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::kAdmitted: return "admitted";
    case RecordKind::kDispatched: return "dispatched";
    case RecordKind::kFinished: return "finished";
  }
  return "?";
}

namespace {

std::optional<RecordKind> parse_record_kind(const std::string& text) {
  if (text == "admitted") return RecordKind::kAdmitted;
  if (text == "dispatched") return RecordKind::kDispatched;
  if (text == "finished") return RecordKind::kFinished;
  return std::nullopt;
}

obs::JsonValue record_to_json(const JournalRecord& record) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("kind", to_string(record.kind));
  doc.set("job", record.job_id);
  switch (record.kind) {
    case RecordKind::kAdmitted:
      doc.set("tenant", record.tenant);
      if (!record.name.empty()) doc.set("name", record.name);
      if (!record.trace_id.empty()) doc.set("trace", record.trace_id);
      if (!record.idem.empty()) doc.set("idem", record.idem);
      doc.set("workload", record.workload_text);
      break;
    case RecordKind::kDispatched:
      break;
    case RecordKind::kFinished:
      doc.set("state", record.state);
      if (!record.error.empty()) doc.set("error", record.error);
      if (record.has_result) {
        doc.set("digest", fnv1a64_hex(record.result.dump()));
        doc.set("result", record.result);
      }
      break;
  }
  return doc;
}

std::optional<JournalRecord> record_from_json(const obs::JsonValue& doc) {
  if (doc.kind() != obs::JsonValue::Kind::kObject) return std::nullopt;
  const obs::JsonValue* kind_field = doc.find("kind");
  if (kind_field == nullptr ||
      kind_field->kind() != obs::JsonValue::Kind::kString) {
    return std::nullopt;
  }
  const std::optional<RecordKind> kind =
      parse_record_kind(kind_field->as_string());
  if (!kind.has_value()) return std::nullopt;
  const obs::JsonValue* job = doc.find("job");
  if (job == nullptr || job->kind() != obs::JsonValue::Kind::kInt ||
      job->as_int() < 0) {
    return std::nullopt;
  }

  JournalRecord record;
  record.kind = *kind;
  record.job_id = static_cast<std::uint64_t>(job->as_int());

  const auto take_string = [&doc](const char* key, std::string* out) {
    const obs::JsonValue* field = doc.find(key);
    if (field == nullptr) return true;  // optional field absent
    if (field->kind() != obs::JsonValue::Kind::kString) return false;
    *out = field->as_string();
    return true;
  };

  switch (*kind) {
    case RecordKind::kAdmitted: {
      const obs::JsonValue* tenant = doc.find("tenant");
      const obs::JsonValue* workload = doc.find("workload");
      if (tenant == nullptr ||
          tenant->kind() != obs::JsonValue::Kind::kString ||
          workload == nullptr ||
          workload->kind() != obs::JsonValue::Kind::kString) {
        return std::nullopt;
      }
      record.tenant = tenant->as_string();
      record.workload_text = workload->as_string();
      if (!take_string("name", &record.name) ||
          !take_string("trace", &record.trace_id) ||
          !take_string("idem", &record.idem)) {
        return std::nullopt;
      }
      break;
    }
    case RecordKind::kDispatched:
      break;
    case RecordKind::kFinished: {
      const obs::JsonValue* state = doc.find("state");
      if (state == nullptr ||
          state->kind() != obs::JsonValue::Kind::kString) {
        return std::nullopt;
      }
      record.state = state->as_string();
      if (record.state != "DONE" && record.state != "FAILED" &&
          record.state != "CANCELLED") {
        return std::nullopt;
      }
      if (!take_string("error", &record.error)) return std::nullopt;
      const obs::JsonValue* result = doc.find("result");
      if (result != nullptr) {
        std::string digest;
        if (!take_string("digest", &digest) || digest.empty()) {
          return std::nullopt;
        }
        // End-to-end result integrity: the digest covers the compact dump,
        // which round-trips bit-exactly through parse/dump.
        if (fnv1a64_hex(result->dump()) != digest) return std::nullopt;
        record.result = *result;
        record.has_result = true;
      }
      break;
    }
  }
  return record;
}

}  // namespace

std::string encode_journal_line(const JournalRecord& record) {
  const std::string rec = record_to_json(record).dump();
  std::string line;
  line.reserve(kRecBegin + rec.size() + 2);
  line += kEnvelopePrefix;
  line += fnv1a64_hex(rec);
  line += kEnvelopeSeparator;
  line += rec;
  line += '}';
  line += '\n';
  return line;
}

std::optional<JournalRecord> parse_journal_line(std::string_view line) {
  if (line.size() < kMinLineBytes) return std::nullopt;
  if (line.substr(0, kCrcBegin) != kEnvelopePrefix) return std::nullopt;
  if (line.substr(kCrcBegin + kCrcLen, kEnvelopeSeparator.size()) !=
      kEnvelopeSeparator) {
    return std::nullopt;
  }
  if (line.back() != '}') return std::nullopt;
  const std::string_view crc = line.substr(kCrcBegin, kCrcLen);
  for (const char c : crc) {
    if (!is_hex_lower(c)) return std::nullopt;
  }
  const std::string_view rec = line.substr(kRecBegin,
                                           line.size() - kRecBegin - 1);
  if (fnv1a64_hex(rec) != crc) return std::nullopt;

  std::string parse_error;
  const std::optional<obs::JsonValue> doc =
      obs::parse_json(std::string(rec), &parse_error);
  if (!doc.has_value()) return std::nullopt;
  return record_from_json(*doc);
}

JournalReadResult read_journal_text(std::string_view text) {
  JournalReadResult out;
  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      out.truncated = true;
      out.note = "torn tail: line " + std::to_string(line_no) +
                 " has no terminating newline (" +
                 std::to_string(text.size() - pos) + " bytes dropped)";
      return out;
    }
    std::optional<JournalRecord> record =
        parse_journal_line(text.substr(pos, nl - pos));
    if (!record.has_value()) {
      out.truncated = true;
      out.note = "corrupt record at line " + std::to_string(line_no) + " (" +
                 std::to_string(text.size() - pos) + " bytes dropped)";
      return out;
    }
    out.records.push_back(std::move(*record));
    pos = nl + 1;
    out.bytes_consumed = pos;
  }
  return out;
}

JournalReadResult read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    JournalReadResult out;
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) {
      return out;  // first session: no journal yet
    }
    out.truncated = true;
    out.note = "cannot read journal " + path;
    return out;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_journal_text(buffer.str());
}

bool truncate_journal_file(const std::string& path, std::size_t bytes,
                           std::string* error) {
  const auto fail = [&](const std::string& op, int err) {
    if (error != nullptr) {
      *error = op + "(" + path + "): " + std::string(strerror(err));
    }
    return false;
  };
  int fd = -1;
  for (;;) {
    fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) return fail("open", errno);
  for (;;) {
    if (::ftruncate(fd, static_cast<off_t>(bytes)) == 0) break;
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return fail("ftruncate", err);
  }
  // The dropped tail must stay dropped across a power cut: the new size is
  // durable only after the file fsync, and the directory sync closes the
  // remaining metadata gap. Otherwise a crash could resurrect the corrupt
  // tail recovery believed it removed.
  int err = 0;
  if (!fsync_retry(fd, &err)) {
    ::close(fd);
    return fail("fsync", err);
  }
  ::close(fd);
  if (!fsync_parent_dir(path, &err)) return fail("fsync-dir", err);
  return true;
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const JournalConfig& config, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const MutexLock lock(mutex_);
  if (fd_ >= 0) return fail("journal already open");
  config_ = config;
  if (config_.path.empty()) return true;  // journaling disabled
  int fd = -1;
  for (;;) {
    fd = ::open(config_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                0644);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) {
    return fail("cannot open journal " + config_.path + ": " +
                std::string(strerror(errno)));
  }
  // The O_CREAT above may have just created the file; its directory entry
  // must be durable before any appended record can claim to be, so sync
  // the parent directory once per open. This one-shot startup fsync stays
  // under the lock: fd_ must not become visible to appenders until the
  // entry is durable, and open() runs before any traffic exists to stall.
  int dir_err = 0;
  // micco-lint: allow(blocking-under-lock) one-shot startup: directory entry must be durable before fd_ is published
  if (!fsync_parent_dir(config_.path, &dir_err)) {
    ::close(fd);
    return fail("cannot fsync journal directory of " + config_.path + ": " +
                std::string(strerror(dir_err)));
  }
  fd_ = fd;
  return true;
}

void JournalWriter::set_telemetry(obs::Counter* records, obs::Counter* bytes,
                                  obs::Histogram* fsync_ms) {
  const MutexLock lock(mutex_);
  records_counter_ = records;
  bytes_counter_ = bytes;
  fsync_ms_ = fsync_ms;
}

bool JournalWriter::append(const JournalRecord& record, std::string* error) {
  const std::string line = encode_journal_line(record);
  int fd = -1;
  bool want_sync = false;
  std::uint64_t appended = 0;
  std::uint64_t crash_after = 0;
  obs::Histogram* fsync_ms = nullptr;
  {
    const MutexLock lock(mutex_);
    if (fd_ < 0) {
      if (error != nullptr) *error = "journal not open";
      return false;
    }
    int err = 0;
    // The write must stay under the lock: concurrent appends have to reach
    // the O_APPEND fd one whole record at a time, or two half-records
    // interleave and recovery sees a corrupt line.
    // micco-lint: allow(blocking-under-lock) O_APPEND record framing requires serializing the write itself
    if (!write_all(fd_, line.data(), line.size(), &err)) {
      if (error != nullptr) {
        *error = "journal write failed: " + std::string(strerror(err));
      }
      return false;
    }
    ++appended_;
    ++since_sync_;
    if (records_counter_ != nullptr) records_counter_->add();
    if (bytes_counter_ != nullptr) bytes_counter_->add(line.size());
    want_sync = config_.fsync == FsyncPolicy::kAlways ||
                (config_.fsync == FsyncPolicy::kInterval &&
                 config_.fsync_interval > 0 &&
                 since_sync_ >= config_.fsync_interval);
    // Reset the interval counter at decision time (not after the fsync
    // lands) so a concurrent append cannot double-claim the same interval.
    // If the fsync below fails, the append is reported failed anyway and
    // callers treat the journal as gone.
    if (want_sync) since_sync_ = 0;
    fd = fd_;
    appended = appended_;
    crash_after = config_.crash_after_records;
    fsync_ms = fsync_ms_;
  }

  // The durability fsync runs OFF the lock: it is the slowest operation in
  // the hot path (milliseconds on real disks) and holding mutex_ across it
  // stalled every concurrent append and is_open()/records_appended() probe
  // for the full device round trip. An fsync covers every byte written to
  // the fd before it started, so this thread's record — written above,
  // earlier in program order — is durable when fsync_retry returns no
  // matter how appends interleave. (close() only runs after appends
  // quiesce, so the snapshot fd stays valid.)
  if (want_sync) {
    Stopwatch watch;
    int err = 0;
    if (!fsync_retry(fd, &err)) {
      if (error != nullptr) {
        *error = "journal fsync failed: " + std::string(strerror(err));
      }
      return false;
    }
    if (fsync_ms != nullptr) fsync_ms->observe(watch.elapsed_ms());
  }

  // Chaos hook: die the instant the Nth record is durable, so the harness
  // can probe recovery at every boundary between journal records.
  if (crash_after > 0 && appended >= crash_after) {
    ::raise(SIGKILL);
  }
  return true;
}

bool JournalWriter::sync(std::string* error) {
  int fd = -1;
  obs::Histogram* fsync_ms = nullptr;
  {
    const MutexLock lock(mutex_);
    if (fd_ < 0) return true;
    fd = fd_;
    fsync_ms = fsync_ms_;
    since_sync_ = 0;
  }
  // Same shape as append(): the fsync itself runs off the lock (see there
  // for why that is safe for the durability contract).
  int err = 0;
  Stopwatch watch;
  if (!fsync_retry(fd, &err)) {
    if (error != nullptr) {
      *error = "journal fsync failed: " + std::string(strerror(err));
    }
    return false;
  }
  if (fsync_ms != nullptr) fsync_ms->observe(watch.elapsed_ms());
  return true;
}

void JournalWriter::close() {
  const MutexLock lock(mutex_);
  if (fd_ < 0) return;
  if (config_.fsync != FsyncPolicy::kNever && since_sync_ > 0) {
    int err = 0;
    // The shutdown fsync stays under the lock deliberately: it orders
    // against the ::close below — releasing between them would let another
    // close() race the fd away mid-sync.
    // micco-lint: allow(blocking-under-lock) fd lifecycle: final fsync must complete before this very scope closes the fd
    fsync_retry(fd_, &err);  // best effort on the way out
  }
  ::close(fd_);
  fd_ = -1;
}

bool JournalWriter::is_open() const {
  const MutexLock lock(mutex_);
  return fd_ >= 0;
}

std::uint64_t JournalWriter::records_appended() const {
  const MutexLock lock(mutex_);
  return appended_;
}

}  // namespace micco::service
