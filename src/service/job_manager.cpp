#include "service/job_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/names.hpp"

namespace micco::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

JobManager::JobManager(AdmissionConfig config) : config_(std::move(config)) {}

void JobManager::set_registry(obs::MetricsRegistry* registry) {
  const MutexLock lock(mutex_);
  registry_ = registry;
}

void JobManager::refresh_gauges_locked() {
  if (registry_ == nullptr) return;
  registry_->gauge(obs::names::kServiceQueued)
      .set(static_cast<double>(queued_));
  registry_->gauge(obs::names::kServiceRunning)
      .set(static_cast<double>(running_));
  for (const auto& [name, tenant] : tenants_) {
    registry_->gauge(obs::names::kServiceQueueDepthPrefix + name)
        .set(static_cast<double>(tenant.queue.size()));
  }
}

SubmitOutcome JobManager::reject_locked(const std::string& tenant_name,
                                        const char* code,
                                        const std::string& reason) {
  ++rejected_;
  tenants_[tenant_name].rejected += 1;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceRejected).add();
  }
  SubmitOutcome outcome;
  outcome.admitted = false;
  outcome.reject_code = code;
  outcome.reject_reason = reason;
  refresh_gauges_locked();
  return outcome;
}

void JobManager::register_idem_locked(const std::string& tenant,
                                      const std::string& idem,
                                      std::uint64_t job_id) {
  if (idem.empty()) return;
  dedup_.emplace(tenant + '\x1f' + idem, job_id);
}

void JobManager::enqueue_locked(Job job) {
  Tenant& tenant = tenants_[job.tenant];
  // Stride re-entry: a tenant going from idle to busy starts at the current
  // virtual time instead of the credit it banked while idle.
  if (tenant.queue.empty()) {
    tenant.pass = std::max(tenant.pass, global_pass_);
  }
  tenant.weight = config_.weight_for(job.tenant);
  tenant.queue.push_back(job.id);
  tenant.admitted += 1;
  job.depth_at_submit = queued_;  // backlog ahead of this job at admission
  register_idem_locked(job.tenant, job.idem, job.id);
  jobs_.emplace(job.id, std::move(job));
  ++queued_;
  ++admitted_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceAdmitted).add();
  }
  refresh_gauges_locked();
}

SubmitOutcome JobManager::submit(const std::string& tenant_name,
                                 const std::string& name,
                                 WorkloadStream stream,
                                 const std::string& trace_id,
                                 const std::string& idem, bool hold) {
  const MutexLock lock(mutex_);
  ++submitted_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceSubmitted).add();
  }

  // Idempotent resubmit: an already-known (tenant, token) pair answers with
  // the original job — before the draining check, so a client retrying a
  // lost reply still succeeds while the daemon winds down.
  if (!idem.empty()) {
    const auto dup = dedup_.find(tenant_name + '\x1f' + idem);
    if (dup != dedup_.end()) {
      ++duplicates_;
      if (registry_ != nullptr) {
        registry_->counter(obs::names::kServiceDuplicateSubmits).add();
      }
      SubmitOutcome outcome;
      outcome.admitted = true;
      outcome.duplicate = true;
      outcome.job_id = dup->second;
      return outcome;
    }
  }

  if (draining_) {
    return reject_locked(tenant_name, "draining",
                         "daemon is draining; not admitting new work");
  }
  if (queued_ >= config_.max_queued_total) {
    return reject_locked(tenant_name, "queue_full",
                         "total queue depth limit reached (" +
                             std::to_string(config_.max_queued_total) + ")");
  }
  Tenant& tenant = tenants_[tenant_name];
  if (tenant.queue.size() >= config_.max_queue_per_tenant) {
    return reject_locked(
        tenant_name, "queue_full",
        "tenant '" + tenant_name + "' queue depth limit reached (" +
            std::to_string(config_.max_queue_per_tenant) + ")");
  }

  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.tenant = tenant_name;
  job.name = name;
  job.trace_id = trace_id;
  job.idem = idem;
  job.stream = std::move(stream);
  job.state = JobState::kQueued;
  job.held = hold;
  enqueue_locked(std::move(job));

  SubmitOutcome outcome;
  outcome.admitted = true;
  outcome.job_id = id;
  return outcome;
}

bool JobManager::release_job(std::uint64_t job_id) {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued) return false;
  it->second.held = false;
  return true;
}

void JobManager::restore_finished(std::uint64_t job_id,
                                  const std::string& tenant_name,
                                  const std::string& name,
                                  const std::string& trace_id,
                                  const std::string& idem, JobState state,
                                  const std::string& error,
                                  std::optional<obs::JsonValue> result) {
  MICCO_EXPECTS_MSG(state == JobState::kDone || state == JobState::kFailed ||
                        state == JobState::kCancelled,
                    "restore_finished needs a terminal state");
  const MutexLock lock(mutex_);
  if (jobs_.count(job_id) != 0) return;  // duplicate journal record
  Job job;
  job.id = job_id;
  job.tenant = tenant_name;
  job.name = name;
  job.trace_id = trace_id;
  job.idem = idem;
  job.state = state;
  job.error = error;
  job.replayed = true;
  if (result.has_value()) {
    job.result = std::move(*result);
    job.has_result = true;
  }
  register_idem_locked(tenant_name, idem, job_id);
  jobs_.emplace(job_id, std::move(job));
  next_id_ = std::max(next_id_, job_id + 1);

  // The restored book keeps the session accounting invariants: a replayed
  // finished job counts as submitted, admitted and finished here too.
  ++submitted_;
  ++admitted_;
  ++replayed_;
  Tenant& tenant = tenants_[tenant_name];
  tenant.weight = config_.weight_for(tenant_name);
  tenant.admitted += 1;
  switch (state) {
    case JobState::kDone: ++completed_; break;
    case JobState::kFailed: ++failed_; break;
    default: ++cancelled_; break;
  }
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceSubmitted).add();
    registry_->counter(obs::names::kServiceAdmitted).add();
    registry_->counter(obs::names::kServiceReplayedFinished).add();
  }
  refresh_gauges_locked();
}

void JobManager::restore_queued(std::uint64_t job_id,
                                const std::string& tenant_name,
                                const std::string& name,
                                const std::string& trace_id,
                                const std::string& idem,
                                WorkloadStream stream) {
  const MutexLock lock(mutex_);
  if (jobs_.count(job_id) != 0) return;  // duplicate journal record
  Job job;
  job.id = job_id;
  job.tenant = tenant_name;
  job.name = name;
  job.trace_id = trace_id;
  job.idem = idem;
  job.stream = std::move(stream);
  job.state = JobState::kQueued;
  job.interrupted = true;
  ++submitted_;
  ++requeued_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceSubmitted).add();
    registry_->counter(obs::names::kServiceRequeued).add();
  }
  enqueue_locked(std::move(job));
  next_id_ = std::max(next_id_, job_id + 1);
}

std::optional<std::uint64_t> JobManager::next_job() {
  const MutexLock lock(mutex_);
  // Smallest pass wins; ties break by tenant name (map iteration order), so
  // dispatch is a pure function of the submission sequence. A tenant whose
  // front job is still held (admission record not yet durable) is skipped
  // whole: overtaking the held job would break per-tenant FIFO order.
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.queue.empty()) continue;
    if (jobs_.at(tenant.queue.front()).held) continue;
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  if (best == nullptr) return std::nullopt;

  const std::uint64_t id = best->queue.front();
  best->queue.pop_front();
  best->pass += kStrideUnit / static_cast<std::uint64_t>(best->weight);
  global_pass_ = std::max(global_pass_, best->pass);

  Job& job = jobs_.at(id);
  MICCO_ASSERT(job.state == JobState::kQueued);
  job.state = JobState::kRunning;
  job.dispatch_seq = ++dispatch_seq_;
  MICCO_ASSERT(queued_ > 0);
  --queued_;
  ++running_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceDispatched).add();
  }
  refresh_gauges_locked();
  return id;
}

WorkloadStream JobManager::take_stream(std::uint64_t job_id) {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  MICCO_EXPECTS_MSG(it != jobs_.end() && it->second.state == JobState::kRunning,
                    "take_stream needs a RUNNING job");
  return std::move(it->second.stream);
}

void JobManager::record_finish_locked(const Job& job,
                                      const CompletionTiming& timing) {
  Tenant& tenant = tenants_[job.tenant];
  const bool slo_ok =
      config_.slo_ms <= 0.0 || timing.e2e_latency_ms <= config_.slo_ms;
  if (config_.slo_ms > 0.0) {
    (slo_ok ? tenant.slo_ok : tenant.slo_miss) += 1;
  }
  if (registry_ == nullptr) return;
  namespace names = obs::names;
  registry_
      ->histogram(names::kServiceQueueLatencyMs,
                  names::wall_latency_bounds_ms())
      .observe(timing.queue_latency_ms);
  registry_
      ->histogram(names::tenant_metric(job.tenant, names::kTenantQueueLatencyMs),
                  names::wall_latency_bounds_ms())
      .observe(timing.queue_latency_ms);
  registry_
      ->histogram(names::tenant_metric(job.tenant, names::kTenantE2eLatencyMs),
                  names::wall_latency_bounds_ms())
      .observe(timing.e2e_latency_ms);
  registry_
      ->histogram(names::tenant_metric(job.tenant, names::kTenantJobSimMs),
                  names::job_sim_ms_bounds())
      .observe(timing.sim_makespan_ms);
  if (config_.slo_ms > 0.0) {
    registry_
        ->counter(names::tenant_metric(
            job.tenant, slo_ok ? names::kTenantSloOk : names::kTenantSloMiss))
        .add();
  }
}

void JobManager::complete(std::uint64_t job_id, obs::JsonValue result,
                          const CompletionTiming& timing) {
  const MutexLock lock(mutex_);
  Job& job = jobs_.at(job_id);
  MICCO_ASSERT(job.state == JobState::kRunning);
  job.state = JobState::kDone;
  job.result = std::move(result);
  job.has_result = true;
  MICCO_ASSERT(running_ > 0);
  --running_;
  ++completed_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceCompleted).add();
  }
  record_finish_locked(job, timing);
  refresh_gauges_locked();
}

void JobManager::fail(std::uint64_t job_id, const std::string& error,
                      obs::JsonValue result, const CompletionTiming& timing) {
  const MutexLock lock(mutex_);
  Job& job = jobs_.at(job_id);
  MICCO_ASSERT(job.state == JobState::kRunning);
  job.state = JobState::kFailed;
  job.error = error;
  job.result = std::move(result);
  job.has_result = true;
  MICCO_ASSERT(running_ > 0);
  --running_;
  ++failed_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceFailed).add();
  }
  record_finish_locked(job, timing);
  refresh_gauges_locked();
}

void JobManager::begin_drain() {
  const MutexLock lock(mutex_);
  draining_ = true;
}

bool JobManager::draining() const {
  const MutexLock lock(mutex_);
  return draining_;
}

std::vector<std::uint64_t> JobManager::cancel_queued() {
  const MutexLock lock(mutex_);
  std::vector<std::uint64_t> cancelled;
  for (auto& [name, tenant] : tenants_) {
    for (const std::uint64_t id : tenant.queue) {
      Job& job = jobs_.at(id);
      MICCO_ASSERT(job.state == JobState::kQueued);
      job.state = JobState::kCancelled;
      job.stream = WorkloadStream{};  // drop the payload
      cancelled.push_back(id);
    }
    tenant.queue.clear();
  }
  MICCO_ASSERT(cancelled.size() == queued_);
  queued_ = 0;
  cancelled_ += cancelled.size();
  if (registry_ != nullptr && !cancelled.empty()) {
    registry_->counter(obs::names::kServiceCancelled).add(cancelled.size());
  }
  refresh_gauges_locked();
  return cancelled;
}

bool JobManager::cancel_queued_job(std::uint64_t job_id) {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued) return false;
  Job& job = it->second;
  Tenant& tenant = tenants_.at(job.tenant);
  const auto pos = std::find(tenant.queue.begin(), tenant.queue.end(), job_id);
  MICCO_ASSERT(pos != tenant.queue.end());
  tenant.queue.erase(pos);
  job.state = JobState::kCancelled;
  job.stream = WorkloadStream{};
  if (!job.idem.empty()) {
    dedup_.erase(job.tenant + '\x1f' + job.idem);
  }
  MICCO_ASSERT(queued_ > 0);
  --queued_;
  ++cancelled_;
  if (registry_ != nullptr) {
    registry_->counter(obs::names::kServiceCancelled).add();
  }
  refresh_gauges_locked();
  return true;
}

JobStatus JobManager::status_locked(const Job& job) const {
  JobStatus out;
  out.job_id = job.id;
  out.tenant = job.tenant;
  out.name = job.name;
  out.state = job.state;
  out.error = job.error;
  out.interrupted = job.interrupted;
  out.replayed = job.replayed;
  if (job.state == JobState::kQueued) {
    const auto tenant_it = tenants_.find(job.tenant);
    MICCO_ASSERT(tenant_it != tenants_.end());
    const std::deque<std::uint64_t>& queue = tenant_it->second.queue;
    const auto pos = std::find(queue.begin(), queue.end(), job.id);
    out.queue_position = pos == queue.end()
                             ? -1
                             : static_cast<std::int64_t>(pos - queue.begin());
  }
  return out;
}

std::optional<JobStatus> JobManager::status(std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return status_locked(it->second);
}

std::optional<StatusSnapshot> JobManager::status_with_result(
    std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  StatusSnapshot snap;
  snap.status = status_locked(it->second);
  if (it->second.has_result) snap.result = it->second.result;
  return snap;
}

DispatchInfo JobManager::dispatch_info(std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  MICCO_EXPECTS_MSG(it != jobs_.end(), "dispatch_info needs a known job");
  DispatchInfo info;
  info.trace_id = it->second.trace_id;
  info.tenant = it->second.tenant;
  info.name = it->second.name;
  info.dispatch_seq = it->second.dispatch_seq;
  info.depth_at_submit = it->second.depth_at_submit;
  return info;
}

std::optional<obs::JsonValue> JobManager::result(std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || !it->second.has_result) return std::nullopt;
  return it->second.result;
}

bool JobManager::idle() const {
  const MutexLock lock(mutex_);
  return queued_ == 0 && running_ == 0;
}

std::size_t JobManager::queued_total() const {
  const MutexLock lock(mutex_);
  return queued_;
}

obs::JsonValue JobManager::stats() const {
  const MutexLock lock(mutex_);
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("queued", static_cast<std::uint64_t>(queued_));
  doc.set("running", static_cast<std::uint64_t>(running_));
  doc.set("submitted", submitted_);
  doc.set("admitted", admitted_);
  doc.set("rejected", rejected_);
  doc.set("completed", completed_);
  doc.set("failed", failed_);
  doc.set("cancelled", cancelled_);
  doc.set("duplicates", duplicates_);
  doc.set("replayed", replayed_);
  doc.set("requeued", requeued_);
  doc.set("draining", draining_);
  obs::JsonValue tenants = obs::JsonValue::object();
  for (const auto& [name, tenant] : tenants_) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("queued", static_cast<std::uint64_t>(tenant.queue.size()));
    entry.set("weight", tenant.weight);
    entry.set("admitted", tenant.admitted);
    entry.set("rejected", tenant.rejected);
    entry.set("slo_ok", tenant.slo_ok);
    entry.set("slo_miss", tenant.slo_miss);
    tenants.set(name, std::move(entry));
  }
  doc.set("tenants", std::move(tenants));
  return doc;
}

}  // namespace micco::service
