#include "service/job_manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace micco::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

JobManager::JobManager(AdmissionConfig config) : config_(std::move(config)) {}

void JobManager::set_registry(obs::MetricsRegistry* registry) {
  const MutexLock lock(mutex_);
  registry_ = registry;
}

void JobManager::refresh_gauges_locked() {
  if (registry_ == nullptr) return;
  registry_->gauge("service.queued").set(static_cast<double>(queued_));
  registry_->gauge("service.running").set(static_cast<double>(running_));
  for (const auto& [name, tenant] : tenants_) {
    registry_->gauge("service.queue_depth." + name)
        .set(static_cast<double>(tenant.queue.size()));
  }
}

SubmitOutcome JobManager::reject_locked(const std::string& tenant_name,
                                        const char* code,
                                        const std::string& reason) {
  ++rejected_;
  tenants_[tenant_name].rejected += 1;
  if (registry_ != nullptr) registry_->counter("service.rejected").add();
  SubmitOutcome outcome;
  outcome.admitted = false;
  outcome.reject_code = code;
  outcome.reject_reason = reason;
  refresh_gauges_locked();
  return outcome;
}

SubmitOutcome JobManager::submit(const std::string& tenant_name,
                                 const std::string& name,
                                 WorkloadStream stream) {
  const MutexLock lock(mutex_);
  ++submitted_;
  if (registry_ != nullptr) registry_->counter("service.submitted").add();

  if (draining_) {
    return reject_locked(tenant_name, "draining",
                         "daemon is draining; not admitting new work");
  }
  if (queued_ >= config_.max_queued_total) {
    return reject_locked(tenant_name, "queue_full",
                         "total queue depth limit reached (" +
                             std::to_string(config_.max_queued_total) + ")");
  }
  Tenant& tenant = tenants_[tenant_name];
  if (tenant.queue.size() >= config_.max_queue_per_tenant) {
    return reject_locked(
        tenant_name, "queue_full",
        "tenant '" + tenant_name + "' queue depth limit reached (" +
            std::to_string(config_.max_queue_per_tenant) + ")");
  }

  const std::uint64_t id = next_id_++;
  Job job;
  job.id = id;
  job.tenant = tenant_name;
  job.name = name;
  job.stream = std::move(stream);
  job.state = JobState::kQueued;
  jobs_.emplace(id, std::move(job));

  // Stride re-entry: a tenant going from idle to busy starts at the current
  // virtual time instead of the credit it banked while idle.
  if (tenant.queue.empty()) {
    tenant.pass = std::max(tenant.pass, global_pass_);
  }
  tenant.weight = config_.weight_for(tenant_name);
  tenant.queue.push_back(id);
  tenant.admitted += 1;
  ++queued_;
  ++admitted_;
  if (registry_ != nullptr) registry_->counter("service.admitted").add();
  refresh_gauges_locked();

  SubmitOutcome outcome;
  outcome.admitted = true;
  outcome.job_id = id;
  return outcome;
}

std::optional<std::uint64_t> JobManager::next_job() {
  const MutexLock lock(mutex_);
  // Smallest pass wins; ties break by tenant name (map iteration order), so
  // dispatch is a pure function of the submission sequence.
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.queue.empty()) continue;
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  if (best == nullptr) return std::nullopt;

  const std::uint64_t id = best->queue.front();
  best->queue.pop_front();
  best->pass += kStrideUnit / static_cast<std::uint64_t>(best->weight);
  global_pass_ = std::max(global_pass_, best->pass);

  Job& job = jobs_.at(id);
  MICCO_ASSERT(job.state == JobState::kQueued);
  job.state = JobState::kRunning;
  MICCO_ASSERT(queued_ > 0);
  --queued_;
  ++running_;
  if (registry_ != nullptr) registry_->counter("service.dispatched").add();
  refresh_gauges_locked();
  return id;
}

WorkloadStream JobManager::take_stream(std::uint64_t job_id) {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  MICCO_EXPECTS_MSG(it != jobs_.end() && it->second.state == JobState::kRunning,
                    "take_stream needs a RUNNING job");
  return std::move(it->second.stream);
}

void JobManager::complete(std::uint64_t job_id, obs::JsonValue result,
                          double queue_latency_ms) {
  const MutexLock lock(mutex_);
  Job& job = jobs_.at(job_id);
  MICCO_ASSERT(job.state == JobState::kRunning);
  job.state = JobState::kDone;
  job.result = std::move(result);
  job.has_result = true;
  MICCO_ASSERT(running_ > 0);
  --running_;
  ++completed_;
  if (registry_ != nullptr) {
    registry_->counter("service.completed").add();
    registry_
        ->histogram("service.queue_latency_ms",
                    {1.0, 10.0, 100.0, 1000.0, 10000.0})
        .observe(queue_latency_ms);
  }
  refresh_gauges_locked();
}

void JobManager::fail(std::uint64_t job_id, const std::string& error,
                      obs::JsonValue result, double queue_latency_ms) {
  const MutexLock lock(mutex_);
  Job& job = jobs_.at(job_id);
  MICCO_ASSERT(job.state == JobState::kRunning);
  job.state = JobState::kFailed;
  job.error = error;
  job.result = std::move(result);
  job.has_result = true;
  MICCO_ASSERT(running_ > 0);
  --running_;
  ++failed_;
  if (registry_ != nullptr) {
    registry_->counter("service.failed").add();
    registry_
        ->histogram("service.queue_latency_ms",
                    {1.0, 10.0, 100.0, 1000.0, 10000.0})
        .observe(queue_latency_ms);
  }
  refresh_gauges_locked();
}

void JobManager::begin_drain() {
  const MutexLock lock(mutex_);
  draining_ = true;
}

bool JobManager::draining() const {
  const MutexLock lock(mutex_);
  return draining_;
}

std::size_t JobManager::cancel_queued() {
  const MutexLock lock(mutex_);
  std::size_t cancelled = 0;
  for (auto& [name, tenant] : tenants_) {
    for (const std::uint64_t id : tenant.queue) {
      Job& job = jobs_.at(id);
      MICCO_ASSERT(job.state == JobState::kQueued);
      job.state = JobState::kCancelled;
      job.stream = WorkloadStream{};  // drop the payload
      ++cancelled;
    }
    tenant.queue.clear();
  }
  MICCO_ASSERT(cancelled == queued_);
  queued_ = 0;
  cancelled_ += cancelled;
  if (registry_ != nullptr && cancelled > 0) {
    registry_->counter("service.cancelled").add(cancelled);
  }
  refresh_gauges_locked();
  return cancelled;
}

std::optional<JobStatus> JobManager::status(std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = it->second;
  JobStatus out;
  out.job_id = job.id;
  out.tenant = job.tenant;
  out.name = job.name;
  out.state = job.state;
  out.error = job.error;
  if (job.state == JobState::kQueued) {
    const auto tenant_it = tenants_.find(job.tenant);
    MICCO_ASSERT(tenant_it != tenants_.end());
    const std::deque<std::uint64_t>& queue = tenant_it->second.queue;
    const auto pos = std::find(queue.begin(), queue.end(), job.id);
    out.queue_position = pos == queue.end()
                             ? -1
                             : static_cast<std::int64_t>(pos - queue.begin());
  }
  return out;
}

std::optional<obs::JsonValue> JobManager::result(std::uint64_t job_id) const {
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || !it->second.has_result) return std::nullopt;
  return it->second.result;
}

bool JobManager::idle() const {
  const MutexLock lock(mutex_);
  return queued_ == 0 && running_ == 0;
}

std::size_t JobManager::queued_total() const {
  const MutexLock lock(mutex_);
  return queued_;
}

obs::JsonValue JobManager::stats() const {
  const MutexLock lock(mutex_);
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("queued", static_cast<std::uint64_t>(queued_));
  doc.set("running", static_cast<std::uint64_t>(running_));
  doc.set("submitted", submitted_);
  doc.set("admitted", admitted_);
  doc.set("rejected", rejected_);
  doc.set("completed", completed_);
  doc.set("failed", failed_);
  doc.set("cancelled", cancelled_);
  doc.set("draining", draining_);
  obs::JsonValue tenants = obs::JsonValue::object();
  for (const auto& [name, tenant] : tenants_) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("queued", static_cast<std::uint64_t>(tenant.queue.size()));
    entry.set("weight", tenant.weight);
    entry.set("admitted", tenant.admitted);
    entry.set("rejected", tenant.rejected);
    tenants.set(name, std::move(entry));
  }
  doc.set("tenants", std::move(tenants));
  return doc;
}

}  // namespace micco::service
