#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "ml/serialize.hpp"
#include "obs/names.hpp"
#include "obs/report.hpp"
#include "parallel/parallel.hpp"
#include "workload/serialize.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace micco::service {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Advisory backoff (seconds) on transient submit rejections (draining,
/// queue_full, journal_error).
constexpr double kRetryAfterHintS = 1.0;

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), jobs_(config_.admission) {
  jobs_.set_registry(&telemetry_.registry);
  clock_ = config_.clock != nullptr ? config_.clock : obs::default_clock();
}

Server::~Server() {
  if (listener_ >= 0) ::close(listener_);
  if (started_ && !config_.socket_path.empty()) {
    ::unlink(config_.socket_path.c_str());
  }
  // Closing the fd releases the flock; the lock file itself stays on disk
  // (see lock_fd_ in server.hpp).
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (started_) return fail("server already started");
  if (config_.socket_path.empty()) return fail("socket path is empty");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long (" +
                std::to_string(config_.socket_path.size()) + " bytes, max " +
                std::to_string(sizeof(addr.sun_path) - 1) + ")");
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  const std::string policy_problem = config_.retry.validate();
  if (!policy_problem.empty()) return fail(policy_problem);
  if (config_.faults != nullptr) {
    const std::string plan_problem =
        config_.faults->validate(config_.cluster.num_devices);
    if (!plan_problem.empty()) return fail("fault plan: " + plan_problem);
  }

  // Bounds source: trained model when given, static triple otherwise.
  if (!config_.model_path.empty()) {
    std::ifstream in(config_.model_path);
    if (!in.good()) {
      return fail("cannot open model " + config_.model_path);
    }
    std::vector<std::unique_ptr<ml::Regressor>> models;
    for (int b = 0; b < 3; ++b) {
      std::string model_error;
      auto model = ml::load_regressor(in, &model_error);
      if (!model) return fail("bad model file: " + model_error);
      models.push_back(std::move(model));
    }
    model_bounds_ = std::make_unique<RegressionBoundsProvider>(
        ml::MultiOutputRegressor::from_models(std::move(models)), 2);
  } else {
    static_bounds_ = std::make_unique<FixedBounds>(config_.static_bounds);
  }

  // Session decision log.
  if (!config_.decisions_path.empty()) {
    decisions_file_.open(config_.decisions_path);
    if (!decisions_file_.good()) {
      return fail("cannot open decision log " + config_.decisions_path);
    }
    sink_ = std::make_unique<obs::BufferedJsonlEventSink>(decisions_file_);
    telemetry_.sink = sink_.get();
  }

  // Session span trace.
  if (!config_.spans_path.empty()) {
    spans_file_.open(config_.spans_path);
    if (!spans_file_.good()) {
      return fail("cannot open span trace " + config_.spans_path);
    }
    spans_sink_ = std::make_unique<obs::JsonlSpanSink>(spans_file_);
  }

  // Fail on an unwritable report path before serving, not after.
  if (!config_.report_path.empty() &&
      !std::ofstream(config_.report_path).good()) {
    return fail("cannot open report path " + config_.report_path);
  }

  scheduler_name_ = make_scheduler(config_.scheduler, config_.seed)->name();
  device_busy_s_.assign(
      static_cast<std::size_t>(config_.cluster.num_devices), 0.0);

  if (config_.mem_arbiter) {
    arbiter_ = std::make_unique<mem::MemoryArbiter>(
        config_.cluster.num_devices, config_.cluster.device_capacity_bytes);
  }

  // Startup serialization: an exclusive flock on a sidecar lock file,
  // acquired before journal recovery and held until this server is
  // destroyed. Two daemons racing the same socket path would otherwise
  // both replay/truncate the journal, and the probe-then-unlink takeover
  // below has a TOCTOU window (between a failed probe and the unlink, a
  // concurrent starter could bind — and lose its live socket to our
  // unlink). flock serializes all of it and dies with the process, so a
  // SIGKILLed daemon never wedges restarts.
  {
    const std::string lock_path = config_.socket_path + ".lock";
    int fd = -1;
    for (;;) {
      fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
      if (fd >= 0 || errno != EINTR) break;
    }
    if (fd < 0) {
      return fail("cannot open lock file " + lock_path + ": " +
                  std::string(strerror(errno)));
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      return fail("another daemon is starting or serving on " +
                  config_.socket_path + " (lock " + lock_path +
                  " is held); refusing to start");
    }
    lock_fd_ = fd;
  }

  // Replay + reopen the journal before accepting connections, so the first
  // client already sees the recovered book of record.
  if (!recover_from_journal(error)) return false;

  // A crashed daemon leaves its socket file behind, and a restart must not
  // need manual cleanup — but a live daemon must never have its socket
  // yanked out from under it either. The probe backs up the flock above
  // (e.g. against a manually deleted lock file): an answer means another
  // instance is serving; no answer means the file is stale and — under the
  // lock — safe to unlink.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool alive = ::connect(probe,
                                   reinterpret_cast<const sockaddr*>(&addr),
                                   sizeof(addr)) == 0;
      ::close(probe);
      if (alive) {
        return fail("another daemon is already serving on " +
                    config_.socket_path +
                    " (probe connect answered); refusing to start");
      }
    }
    ::unlink(config_.socket_path.c_str());  // stale leftover, or ENOENT
  }

  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listener_);
    listener_ = -1;
    return fail("bind(" + config_.socket_path +
                "): " + std::string(strerror(err)));
  }
  if (::listen(listener_, 64) != 0 || !set_nonblocking(listener_)) {
    const int err = errno;
    ::close(listener_);
    listener_ = -1;
    ::unlink(config_.socket_path.c_str());
    return fail("listen(): " + std::string(strerror(err)));
  }
  decision_scratch_ = std::make_unique<obs::HistogramScratch>(
      obs::names::decision_latency_bounds_us());

  started_ = true;
  session_start_ms_ = clock_->monotonic_ms();
  // The one sanctioned wall-clock capture of the session: everything else
  // is monotonic durations, so only this stamp ties the report to calendar
  // time.
  started_at_utc_ = clock_->wall_time_utc();
  return true;
}

BoundsProvider* Server::bounds_provider() {
  if (model_bounds_ != nullptr) return model_bounds_.get();
  return static_bounds_.get();
}

// ---------------------------------------------------------------------------
// Crash safety

bool Server::recover_from_journal(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (config_.journal.path.empty()) return true;

  const JournalReadResult read = read_journal_file(config_.journal.path);
  if (read.truncated) {
    recovered_torn_tail_ = true;
    telemetry_.registry.counter(obs::names::kServiceTornTail).add();
    log_warn() << "journal " << config_.journal.path << ": " << read.note
               << "; keeping " << read.bytes_consumed << " intact bytes";
    std::string truncate_error;
    if (!truncate_journal_file(config_.journal.path, read.bytes_consumed,
                               &truncate_error)) {
      return fail(truncate_error);
    }
  }

  // A finished record settles a job only when it *follows* that job's
  // admitted record in the journal. An orphaned finished record — one with
  // no admitted record before it, e.g. a crash wedged between a shutdown-
  // cancel append and the admission append it raced — must never attach to
  // a job id that a later incarnation re-issues, or replay would hand one
  // job another job's result. Within the eligible records, the last
  // finished one wins (a re-run after an unjournaled crash may finish a
  // job twice; the results are deterministic either way).
  std::map<std::uint64_t, std::size_t> admitted_at;
  for (std::size_t i = 0; i < read.records.size(); ++i) {
    if (read.records[i].kind == RecordKind::kAdmitted) {
      admitted_at.emplace(read.records[i].job_id, i);  // first admit wins
    }
  }
  std::map<std::uint64_t, const JournalRecord*> finished;
  for (std::size_t i = 0; i < read.records.size(); ++i) {
    const JournalRecord& record = read.records[i];
    if (record.kind != RecordKind::kFinished) continue;
    const auto adm = admitted_at.find(record.job_id);
    if (adm == admitted_at.end() || i < adm->second) continue;  // orphan
    finished[record.job_id] = &record;
  }

  // Replay admitted records in journal order. Recovery order equals journal
  // order, so the re-run jobs dispatch exactly as a fresh session would and
  // the --threads=1 decision log stays byte-identical.
  for (const JournalRecord& record : read.records) {
    if (record.kind != RecordKind::kAdmitted) continue;
    const auto fin = finished.find(record.job_id);
    if (fin != finished.end()) {
      const JournalRecord& f = *fin->second;
      const JobState state = f.state == "DONE"     ? JobState::kDone
                             : f.state == "FAILED" ? JobState::kFailed
                                                   : JobState::kCancelled;
      jobs_.restore_finished(record.job_id, record.tenant, record.name,
                             record.trace_id, record.idem, state, f.error,
                             f.has_result
                                 ? std::optional<obs::JsonValue>(f.result)
                                 : std::nullopt);
      ++recovered_finished_;
      continue;
    }
    std::istringstream in(record.workload_text);
    std::string load_error;
    std::optional<WorkloadStream> stream = load_stream(in, &load_error);
    if (!stream.has_value()) {
      // Admission validated this workload, so an unreadable one here is a
      // serialization regression; surface it as a FAILED job that answers
      // status instead of silently vanishing from the book.
      jobs_.restore_finished(record.job_id, record.tenant, record.name,
                             record.trace_id, record.idem, JobState::kFailed,
                             "workload unreadable after recovery: " +
                                 load_error,
                             std::nullopt);
      ++recovered_finished_;
      continue;
    }
    jobs_.restore_queued(record.job_id, record.tenant, record.name,
                         record.trace_id, record.idem, std::move(*stream));
    ++recovered_requeued_;
  }
  if (recovered_finished_ + recovered_requeued_ > 0) {
    log_info() << "journal " << config_.journal.path << ": replayed "
               << recovered_finished_ << " finished, re-admitted "
               << recovered_requeued_ << " interrupted job(s)";
  }

  journal_.set_telemetry(
      &telemetry_.registry.counter(obs::names::kServiceJournalRecords),
      &telemetry_.registry.counter(obs::names::kServiceJournalBytes),
      &telemetry_.registry.histogram(obs::names::kServiceJournalFsyncMs,
                                     obs::names::journal_fsync_bounds_ms()));
  return journal_.open(config_.journal, error);
}

std::size_t Server::cancel_backlog() {
  const std::vector<std::uint64_t> cancelled = jobs_.cancel_queued();
  if (journal_.is_open()) {
    for (const std::uint64_t id : cancelled) {
      JournalRecord record;
      record.kind = RecordKind::kFinished;
      record.job_id = id;
      record.state = to_string(JobState::kCancelled);
      std::string journal_error;
      if (!journal_.append(record, &journal_error)) {
        log_error() << "shutdown: " << journal_error;
        break;
      }
    }
  }
  return cancelled.size();
}

void Server::journal_finished(std::uint64_t job_id, JobState state,
                              const std::string& error_text,
                              const obs::JsonValue* result) {
  if (!journal_.is_open()) return;
  JournalRecord record;
  record.kind = RecordKind::kFinished;
  record.job_id = job_id;
  record.state = to_string(state);
  record.error = error_text;
  if (result != nullptr) {
    record.result = *result;
    record.has_result = true;
  }
  std::string journal_error;
  if (!journal_.append(record, &journal_error)) {
    // Not fatal: the job still finishes in memory; losing the record only
    // means a restart re-runs the job, which is deterministic.
    log_error() << "job " << job_id << ": " << journal_error;
  }
}

void Server::request_drain() {
  jobs_.begin_drain();
  const MutexLock lock(state_mutex_);
  phase_ = Phase::kDraining;
  dispatch_ready_.notify_all();
}

void Server::request_shutdown() {
  jobs_.begin_drain();
  cancel_backlog();
  const MutexLock lock(state_mutex_);
  phase_ = Phase::kDraining;
  dispatch_ready_.notify_all();
}

void Server::check_stop_flag() {
  if (config_.stop_flag != nullptr && *config_.stop_flag != 0) {
    request_drain();
  }
}

bool Server::should_stop() {
  const MutexLock lock(state_mutex_);
  return phase_ == Phase::kDraining && jobs_.idle();
}

// ---------------------------------------------------------------------------
// Request handling

obs::JsonValue Server::handle_frame(const std::string& frame) {
  std::string parse_error;
  const std::optional<obs::JsonValue> doc =
      obs::parse_json(frame, &parse_error);
  if (!doc.has_value()) {
    return make_error_response(error_code::kBadFrame,
                               "malformed frame: " + parse_error);
  }
  obs::JsonValue error_reply;
  const std::optional<Request> request = parse_request(*doc, &error_reply);
  if (!request.has_value()) return error_reply;
  return handle_request(*request);
}

obs::JsonValue Server::handle_request(const Request& request) {
  switch (request.type) {
    case MessageType::kSubmit:
      return handle_submit(request);
    case MessageType::kStatus:
    case MessageType::kResult: {
      // One lock acquisition captures status AND result together, so the
      // reply can never pair a RUNNING state with a result document (or a
      // DONE state with a missing one) when the dispatcher races us.
      const std::optional<StatusSnapshot> snap =
          jobs_.status_with_result(request.job_id);
      if (!snap.has_value()) {
        return make_error_response(
            error_code::kUnknownJob,
            "no job " + std::to_string(request.job_id));
      }
      const JobStatus& status = snap->status;
      obs::JsonValue reply = make_ok_response();
      reply.set("job_id", status.job_id);
      reply.set("tenant", status.tenant);
      if (!status.name.empty()) reply.set("job_name", status.name);
      reply.set("state", to_string(status.state));
      if (status.interrupted) reply.set("interrupted", true);
      if (status.replayed) reply.set("replayed", true);
      if (status.state == JobState::kQueued) {
        reply.set("queue_position", status.queue_position);
      }
      if (status.state == JobState::kFailed && !status.error.empty()) {
        reply.set("error", status.error);
      }
      if (request.type == MessageType::kResult) {
        if (!snap->result.has_value()) {
          return make_error_response(
              error_code::kNotFinished,
              "job " + std::to_string(request.job_id) + " is " +
                  to_string(status.state));
        }
        reply.set("result", *snap->result);
      } else if (snap->result.has_value()) {
        // status replies include the result document once the job finished
        // (the "per-vector scheduling stats" a DONE poll reads).
        reply.set("result", *snap->result);
      }
      return reply;
    }
    case MessageType::kDrain: {
      request_drain();
      obs::JsonValue reply = make_ok_response();
      reply.set("draining", true);
      return reply;
    }
    case MessageType::kShutdown: {
      jobs_.begin_drain();
      const std::size_t cancelled = cancel_backlog();
      {
        const MutexLock lock(state_mutex_);
        phase_ = Phase::kDraining;
        dispatch_ready_.notify_all();
      }
      obs::JsonValue reply = make_ok_response();
      reply.set("draining", true);
      reply.set("cancelled", static_cast<std::uint64_t>(cancelled));
      return reply;
    }
    case MessageType::kStats: {
      obs::JsonValue reply = make_ok_response();
      reply.set("stats", jobs_.stats());
      if (arbiter_ != nullptr) reply.set("memory", arbiter_->stats_json());
      return reply;
    }
    case MessageType::kMetrics: {
      obs::JsonValue reply = make_ok_response();
      reply.set("uptime_s",
                (clock_->monotonic_ms() - session_start_ms_) / 1000.0);
      if (!started_at_utc_.empty()) {
        reply.set("started_at", started_at_utc_);
      }
      reply.set("stats", jobs_.stats());
      if (arbiter_ != nullptr) reply.set("memory", arbiter_->stats_json());
      reply.set("metrics", telemetry_.registry.quantile_summary());
      reply.set("prometheus", telemetry_.registry.prometheus_text());
      return reply;
    }
  }
  return make_error_response(error_code::kBadRequest, "unhandled type");
}

obs::JsonValue Server::handle_submit(const Request& request) {
  std::istringstream in(request.workload_text);
  std::string load_error;
  std::optional<WorkloadStream> stream = load_stream(in, &load_error);
  if (!stream.has_value()) {
    return make_error_response(error_code::kBadWorkload,
                               "workload rejected: " + load_error);
  }
  // Arbiter admission estimate: the per-device share of the distinct-tensor
  // footprint. Computed before the stream is moved into the book of record.
  const std::uint64_t estimated_bytes_per_device =
      config_.cluster.num_devices > 0
          ? stream->total_distinct_bytes() /
                static_cast<std::uint64_t>(config_.cluster.num_devices)
          : 0;
  // With a journal open the job is admitted *held*: present in the book of
  // record (and the dedup table) but invisible to the dispatcher until its
  // admitted record is durable. Without the hold, a parallel-mode
  // dispatcher could pop, run and journal the finish of a job whose
  // admission a crash then forgets — leaving an orphaned finished record a
  // re-issued job id could later collide with.
  const SubmitOutcome outcome =
      jobs_.submit(request.tenant, request.job_name, std::move(*stream),
                   request.trace_id, request.idem,
                   /*hold=*/journal_.is_open());
  if (!outcome.admitted) {
    obs::JsonValue reply =
        make_error_response(outcome.reject_code, outcome.reject_reason);
    // Both rejection causes are transient: tell the client when to retry.
    if (outcome.reject_code == error_code::kDraining ||
        outcome.reject_code == error_code::kQueueFull) {
      reply.set("retry_after", kRetryAfterHintS);
    }
    return reply;
  }
  if (outcome.duplicate) {
    // Idempotent resubmit: answer with the original job, run nothing,
    // journal nothing.
    obs::JsonValue reply = make_ok_response();
    reply.set("job_id", outcome.job_id);
    reply.set("tenant", request.tenant);
    reply.set("duplicate", true);
    if (const std::optional<JobStatus> status = jobs_.status(outcome.job_id)) {
      reply.set("state", to_string(status->state));
      if (status->interrupted) reply.set("interrupted", true);
      if (status->replayed) reply.set("replayed", true);
    }
    return reply;
  }
  // Write-ahead: the admission record must be durable before the job can
  // dispatch or the accepting reply leave. The hold above keeps the job
  // out of next_job() across this append; only a successful append
  // releases it. A journal failure rolls the admission back — the client
  // sees a structured, retryable error and the book of record never
  // acknowledges work it could lose.
  if (journal_.is_open()) {
    JournalRecord record;
    record.kind = RecordKind::kAdmitted;
    record.job_id = outcome.job_id;
    record.tenant = request.tenant;
    record.name = request.job_name;
    record.trace_id = request.trace_id;
    record.idem = request.idem;
    record.workload_text = request.workload_text;
    std::string journal_error;
    if (!journal_.append(record, &journal_error)) {
      if (jobs_.cancel_queued_job(outcome.job_id)) {
        log_error() << "submit: " << journal_error << "; job "
                    << outcome.job_id << " rolled back";
        obs::JsonValue reply = make_error_response(
            error_code::kJournalError,
            "admission could not be journaled: " + journal_error);
        reply.set("retry_after", kRetryAfterHintS);
        return reply;
      }
      // The rollback found the job no longer QUEUED. Dispatch is gated on
      // durability, so it cannot be RUNNING; the one legitimate path here
      // is a concurrent shutdown cancelling the backlog — report the
      // journal failure, the admission is void either way. Anything else
      // means the job ran without a durable admitted record: accept the
      // admission (the work is real) and log loudly, because a restart
      // will not remember it.
      const std::optional<JobStatus> status = jobs_.status(outcome.job_id);
      if (!status.has_value() || status->state == JobState::kCancelled) {
        log_error() << "submit: " << journal_error << "; job "
                    << outcome.job_id << " cancelled by concurrent shutdown";
        obs::JsonValue reply = make_error_response(
            error_code::kJournalError,
            "admission could not be journaled: " + journal_error);
        reply.set("retry_after", kRetryAfterHintS);
        return reply;
      }
      log_error() << "submit: " << journal_error << "; job "
                  << outcome.job_id << " already "
                  << to_string(status->state)
                  << " despite the dispatch gate; accepting un-journaled "
                     "admission (a restart will not recover this job)";
      obs::JsonValue reply = make_ok_response();
      reply.set("job_id", outcome.job_id);
      reply.set("tenant", request.tenant);
      if (!request.trace_id.empty()) reply.set("trace", request.trace_id);
      reply.set("state", to_string(status->state));
      return reply;
    }
    jobs_.release_job(outcome.job_id);
  }
  // Cross-tenant arbitration on the accepted path only: pre-evict the
  // coldest other-tenant footprints the estimate would displace, and book
  // the decision in the registry. Never rejects — admission control proper
  // stays with the JobManager.
  if (arbiter_ != nullptr) {
    const mem::ArbiterAdmission admission =
        arbiter_->admit(request.tenant, estimated_bytes_per_device);
    telemetry_.registry.counter(obs::names::kMemArbiterAdmissions).add();
    if (admission.preevicted_bytes > 0) {
      telemetry_.registry.counter(obs::names::kMemArbiterPreevictedBytes)
          .add(admission.preevicted_bytes);
    }
  }
  {
    const MutexLock lock(state_mutex_);
    submit_ms_[outcome.job_id] = clock_->monotonic_ms();
    dispatch_ready_.notify_all();
  }
  obs::JsonValue reply = make_ok_response();
  reply.set("job_id", outcome.job_id);
  reply.set("tenant", request.tenant);
  if (!request.trace_id.empty()) reply.set("trace", request.trace_id);
  reply.set("state", to_string(JobState::kQueued));
  return reply;
}

// ---------------------------------------------------------------------------
// Job execution (dispatcher thread only)

void Server::run_job(std::uint64_t job_id) {
  const WorkloadStream stream = jobs_.take_stream(job_id);
  const DispatchInfo info = jobs_.dispatch_info(job_id);

  if (journal_.is_open()) {
    JournalRecord record;
    record.kind = RecordKind::kDispatched;
    record.job_id = job_id;
    std::string journal_error;
    if (!journal_.append(record, &journal_error)) {
      // Not fatal: without the dispatched record a restart re-runs the job
      // from its admitted record, which is exactly what happens anyway.
      log_error() << "dispatch of job " << job_id << ": " << journal_error;
    }
  }

  double submit_ms = -1.0;
  {
    const MutexLock lock(state_mutex_);
    const auto it = submit_ms_.find(job_id);
    if (it != submit_ms_.end()) {
      submit_ms = it->second;
      submit_ms_.erase(it);
    }
  }
  const double dispatch_ms = clock_->monotonic_ms();
  const double queue_ms = submit_ms >= 0.0 ? dispatch_ms - submit_ms : 0.0;

  // Span tree for this job: root "job" (id 1, emitted last so it can carry
  // the outcome), then "queue" and "dispatch" children; run_stream parents
  // its sched/exec/recovery spans at the dispatch span. Every recorded
  // value is deterministic — wall latencies live in histograms, not spans.
  obs::TraceContext trace;
  trace.trace_id = info.trace_id.empty() ? "job-" + std::to_string(job_id)
                                         : info.trace_id;
  trace.job_id = job_id;
  trace.tenant = info.tenant;
  const std::uint64_t root_span = trace.alloc();
  const auto emit_span = [&](obs::SpanEvent event, std::uint64_t span_id,
                             std::uint64_t parent_id) {
    event.trace_id = trace.trace_id;
    event.job_id = job_id;
    event.tenant = info.tenant;
    event.span_id = span_id;
    event.parent_id = parent_id;
    spans_sink_->span(std::move(event));
  };
  if (spans_sink_ != nullptr) {
    obs::SpanEvent queue_span;
    queue_span.name = obs::names::kSpanQueue;
    queue_span.attrs_int.emplace_back(
        "dispatch_seq", static_cast<std::int64_t>(info.dispatch_seq));
    queue_span.attrs_int.emplace_back(
        "depth_at_submit", static_cast<std::int64_t>(info.depth_at_submit));
    emit_span(std::move(queue_span), trace.alloc(), root_span);

    obs::SpanEvent dispatch_span;
    dispatch_span.name = obs::names::kSpanDispatch;
    trace.parent_span = trace.alloc();
    emit_span(std::move(dispatch_span), trace.parent_span, root_span);
  }

  // Fresh scheduler + fresh simulated cluster per job: job results are a
  // pure function of (config, workload), independent of queue history.
  const std::unique_ptr<Scheduler> scheduler =
      make_scheduler(config_.scheduler, config_.seed);

  RunOptions options;
  options.bounds = bounds_provider();
  options.telemetry = &telemetry_;
  options.faults = config_.faults;
  options.retry = config_.retry;
  if (spans_sink_ != nullptr) {
    options.span_sink = spans_sink_.get();
    options.trace_context = &trace;
  }
  options.decision_latency = decision_scratch_.get();
  // Fresh policy instance per job: tracker state is per-stream and must not
  // leak between tenants.
  std::unique_ptr<mem::EvictionPolicy> evict_policy;
  if (config_.evict_policy.has_value()) {
    evict_policy = mem::make_policy(*config_.evict_policy);
    options.evict_policy = evict_policy.get();
  }
  const RunResult result =
      run_stream(stream, *scheduler, config_.cluster, options);

  // Book the job's modeled residual footprint against its tenant so the
  // next admission sees it; mirror the total in a per-tenant gauge.
  if (arbiter_ != nullptr) {
    arbiter_->record_run(info.tenant, result.device_resident_bytes,
                         result.residency_epoch);
    telemetry_.registry
        .gauge(obs::names::mem_tenant_metric(
            info.tenant, obs::names::kMemTenantResidentBytesSuffix))
        .set(static_cast<double>(arbiter_->tenant_resident_bytes(info.tenant)));
  }

  // One lock amortised over the whole job's scheduling decisions.
  if (decision_scratch_ != nullptr) {
    decision_scratch_->flush_into(telemetry_.registry.histogram(
        obs::names::kSchedDecisionLatencyUs,
        obs::names::decision_latency_bounds_us()));
  }

  // Session aggregates for the serve-session report.
  ++jobs_run_;
  total_flops_ += result.metrics.total_flops;
  total_makespan_s_ += result.metrics.makespan_s;
  total_overhead_ms_ += result.scheduling_overhead_ms;
  total_reused_ += result.metrics.reused_operands;
  total_fetched_ += result.metrics.fetched_operands;
  for (std::size_t d = 0;
       d < result.device_busy_s.size() && d < device_busy_s_.size(); ++d) {
    device_busy_s_[d] += result.device_busy_s[d];
  }

  // Result document retained for pickup: the run summary plus the
  // per-vector characteristics the bounds model served online.
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("scheduler", result.scheduler_name);
  doc.set("completed", result.completed);
  if (!result.error.empty()) doc.set("error", result.error);
  doc.set("makespan_s", result.metrics.makespan_s);
  doc.set("gflops", result.metrics.gflops());
  doc.set("reuse_rate", result.metrics.reuse_rate());
  doc.set("scheduling_overhead_ms", result.scheduling_overhead_ms);
  if (!result.metrics.evict_policy.empty()) {
    doc.set("evict_policy", result.metrics.evict_policy);
  }
  doc.set("vectors",
          static_cast<std::uint64_t>(result.per_vector_characteristics.size()));
  if (result.devices_lost > 0 || result.tasks_reexecuted > 0) {
    doc.set("devices_lost", result.devices_lost);
    doc.set("tasks_reexecuted", result.tasks_reexecuted);
    doc.set("recovered", result.recovered);
  }
  obs::JsonValue vectors = obs::JsonValue::array();
  for (const DataCharacteristics& c : result.per_vector_characteristics) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("vector_size", c.vector_size);
    entry.set("tensor_extent", c.tensor_extent);
    entry.set("distribution_bias", c.distribution_bias);
    entry.set("repeated_rate", c.repeated_rate);
    vectors.push_back(std::move(entry));
  }
  doc.set("per_vector", std::move(vectors));

  doc.set("queue_latency_ms", queue_ms);

  // Root span last: it carries the terminal state and the simulated
  // makespan, and its id (1) is smaller than every child's, so the tree
  // reassembles no matter the file order.
  if (spans_sink_ != nullptr) {
    obs::SpanEvent job_span;
    job_span.name = obs::names::kSpanJob;
    job_span.duration_ms = result.metrics.makespan_s * 1000.0;
    job_span.attrs_int.emplace_back(
        "vectors",
        static_cast<std::int64_t>(result.per_vector_characteristics.size()));
    if (result.tasks_reexecuted > 0) {
      job_span.attrs_int.emplace_back(
          "tasks_reexecuted",
          static_cast<std::int64_t>(result.tasks_reexecuted));
    }
    job_span.attrs_str.emplace_back(
        "state", to_string(result.completed ? JobState::kDone
                                            : JobState::kFailed));
    emit_span(std::move(job_span), root_span, 0);
  }

  CompletionTiming timing;
  timing.queue_latency_ms = queue_ms;
  timing.e2e_latency_ms =
      submit_ms >= 0.0 ? clock_->monotonic_ms() - submit_ms : 0.0;
  timing.sim_makespan_ms = result.metrics.makespan_s * 1000.0;
  // The finished record goes durable BEFORE the in-memory terminal
  // transition: once a client can observe DONE, no restart may un-finish
  // (and re-run) the job.
  journal_finished(job_id,
                   result.completed ? JobState::kDone : JobState::kFailed,
                   result.error, &doc);
  if (result.completed) {
    jobs_.complete(job_id, std::move(doc), timing);
  } else {
    jobs_.fail(job_id, result.error, std::move(doc), timing);
  }
}

// ---------------------------------------------------------------------------
// Socket I/O

void Server::io_once(std::vector<std::unique_ptr<Connection>>& conns,
                     int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns.size() + 1);
  pollfd lf{};
  lf.fd = listener_;
  lf.events = POLLIN;
  fds.push_back(lf);
  for (const std::unique_ptr<Connection>& conn : conns) {
    pollfd pf{};
    pf.fd = conn->fd;
    pf.events = POLLIN;
    if (!conn->outbuf.empty()) pf.events |= POLLOUT;
    fds.push_back(pf);
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return;

  // Accept every pending connection.
  if ((fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept(listener_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN (or another lane won the race)
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
      conn->fd = fd;
      conns.push_back(std::move(conn));
    }
  }

  // Service existing connections; dead ones are compacted out afterwards.
  for (std::size_t i = 0; i < conns.size(); ++i) {
    Connection& conn = *conns[i];
    const pollfd* pf = nullptr;
    for (std::size_t f = 1; f < fds.size(); ++f) {
      if (fds[f].fd == conn.fd) {
        pf = &fds[f];
        break;
      }
    }
    if (pf == nullptr) continue;  // accepted this round; polled next round
    bool dead = (pf->revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                (pf->revents & POLLIN) == 0;
    if ((pf->revents & POLLIN) != 0) {
      char buf[64 * 1024];
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
          continue;
        }
        if (n == 0) dead = true;  // orderly peer close
        break;                    // EAGAIN or error
      }
      for (;;) {
        bool oversized = false;
        const std::optional<std::string> frame =
            conn.reader.next_frame(&oversized);
        if (oversized) {
          conn.outbuf += encode_frame(make_error_response(
              error_code::kFrameTooLong,
              "frame exceeds " + std::to_string(config_.max_frame_bytes) +
                  " bytes"));
        }
        if (!frame.has_value()) break;
        conn.outbuf += encode_frame(handle_frame(*frame));
      }
    }
    if (!conn.outbuf.empty()) {
      const ssize_t n = ::send(conn.fd, conn.outbuf.data(),
                               conn.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbuf.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        dead = true;
      }
    }
    if (dead && conn.outbuf.empty()) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  conns.erase(std::remove_if(conns.begin(), conns.end(),
                             [](const std::unique_ptr<Connection>& c) {
                               return c->fd < 0;
                             }),
              conns.end());
}

void Server::io_loop(std::vector<std::unique_ptr<Connection>>& conns) {
  for (;;) {
    check_stop_flag();
    {
      const MutexLock lock(state_mutex_);
      if (stopped_) break;
    }
    io_once(conns, config_.poll_timeout_ms);
  }
  // Give queued replies one last chance to leave, then hang up.
  Stopwatch flush_watch;
  bool pending = true;
  while (pending && flush_watch.elapsed_ms() < 500.0) {
    pending = false;
    for (const std::unique_ptr<Connection>& conn : conns) {
      if (!conn->outbuf.empty()) pending = true;
    }
    if (pending) io_once(conns, 10);
  }
  for (const std::unique_ptr<Connection>& conn : conns) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conns.clear();
}

void Server::dispatcher_loop() {
  for (;;) {
    std::optional<std::uint64_t> job;
    {
      const MutexLock lock(state_mutex_);
      for (;;) {
        job = jobs_.next_job();
        if (job.has_value()) break;
        if (phase_ == Phase::kDraining && jobs_.idle()) {
          stopped_ = true;
          return;
        }
        dispatch_ready_.wait(state_mutex_);
      }
    }
    run_job(*job);
  }
}

void Server::serve_serial() {
  std::vector<std::unique_ptr<Connection>> conns;
  for (;;) {
    check_stop_flag();
    io_once(conns, jobs_.queued_total() > 0 ? 0 : config_.poll_timeout_ms);
    if (const std::optional<std::uint64_t> job = jobs_.next_job()) {
      run_job(*job);
      continue;
    }
    if (should_stop()) break;
  }
  {
    const MutexLock lock(state_mutex_);
    stopped_ = true;
  }
  // Flush pending replies (the drain acknowledgement, typically).
  Stopwatch flush_watch;
  bool pending = true;
  while (pending && flush_watch.elapsed_ms() < 500.0) {
    pending = false;
    for (const std::unique_ptr<Connection>& conn : conns) {
      if (!conn->outbuf.empty()) pending = true;
    }
    if (pending) io_once(conns, 10);
  }
  for (const std::unique_ptr<Connection>& conn : conns) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void Server::serve_parallel(int lanes) {
  // Lane 0 dispatches; lanes 1..n service connections. Each I/O lane owns
  // the connections it accepted (the kernel load-balances accept() across
  // lanes polling the shared listener).
  parallel::parallel_for(
      static_cast<std::size_t>(lanes) + 1, [this](std::size_t lane) {
        if (lane == 0) {
          dispatcher_loop();
        } else {
          std::vector<std::unique_ptr<Connection>> conns;
          io_loop(conns);
        }
      });
}

int Server::serve() {
  MICCO_EXPECTS_MSG(started_, "call start() before serve()");

  // The serial loop is the deterministic configuration; I/O fans out over
  // the worker pool only when the pool actually has lanes to spare. Sized
  // against the *effective* width: every lane here blocks in poll(), so a
  // lane the capped pool would run serially (never concurrently) is not
  // spare capacity — it would let dispatcher_loop starve the I/O lanes.
  const int pool = parallel::effective_threads();
  const int lanes = std::min(config_.io_lanes, pool - 1);
  if (lanes >= 1) {
    serve_parallel(lanes);
  } else {
    serve_serial();
  }

  ::close(listener_);
  listener_ = -1;

  // Recovery summary span, emitted after every job's tree: the re-run jobs
  // keep the same span sequence numbers as an uninterrupted session would
  // produce, and log consumers (the chaos harness) can strip the final line
  // before byte-comparing.
  if (spans_sink_ != nullptr &&
      recovered_finished_ + recovered_requeued_ > 0) {
    obs::SpanEvent replay;
    replay.trace_id = "journal-replay";
    replay.span_id = 1;
    replay.parent_id = 0;
    replay.name = obs::names::kSpanJournalReplay;
    replay.attrs_int.emplace_back(
        "replayed_finished", static_cast<std::int64_t>(recovered_finished_));
    replay.attrs_int.emplace_back(
        "requeued", static_cast<std::int64_t>(recovered_requeued_));
    if (recovered_torn_tail_) replay.attrs_int.emplace_back("torn_tail", 1);
    spans_sink_->span(std::move(replay));
  }

  journal_.close();
  if (sink_ != nullptr) sink_->flush();
  if (spans_sink_ != nullptr) spans_sink_->flush();

  if (!config_.report_path.empty()) {
    const obs::JsonValue report = session_report();
    const std::string complaint = obs::validate_report(report);
    if (!complaint.empty()) {
      log_error() << "serve: session report invalid: " << complaint;
      return 1;
    }
    obs::write_report_file(report, config_.report_path);
  }
  return 0;
}

obs::JsonValue Server::session_report() const {
  obs::ReportInputs in;
  in.scheduler = scheduler_name_;
  in.generated_at = started_at_utc_;
  in.num_devices = config_.cluster.num_devices;
  in.makespan_s = total_makespan_s_;
  in.gflops = total_makespan_s_ > 0.0
                  ? static_cast<double>(total_flops_) / total_makespan_s_ / 1e9
                  : 0.0;
  in.scheduling_overhead_ms = total_overhead_ms_;
  const std::uint64_t operands = total_reused_ + total_fetched_;
  in.reuse_rate = operands > 0 ? static_cast<double>(total_reused_) /
                                     static_cast<double>(operands)
                               : 0.0;

  obs::JsonValue metrics = obs::JsonValue::object();
  metrics.set("jobs_run", jobs_run_);
  metrics.set("total_flops", total_flops_);
  metrics.set("makespan_s", total_makespan_s_);
  metrics.set("reused_operands", total_reused_);
  metrics.set("fetched_operands", total_fetched_);
  in.metrics = std::move(metrics);

  double busy_max = 0.0;
  double busy_sum = 0.0;
  for (std::size_t d = 0; d < device_busy_s_.size(); ++d) {
    const double busy = device_busy_s_[d];
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
    obs::DeviceRollup rollup;
    rollup.device = static_cast<int>(d);
    rollup.busy_s = busy;
    rollup.utilization =
        total_makespan_s_ > 0.0 ? busy / total_makespan_s_ : 0.0;
    in.devices.push_back(rollup);
  }
  const double busy_mean =
      device_busy_s_.empty()
          ? 0.0
          : busy_sum / static_cast<double>(device_busy_s_.size());
  in.imbalance_ratio = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;

  return obs::build_report(in, telemetry_.registry);
}

}  // namespace micco::service
