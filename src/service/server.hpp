// The MICCO scheduling daemon (DESIGN.md §6).
//
// A long-lived server that accepts NDJSON frames (service/protocol.hpp)
// over a Unix-domain socket, admits workloads into the multi-tenant
// JobManager, and dispatches admitted jobs one at a time through the
// existing pipeline: fresh scheduler per job, fresh simulated cluster per
// job, per-vector reuse bounds served online from a trained regression
// model (static bounds when no model is loaded), fault plans and the
// recovery path applied exactly as in batch runs.
//
// Threading model. Job execution is *always* single-threaded (one
// dispatcher), so the session decision log is a pure function of the
// dispatch order. Connection I/O either shares that same thread (serial
// mode — the deterministic configuration: one loop alternates between
// polling sockets and running the next job) or fans out over the parallel/
// worker pool (one dispatcher lane + N I/O lanes sharing the listener).
// All cross-lane state is the JobManager (internally locked) and the small
// phase/latency state behind the server's own annotated mutex.
//
// Lifecycle. serve() blocks until the session ends: a `drain` request (or
// SIGTERM via ServerConfig::stop_flag) stops admission and finishes the
// backlog; a `shutdown` request additionally cancels queued jobs. Either
// way the daemon finishes in-flight work, flushes the decision log, writes
// the session run report (same schema as batch reports) and exits 0.
//
// Crash safety (DESIGN.md §8). With a journal configured, every admission
// is made durable before the submit reply leaves (write-ahead), dispatch
// and terminal transitions are journaled as they happen, and start()
// replays an existing journal before serving: finished jobs answer again,
// interrupted jobs re-enter the queue in admission order. Replay order
// equals journal order, so a recovering `--threads=1` session's decision
// log is byte-identical to an uninterrupted session running the same
// remaining jobs.
#pragma once

#include <csignal>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"
#include "core/bounds_model.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "mem/arbiter.hpp"
#include "mem/policy.hpp"
#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "service/job_manager.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"

namespace micco::service {

struct ServerConfig {
  /// Filesystem path of the Unix-domain listening socket. Created by
  /// start(), unlinked when the server object is destroyed.
  std::string socket_path;

  /// Connection-I/O lanes beyond the dispatcher. 0 selects the serial
  /// deterministic loop (I/O and dispatch share one thread); higher values
  /// fan I/O out over the parallel/ worker pool (capped at pool width − 1,
  /// so a one-thread pool always serves serially).
  int io_lanes = 0;

  SchedulerKind scheduler = SchedulerKind::kMiccoNaive;
  std::uint64_t seed = 7;  ///< scheduler tie-break seed, fixed per session

  /// Optional trained bounds model (three concatenated regressors, the
  /// `micco train` format). Loaded at start(); predictions then drive the
  /// per-vector reuse-bound triple online. Empty: static_bounds is used.
  std::string model_path;
  /// Fallback reuse-bound triple when no model is loaded.
  ReuseBounds static_bounds{};

  ClusterConfig cluster;

  /// Optional fault plan applied to every job (not owned; must outlive the
  /// server). The recovery path (faults/, lineage re-execution) absorbs
  /// injected device losses exactly as in batch runs.
  const FaultPlan* faults = nullptr;
  RetryPolicy retry;

  AdmissionConfig admission;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Optional eviction policy for every job's simulator (mem/, DESIGN.md
  /// §11). Unset: the legacy LRU default path — decision logs, reports and
  /// traces stay byte-identical to pre-policy sessions. A fresh policy
  /// instance is built per job, so tracker state never leaks across jobs.
  std::optional<mem::EvictPolicyKind> evict_policy;

  /// Cross-tenant memory arbiter (mem/arbiter.hpp): admission consults
  /// modeled per-tenant residency, pre-evicts cold cross-tenant footprints,
  /// and surfaces the accounting in stats/metrics replies and mem.* metrics.
  /// Off by default — replies and registry snapshots are unchanged then.
  bool mem_arbiter = false;

  /// Durable job journal (path empty: journaling + recovery disabled). An
  /// existing journal at the configured path is replayed at start().
  JournalConfig journal;

  /// Optional JSONL decision/cluster event log for the whole session.
  std::string decisions_path;
  /// Optional session run report (validates against the obs report schema).
  std::string report_path;
  /// Optional JSONL span-tree trace for the whole session (DESIGN.md §7):
  /// every dispatched job emits queue/dispatch/sched/exec/recovery spans
  /// under one root. Deterministic at io_lanes = 0 — two identical sessions
  /// produce byte-identical trace files.
  std::string spans_path;

  /// Timestamp source for queue/end-to-end latency accounting, uptime and
  /// the report's generated_at stamp. nullptr selects the process-wide
  /// SystemClock; tests inject an obs::ManualClock to script latencies.
  obs::Clock* clock = nullptr;

  /// Optional external stop request (the SIGTERM bridge): when the pointed-
  /// at flag becomes non-zero the server behaves as if a `drain` request
  /// arrived. Not owned; typically a volatile sig_atomic_t set by a signal
  /// handler installed in the CLI.
  const volatile std::sig_atomic_t* stop_flag = nullptr;

  /// Socket poll granularity; also bounds stop_flag reaction latency.
  int poll_timeout_ms = 20;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens on the configured socket and loads the bounds model.
  /// Returns false with a diagnostic on any setup failure (socket in use,
  /// unreadable model, invalid config); never aborts.
  bool start(std::string* error);

  /// Serves until drained or shut down. Returns 0 on a clean exit (report
  /// written, telemetry flushed), 1 when the session report failed to
  /// validate or write. Call start() first.
  int serve();

  /// Thread-safe in-process equivalents of the wire requests, used by
  /// tests/benches embedding the server.
  void request_drain();
  void request_shutdown();

  JobManager& jobs() { return jobs_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }
  /// The cross-tenant memory arbiter; nullptr unless config.mem_arbiter.
  mem::MemoryArbiter* arbiter() { return arbiter_.get(); }

  /// Builds the session run report from the aggregates accumulated by the
  /// dispatcher. Meaningful once serve() returned (or between jobs in
  /// tests); validates against the batch report schema.
  obs::JsonValue session_report() const;

 private:
  enum class Phase {
    kServing,   ///< admitting and dispatching
    kDraining,  ///< admission closed; backlog still dispatching
  };

  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;  ///< bytes accepted for write but not yet sent

    explicit Connection(std::size_t max_frame) : reader(max_frame) {}
  };

  // -- serving loops ---------------------------------------------------------
  void serve_serial();
  void serve_parallel(int lanes);
  void dispatcher_loop();
  void io_loop(std::vector<std::unique_ptr<Connection>>& conns);
  /// One poll/accept/read/write round over `conns`; returns after at most
  /// `timeout_ms`. `listener` < 0 skips accepting (lane without listener).
  void io_once(std::vector<std::unique_ptr<Connection>>& conns,
               int timeout_ms);
  void check_stop_flag();

  // -- request handling ------------------------------------------------------
  /// Handles one frame, returns the reply document.
  obs::JsonValue handle_frame(const std::string& frame);
  obs::JsonValue handle_request(const Request& request);
  obs::JsonValue handle_submit(const Request& request);

  // -- job execution (dispatcher thread only) --------------------------------
  void run_job(std::uint64_t job_id);
  BoundsProvider* bounds_provider();
  bool should_stop() MICCO_EXCLUDES(state_mutex_);

  // -- crash safety ----------------------------------------------------------
  /// Replays an existing journal (torn tail dropped + truncated first) and
  /// opens the writer for append. False with a diagnostic on I/O failure.
  bool recover_from_journal(std::string* error);
  /// cancel_queued + a journaled CANCELLED record per job (shutdown path).
  std::size_t cancel_backlog();
  /// Journals a terminal transition; failures are logged, not fatal (the
  /// job still finishes in memory; a restart would re-run it).
  void journal_finished(std::uint64_t job_id, JobState state,
                        const std::string& error_text,
                        const obs::JsonValue* result);

  ServerConfig config_;
  JobManager jobs_;
  obs::Telemetry telemetry_;
  std::ofstream decisions_file_;
  std::unique_ptr<obs::BufferedJsonlEventSink> sink_;
  std::ofstream spans_file_;
  std::unique_ptr<obs::JsonlSpanSink> spans_sink_;
  /// Dispatcher-thread-only decision-latency buffer, flushed into the
  /// registry once per job (one lock amortised over the whole run).
  std::unique_ptr<obs::HistogramScratch> decision_scratch_;

  int listener_ = -1;
  /// Exclusive flock on "<socket_path>.lock", acquired by start() and held
  /// for the daemon's lifetime: serializes startup on a socket path (the
  /// probe-then-unlink takeover alone is a TOCTOU window) and is released
  /// by the kernel even on SIGKILL. The lock *file* is deliberately never
  /// unlinked — deleting it would reopen the race it exists to close.
  int lock_fd_ = -1;
  bool started_ = false;
  std::string scheduler_name_;

  JournalWriter journal_;
  // Replay outcome (set by start(), read by serve() for the replay span).
  std::uint64_t recovered_finished_ = 0;
  std::uint64_t recovered_requeued_ = 0;
  bool recovered_torn_tail_ = false;

  std::unique_ptr<RegressionBoundsProvider> model_bounds_;
  std::unique_ptr<FixedBounds> static_bounds_;
  /// Cross-tenant residency arbitration (created at start() when enabled;
  /// internally locked at rank kLockRankMemArbiter).
  std::unique_ptr<mem::MemoryArbiter> arbiter_;

  obs::Clock* clock_ = nullptr;   ///< config_.clock or the process default
  double session_start_ms_ = 0.0; ///< monotonic zero for latencies + uptime
  std::string started_at_utc_;    ///< the one wall capture (report stamp)

  mutable Mutex state_mutex_{"Server::state_mutex_", kLockRankServerState};
  CondVar dispatch_ready_ MICCO_GUARDED_BY(state_mutex_);
  Phase phase_ MICCO_GUARDED_BY(state_mutex_) = Phase::kServing;
  bool stopped_ MICCO_GUARDED_BY(state_mutex_) = false;
  /// Submit wall time per job id, consumed by the dispatcher on completion.
  std::map<std::uint64_t, double> submit_ms_ MICCO_GUARDED_BY(state_mutex_);

  // -- session aggregates (dispatcher thread only; read after serve()) ------
  std::uint64_t jobs_run_ = 0;
  std::uint64_t total_flops_ = 0;
  double total_makespan_s_ = 0.0;
  double total_overhead_ms_ = 0.0;
  std::uint64_t total_reused_ = 0;
  std::uint64_t total_fetched_ = 0;
  std::vector<double> device_busy_s_;
};

}  // namespace micco::service
