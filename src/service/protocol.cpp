#include "service/protocol.hpp"

#include <utility>

namespace micco::service {

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kSubmit: return "submit";
    case MessageType::kStatus: return "status";
    case MessageType::kResult: return "result";
    case MessageType::kDrain: return "drain";
    case MessageType::kShutdown: return "shutdown";
    case MessageType::kStats: return "stats";
    case MessageType::kMetrics: return "metrics";
  }
  return "?";
}

std::optional<MessageType> parse_message_type(const std::string& text) {
  if (text == "submit") return MessageType::kSubmit;
  if (text == "status") return MessageType::kStatus;
  if (text == "result") return MessageType::kResult;
  if (text == "drain") return MessageType::kDrain;
  if (text == "shutdown") return MessageType::kShutdown;
  if (text == "stats") return MessageType::kStats;
  if (text == "metrics") return MessageType::kMetrics;
  return std::nullopt;
}

namespace {

obs::JsonValue request_skeleton(MessageType type) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("v", kProtocolVersion);
  doc.set("type", to_string(type));
  return doc;
}

}  // namespace

obs::JsonValue make_submit_request(const std::string& tenant,
                                   const std::string& job_name,
                                   const std::string& workload_text,
                                   const std::string& trace_id,
                                   const std::string& idem) {
  obs::JsonValue doc = request_skeleton(MessageType::kSubmit);
  doc.set("tenant", tenant);
  if (!job_name.empty()) doc.set("job_name", job_name);
  if (!trace_id.empty()) doc.set("trace", trace_id);
  if (!idem.empty()) doc.set("idem", idem);
  doc.set("workload", workload_text);
  return doc;
}

obs::JsonValue make_job_request(MessageType type, std::uint64_t job_id) {
  obs::JsonValue doc = request_skeleton(type);
  doc.set("job_id", job_id);
  return doc;
}

obs::JsonValue make_plain_request(MessageType type) {
  return request_skeleton(type);
}

obs::JsonValue make_ok_response() {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("ok", true);
  return doc;
}

obs::JsonValue make_error_response(const std::string& code,
                                   const std::string& message) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("ok", false);
  doc.set("code", code);
  doc.set("message", message);
  return doc;
}

std::optional<Request> parse_request(const obs::JsonValue& doc,
                                     obs::JsonValue* error_reply) {
  const auto fail = [&](const char* code, const std::string& message) {
    if (error_reply != nullptr) {
      *error_reply = make_error_response(code, message);
    }
    return std::nullopt;
  };
  if (doc.kind() != obs::JsonValue::Kind::kObject) {
    return fail(error_code::kBadRequest, "request is not a JSON object");
  }
  const obs::JsonValue* version = doc.find("v");
  if (version == nullptr || !version->is_number()) {
    return fail(error_code::kBadVersion, "missing protocol version 'v'");
  }
  if (version->as_int() != kProtocolVersion) {
    return fail(error_code::kBadVersion,
                "unsupported protocol version " +
                    std::to_string(version->as_int()) + " (daemon speaks " +
                    std::to_string(kProtocolVersion) + ")");
  }
  const obs::JsonValue* type_field = doc.find("type");
  if (type_field == nullptr ||
      type_field->kind() != obs::JsonValue::Kind::kString) {
    return fail(error_code::kBadRequest, "missing request 'type'");
  }
  const std::optional<MessageType> type =
      parse_message_type(type_field->as_string());
  if (!type.has_value()) {
    return fail(error_code::kUnknownType,
                "unknown message type '" + type_field->as_string() + "'");
  }

  Request req;
  req.type = *type;
  switch (*type) {
    case MessageType::kSubmit: {
      const obs::JsonValue* workload = doc.find("workload");
      if (workload == nullptr ||
          workload->kind() != obs::JsonValue::Kind::kString) {
        return fail(error_code::kBadRequest,
                    "submit needs a string 'workload' field");
      }
      req.workload_text = workload->as_string();
      const obs::JsonValue* tenant = doc.find("tenant");
      if (tenant != nullptr) {
        if (tenant->kind() != obs::JsonValue::Kind::kString) {
          return fail(error_code::kBadRequest, "'tenant' must be a string");
        }
        req.tenant = tenant->as_string();
      }
      if (req.tenant.empty()) req.tenant = "default";
      const obs::JsonValue* name = doc.find("job_name");
      if (name != nullptr) {
        if (name->kind() != obs::JsonValue::Kind::kString) {
          return fail(error_code::kBadRequest, "'job_name' must be a string");
        }
        req.job_name = name->as_string();
      }
      const obs::JsonValue* trace = doc.find("trace");
      if (trace != nullptr) {
        if (trace->kind() != obs::JsonValue::Kind::kString) {
          return fail(error_code::kBadRequest, "'trace' must be a string");
        }
        req.trace_id = trace->as_string();
      }
      const obs::JsonValue* idem = doc.find("idem");
      if (idem != nullptr) {
        if (idem->kind() != obs::JsonValue::Kind::kString) {
          return fail(error_code::kBadRequest, "'idem' must be a string");
        }
        req.idem = idem->as_string();
      }
      break;
    }
    case MessageType::kStatus:
    case MessageType::kResult: {
      const obs::JsonValue* id = doc.find("job_id");
      if (id == nullptr || id->kind() != obs::JsonValue::Kind::kInt ||
          id->as_int() < 0) {
        return fail(error_code::kBadRequest,
                    "status/result need an integer 'job_id'");
      }
      req.job_id = static_cast<std::uint64_t>(id->as_int());
      break;
    }
    case MessageType::kDrain:
    case MessageType::kShutdown:
    case MessageType::kStats:
    case MessageType::kMetrics:
      break;
  }
  return req;
}

std::string encode_frame(const obs::JsonValue& doc) {
  std::string frame = doc.dump();
  frame += '\n';
  return frame;
}

void FrameReader::feed(std::string_view bytes) {
  for (const char c : bytes) {
    if (discarding_) {
      // Swallow the rest of the oversized frame; its newline re-syncs the
      // stream ('\n' never appears inside a payload — the JSON writer
      // escapes every control character).
      if (c == '\n') discarding_ = false;
      continue;
    }
    if (c == '\n') {
      ready_bytes_ += partial_.size();
      ready_.push_back(std::move(partial_));
      partial_.clear();
      continue;
    }
    partial_ += c;
    if (partial_.size() > max_frame_bytes_) {
      // The in-flight line outgrew the limit: drop what arrived of it and
      // keep dropping until its terminating newline.
      partial_.clear();
      discarding_ = true;
      pending_oversized_ = true;
    }
  }
}

std::optional<std::string> FrameReader::next_frame(bool* oversized) {
  if (oversized != nullptr) {
    *oversized = pending_oversized_;
  }
  pending_oversized_ = false;
  if (ready_.empty()) return std::nullopt;
  std::string frame = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= frame.size();
  return frame;
}

}  // namespace micco::service
