// Synchronous client for the scheduling daemon (DESIGN.md §6).
//
// One Client owns one Unix-domain connection and speaks the NDJSON protocol
// (service/protocol.hpp) request/reply in lockstep: send one frame, read
// frames until a full line arrives, parse it. Used by the `micco submit /
// status / drain` CLI verbs and by the service tests/benches; it is not
// thread-safe — use one Client per thread.
//
// Robustness (DESIGN.md §8): an optional per-request deadline bounds every
// reply wait (poll before recv; expiry surfaces as a structured "timeout"
// error document, and the connection is closed so a late reply cannot
// desynchronize the request/reply lockstep), connect_retry() reconnects
// with faults::RetryPolicy backoff, and submit_retrying() combines both
// with an idempotency token so a retried submit after a lost reply never
// double-runs the job.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "faults/retry.hpp"
#include "obs/json.hpp"
#include "service/protocol.hpp"

namespace micco::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon socket. Returns false with a diagnostic when the
  /// daemon is not reachable.
  bool connect(const std::string& socket_path, std::string* error);
  /// connect() with RetryPolicy backoff between attempts (wall-clock
  /// sleeps): a client racing daemon startup — or a daemon restarting after
  /// a crash — connects as soon as the socket answers.
  bool connect_retry(const std::string& socket_path,
                     const RetryPolicy& policy, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Per-request reply deadline in wall milliseconds; 0 (the default)
  /// blocks indefinitely. On expiry read_reply() returns a structured
  /// {"ok": false, "code": "timeout"} document — not a transport failure —
  /// and closes the connection, so a late reply from a wedged daemon can
  /// never be mistaken for the answer to the next request.
  void set_deadline_ms(double deadline_ms) { deadline_ms_ = deadline_ms; }
  double deadline_ms() const { return deadline_ms_; }

  /// Sends `request` as one frame and blocks for the reply document.
  /// nullopt with a diagnostic on transport failure (daemon gone, reply
  /// malformed); protocol-level errors come back as parsed {"ok": false}
  /// documents, not as transport failures.
  std::optional<obs::JsonValue> call(const obs::JsonValue& request,
                                     std::string* error);

  /// Lower-level primitives for pipelining: write pre-encoded frame bytes
  /// without waiting, then collect replies one at a time. `call` is
  /// send_raw(encode_frame(request)) followed by one read_reply.
  bool send_raw(const std::string& bytes, std::string* error);
  std::optional<obs::JsonValue> read_reply(std::string* error);

  // -- Convenience wrappers for the v1 request vocabulary -------------------
  /// submit() mints a deterministic trace id for the request (see
  /// mint_trace_id) so every job this client submits arrives with an
  /// end-to-end trace identity without the caller doing anything.
  std::optional<obs::JsonValue> submit(const std::string& tenant,
                                       const std::string& job_name,
                                       const std::string& workload_text,
                                       std::string* error);
  /// submit() carrying a client-minted idempotency token: the daemon runs
  /// the job at most once per (tenant, token), so the call is safe to
  /// repeat after a lost reply. A duplicate answers with the original job
  /// id and "duplicate": true.
  std::optional<obs::JsonValue> submit_idempotent(
      const std::string& tenant, const std::string& job_name,
      const std::string& workload_text, const std::string& idem,
      std::string* error);
  /// The crash-safe submit loop: one trace id and one idempotency token are
  /// minted up front, then the request is retried across timeouts and
  /// transport failures (reconnecting with backoff between attempts).
  /// Structured rejections (queue_full, draining, ...) are final and
  /// returned as-is. Requires a prior successful connect() so the socket
  /// path is known. `idem` may be empty to auto-mint a token from the
  /// trace id plus per-client entropy — unique across client processes, so
  /// an independent submit of the same (tenant, name) is never mistaken
  /// for a retry.
  std::optional<obs::JsonValue> submit_retrying(
      const std::string& tenant, const std::string& job_name,
      const std::string& workload_text, const std::string& idem,
      const RetryPolicy& policy, std::string* error);
  std::optional<obs::JsonValue> status(std::uint64_t job_id,
                                       std::string* error);
  std::optional<obs::JsonValue> result(std::uint64_t job_id,
                                       std::string* error);
  std::optional<obs::JsonValue> stats(std::string* error);
  std::optional<obs::JsonValue> metrics(std::string* error);
  std::optional<obs::JsonValue> drain(std::string* error);
  std::optional<obs::JsonValue> shutdown(std::string* error);

  /// "t-<fnv1a64(tenant, job_name)>-<n>": a pure function of the submit
  /// arguments and this client's 0-based submit sequence — no RNG, no wall
  /// clock — so identical client sessions mint identical ids and traces
  /// stay byte-diffable.
  static std::string mint_trace_id(const std::string& tenant,
                                   const std::string& job_name,
                                   std::uint64_t sequence);

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::uint64_t submit_seq_ = 0;  ///< submits sent over this client
  std::string socket_path_;       ///< last connect() target (for reconnects)
  double deadline_ms_ = 0.0;      ///< 0: block indefinitely
  /// Per-client entropy suffix for auto-minted idempotency tokens, minted
  /// lazily on the first token-less submit_retrying() and reused after.
  std::string idem_nonce_;
};

}  // namespace micco::service
