// Durable write-ahead journal of job lifecycle records (DESIGN.md §8).
//
// The daemon's crash-safety contract rests on one append-only NDJSON file:
// every job transition that must survive a crash — admitted, dispatched,
// finished — is appended (and, per the fsync policy, flushed to stable
// storage) *before* the transition becomes externally visible. On restart
// the journal is replayed in order: finished jobs answer status/result
// again, jobs that were QUEUED or RUNNING re-enter the queue in their
// original admission order, and a (tenant, idempotency-token) dedup table
// is rebuilt so a client's resubmit after a lost reply never double-runs.
//
// Wire format. One record per line, wrapped in a fixed-offset checksum
// envelope:
//
//   {"v":1,"crc":"<16 hex>","rec":<record object>}\n
//
// The crc is FNV-1a 64-bit over the raw bytes of the <record object>
// substring, so verification needs no JSON canonicalization — the reader
// checksums exactly the bytes the writer wrote. The envelope prefix and the
// `","rec":` separator sit at fixed offsets (the JSON writer escapes every
// control character, so a newline is always a record boundary).
//
// Torn-write tolerance. A crash mid-append leaves a tail that is missing
// its newline, fails its checksum, or is not valid JSON. The reader stops
// cleanly at the first such record and reports how many bytes of intact
// prefix precede it; recovery truncates the file there and appends on. The
// reader never aborts on any input — journal bytes are data, not contracts.
//
// All raw ::write/::fsync durability I/O in the tree lives behind this
// module's EINTR-retrying wrappers; micco-lint's `raw-durability-io` rule
// keeps it that way.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace micco::service {

/// FNV-1a 64-bit of `bytes` as 16 lowercase hex digits. The journal's
/// checksum and the result digest both use it; it is also the hash behind
/// Client::mint_trace_id, so the whole service layer shares one function.
std::string fnv1a64_hex(std::string_view bytes);

/// When appended records reach stable storage.
enum class FsyncPolicy {
  kNever,     ///< never fsync (tests / throwaway journals)
  kInterval,  ///< fsync every fsync_interval appends and on close
  kAlways,    ///< fsync after every append (the durability default)
};

const char* to_string(FsyncPolicy policy);
/// Parses "never" / "interval" / "always"; nullopt otherwise.
std::optional<FsyncPolicy> parse_fsync_policy(const std::string& text);

struct JournalConfig {
  /// Journal file path; empty disables journaling entirely.
  std::string path;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Appends between fsyncs under FsyncPolicy::kInterval.
  std::uint64_t fsync_interval = 16;
  /// Crash-injection hook for the chaos harness: when non-zero, the writer
  /// raises SIGKILL immediately after the Nth record (of any kind) becomes
  /// durable — the scripted crash points of the kill-9 tests.
  std::uint64_t crash_after_records = 0;
};

enum class RecordKind {
  kAdmitted,    ///< job accepted; workload + identity made durable
  kDispatched,  ///< job handed to the dispatcher (RUNNING at crash time)
  kFinished,    ///< terminal transition with retained result + digest
};

const char* to_string(RecordKind kind);

/// One journal record. Field population follows the kind: admitted carries
/// the full identity + workload text, dispatched only the job id, finished
/// the terminal state plus (when retained) the result document and its
/// digest.
struct JournalRecord {
  RecordKind kind = RecordKind::kAdmitted;
  std::uint64_t job_id = 0;
  std::string tenant;         ///< admitted
  std::string name;           ///< admitted; optional label
  std::string trace_id;       ///< admitted; client-minted, may be empty
  std::string idem;           ///< admitted; idempotency token, may be empty
  std::string workload_text;  ///< admitted; micco-workload v1 text
  std::string state;          ///< finished: "DONE" / "FAILED" / "CANCELLED"
  std::string error;          ///< finished + FAILED
  obs::JsonValue result;      ///< finished; retained result document
  bool has_result = false;
};

/// Serializes one record into its full envelope line (trailing '\n'
/// included). Finished records with a result also embed
/// "digest": fnv1a64_hex(result.dump()) so replayed results are
/// end-to-end verifiable, not just envelope-checksummed.
std::string encode_journal_line(const JournalRecord& record);

/// Parses one envelope line (no trailing '\n'). nullopt on any defect:
/// short line, malformed envelope, checksum mismatch, invalid JSON, unknown
/// kind, missing fields, or a result digest that does not match.
std::optional<JournalRecord> parse_journal_line(std::string_view line);

/// Outcome of reading a journal: the intact prefix, decoded.
struct JournalReadResult {
  std::vector<JournalRecord> records;
  /// Bytes of intact prefix (complete, valid lines including their '\n').
  /// Recovery truncates the file to this length before appending.
  std::size_t bytes_consumed = 0;
  /// True when trailing bytes were dropped (torn or corrupt tail).
  bool truncated = false;
  /// Human-readable account of why reading stopped, empty when clean.
  std::string note;
};

/// Decodes journal text, stopping cleanly at the first torn or corrupt
/// record. Never aborts, whatever the input.
JournalReadResult read_journal_text(std::string_view text);

/// read_journal_text over a file's contents. A missing file reads as an
/// empty, clean journal (first session); an unreadable one as truncated at
/// byte 0 with a note.
JournalReadResult read_journal_file(const std::string& path);

/// Truncates the journal file to `bytes` (dropping a torn tail before the
/// writer reopens it for append). Returns false with a diagnostic on
/// failure.
bool truncate_journal_file(const std::string& path, std::size_t bytes,
                           std::string* error);

/// Append-only journal writer. Thread-safe: handle_submit (any I/O lane)
/// and the dispatcher append concurrently; the internal mutex serializes
/// appends so lines never interleave. All I/O goes through EINTR-retrying
/// wrappers confined to journal.cpp.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens (creating if needed) the configured journal for append. Returns
  /// false with a diagnostic on failure. A config with an empty path leaves
  /// the writer closed (journaling disabled) and returns true.
  bool open(const JournalConfig& config, std::string* error);

  /// Optional telemetry: per-append record/byte counters and the fsync
  /// latency histogram. Not owned; must outlive the writer.
  void set_telemetry(obs::Counter* records, obs::Counter* bytes,
                     obs::Histogram* fsync_ms);

  /// Appends one record and applies the fsync policy. False with a
  /// diagnostic when the write (or a policy-required fsync) failed — the
  /// caller must then treat the transition as not durable.
  bool append(const JournalRecord& record, std::string* error);

  /// Forces an fsync regardless of policy (no-op when closed).
  bool sync(std::string* error);

  void close();
  bool is_open() const;
  std::uint64_t records_appended() const;

 private:
  mutable Mutex mutex_{"JournalWriter::mutex_", kLockRankJournal};
  JournalConfig config_;
  int fd_ MICCO_GUARDED_BY(mutex_) = -1;
  std::uint64_t appended_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t since_sync_ MICCO_GUARDED_BY(mutex_) = 0;
  obs::Counter* records_counter_ MICCO_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* bytes_counter_ MICCO_GUARDED_BY(mutex_) = nullptr;
  obs::Histogram* fsync_ms_ MICCO_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace micco::service
