// Multi-tenant job queueing with admission control and weighted fair share
// (DESIGN.md §6).
//
// The JobManager is the daemon's book of record: every submitted workload
// becomes a Job with a lifecycle (QUEUED → RUNNING → DONE/FAILED/CANCELLED),
// per-tenant FIFO queues bounded by admission control (a full queue rejects
// with a structured reason instead of buffering without limit), and a
// weighted-fair-share dispatcher (stride scheduling: each tenant accrues
// virtual time inversely proportional to its weight; the tenant with the
// smallest pass dispatches next, ties broken by tenant name so dispatch
// order is a pure function of the submission sequence).
//
// Crash recovery (DESIGN.md §8): the server replays its journal through
// restore_finished() / restore_queued() before serving, so the book of
// record survives a restart — finished jobs answer status/result again
// (marked replayed), interrupted jobs re-enter their tenant queue in the
// original admission order. Submits may carry a client-minted idempotency
// token; a (tenant, token) pair already in the dedup table answers with the
// original job id (duplicate = true) instead of admitting a second run.
//
// Thread safety: every public method locks the internal annotated mutex, so
// I/O lanes may submit/query concurrently with the dispatcher thread.
// Dispatch order — and therefore the decision log — is deterministic for a
// fixed submission order; concurrent submitters only make the *arrival*
// order nondeterministic, never the accounting (admitted + rejected +
// duplicates == submitted always holds).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "workload/task.hpp"

namespace micco::service {

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

const char* to_string(JobState state);

/// Admission + fair-share policy knobs.
struct AdmissionConfig {
  /// Queued jobs allowed per tenant; a submit beyond this rejects.
  std::size_t max_queue_per_tenant = 64;
  /// Queued jobs allowed across all tenants.
  std::size_t max_queued_total = 256;
  /// Dispatch weight per tenant; absent tenants use default_weight.
  /// Higher weight = proportionally more dispatches under contention.
  std::map<std::string, int> tenant_weights;
  int default_weight = 1;

  /// End-to-end latency objective (wall ms, submit → terminal state). Each
  /// finished job increments its tenant's slo_ok or slo_miss counter;
  /// 0 disables SLO accounting.
  double slo_ms = 0.0;

  int weight_for(const std::string& tenant) const {
    const auto it = tenant_weights.find(tenant);
    const int w = it == tenant_weights.end() ? default_weight : it->second;
    return w > 0 ? w : 1;
  }
};

/// Outcome of one submit() call.
struct SubmitOutcome {
  bool admitted = false;
  /// The (tenant, idempotency token) pair was already admitted: job_id is
  /// the original job, no new work was enqueued, nothing new to journal.
  bool duplicate = false;
  std::uint64_t job_id = 0;    ///< valid when admitted
  std::string reject_code;     ///< protocol error code when rejected
  std::string reject_reason;   ///< human-readable reason when rejected
};

/// Snapshot of one job's externally visible state.
struct JobStatus {
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string name;
  JobState state = JobState::kQueued;
  /// 0-based position in the tenant queue while QUEUED, else -1.
  std::int64_t queue_position = -1;
  std::string error;  ///< FAILED only
  /// Crash recovery re-admitted this job (it was QUEUED or RUNNING when the
  /// previous daemon incarnation died and has been re-run from scratch).
  bool interrupted = false;
  /// This job finished in a previous incarnation; its state and result were
  /// replayed from the journal.
  bool replayed = false;
};

/// Status and (when finished) result in one consistent capture — the
/// status/result reply assembly takes exactly one lock acquisition.
struct StatusSnapshot {
  JobStatus status;
  std::optional<obs::JsonValue> result;  ///< present once DONE/FAILED
};

/// Trace bookkeeping the dispatcher needs when it picks up a job.
struct DispatchInfo {
  std::string trace_id;  ///< client-minted, may be empty
  std::string tenant;
  std::string name;
  std::uint64_t dispatch_seq = 0;    ///< 1-based daemon dispatch order
  std::uint64_t depth_at_submit = 0; ///< total queued jobs when admitted
};

/// Wall-clock measurements for one finished job (dispatcher-computed via
/// obs::Clock) plus the deterministic simulated makespan.
struct CompletionTiming {
  double queue_latency_ms = 0.0;  ///< submit → dispatch
  double e2e_latency_ms = 0.0;    ///< submit → terminal state (SLO basis)
  double sim_makespan_ms = 0.0;   ///< simulated; feeds job_sim_ms histogram
};

class JobManager {
 public:
  explicit JobManager(AdmissionConfig config = {});

  /// Optional metrics registry: admission/lifecycle counters and queue-depth
  /// gauges are kept current under the manager's own lock. Not owned; must
  /// outlive the manager (or be detached with nullptr).
  void set_registry(obs::MetricsRegistry* registry);

  /// Admission-controlled enqueue. On success the stream is stored and a
  /// fresh job id (monotone from 1) is returned; on rejection the outcome
  /// carries a protocol error code + reason and nothing is stored.
  /// `trace_id` is the client-minted trace identity (empty when the client
  /// sent none; the server then falls back to "job-<id>"). `idem` is the
  /// client-minted idempotency token: when non-empty and already known for
  /// this tenant, the outcome is admitted + duplicate with the original job
  /// id and nothing is enqueued. The dedup check precedes the draining
  /// check so a resubmit for an already-admitted job succeeds during drain.
  /// `hold` admits the job invisible to next_job() until release_job() —
  /// the server's write-ahead gate: a journaling server holds every
  /// admission until its `admitted` record is durable, so the dispatcher
  /// can never run (and journal the finish of) a job whose admission a
  /// crash could forget.
  SubmitOutcome submit(const std::string& tenant, const std::string& name,
                       WorkloadStream stream, const std::string& trace_id = "",
                       const std::string& idem = "", bool hold = false);

  /// Makes a held submit dispatchable (its admission record went durable).
  /// True when the job exists and is still QUEUED; false when it is unknown
  /// or already left QUEUED (e.g. a concurrent shutdown cancelled it).
  bool release_job(std::uint64_t job_id);

  // -- Journal replay (server startup, before serving) ----------------------
  /// Restores a job whose finished record replayed from the journal: it
  /// answers status/result immediately (marked replayed), is never re-run,
  /// and re-registers its idempotency token. `state` must be terminal.
  void restore_finished(std::uint64_t job_id, const std::string& tenant,
                        const std::string& name, const std::string& trace_id,
                        const std::string& idem, JobState state,
                        const std::string& error,
                        std::optional<obs::JsonValue> result);
  /// Re-admits a job that was QUEUED or RUNNING at crash time (marked
  /// interrupted). Admission is unconditional — the work was already
  /// accepted in a previous incarnation, so queue limits do not re-apply.
  void restore_queued(std::uint64_t job_id, const std::string& tenant,
                      const std::string& name, const std::string& trace_id,
                      const std::string& idem, WorkloadStream stream);

  /// Weighted-fair-share pick: pops the next job and marks it RUNNING.
  /// nullopt when no job is queued. A tenant whose front job is held (see
  /// submit's `hold`) is skipped entirely — queue order within a tenant is
  /// FIFO, so a held admission must not be overtaken by its queue neighbor.
  std::optional<std::uint64_t> next_job();

  /// The stored workload of a RUNNING job (moved out; call exactly once per
  /// dispatch). Aborts if the job is not RUNNING.
  WorkloadStream take_stream(std::uint64_t job_id);

  /// Trace identity + queue provenance of a RUNNING job. Aborts on unknown
  /// job ids (dispatcher-internal, never fed external input).
  DispatchInfo dispatch_info(std::uint64_t job_id) const;

  /// Terminal transitions for the dispatcher. `result` is retained for
  /// pickup via result(); `timing` feeds the global queue-latency histogram,
  /// the per-tenant latency histograms and the tenant's SLO counters.
  void complete(std::uint64_t job_id, obs::JsonValue result,
                const CompletionTiming& timing);
  void fail(std::uint64_t job_id, const std::string& error,
            obs::JsonValue result, const CompletionTiming& timing);

  /// Stops admission: subsequent submits reject with `draining`. Queued
  /// jobs still dispatch (graceful drain finishes the backlog).
  void begin_drain();
  bool draining() const;

  /// Cancels every queued job (shutdown semantics: in-flight work finishes,
  /// the backlog does not). Returns the cancelled job ids in tenant-map /
  /// queue order so the server can journal each cancellation.
  std::vector<std::uint64_t> cancel_queued();

  /// Cancels one QUEUED job (the server's rollback when the admission
  /// record could not be journaled): removed from its tenant queue, marked
  /// CANCELLED, idempotency token released. False when the job is unknown
  /// or not QUEUED.
  bool cancel_queued_job(std::uint64_t job_id);

  // -- Queries --------------------------------------------------------------
  std::optional<JobStatus> status(std::uint64_t job_id) const;
  /// Result document of a DONE/FAILED job; nullopt when unknown or not
  /// finished yet.
  std::optional<obs::JsonValue> result(std::uint64_t job_id) const;
  /// Status and result in one lock acquisition — the snapshot is internally
  /// consistent even while the dispatcher races to finish the job.
  std::optional<StatusSnapshot> status_with_result(std::uint64_t job_id) const;

  /// True when no job is QUEUED or RUNNING.
  bool idle() const;
  std::size_t queued_total() const;

  /// {"queued": n, "running": n, "submitted": n, "admitted": n, ...,
  ///  "tenants": {name: {"queued": n, "weight": w, "admitted": n}}}.
  obs::JsonValue stats() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string tenant;
    std::string name;
    std::string trace_id;
    std::string idem;  ///< idempotency token, empty when none
    WorkloadStream stream;
    JobState state = JobState::kQueued;
    std::string error;
    obs::JsonValue result;
    bool has_result = false;
    bool interrupted = false;  ///< re-admitted by crash recovery
    bool replayed = false;     ///< finished state replayed from the journal
    /// Admission not yet durable: invisible to next_job() until
    /// release_job() clears it (the server's write-ahead dispatch gate).
    bool held = false;
    std::uint64_t dispatch_seq = 0;     ///< assigned by next_job()
    std::uint64_t depth_at_submit = 0;  ///< queued_ total when admitted
  };

  struct Tenant {
    std::deque<std::uint64_t> queue;
    /// Stride-scheduling virtual time: pass += kStrideUnit / weight on each
    /// dispatch. Fixed-point (integer) so accumulation is exact and
    /// platform-independent.
    std::uint64_t pass = 0;
    int weight = 1;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t slo_ok = 0;
    std::uint64_t slo_miss = 0;
  };

  static constexpr std::uint64_t kStrideUnit = 1u << 20;

  void refresh_gauges_locked() MICCO_REQUIRES(mutex_);
  SubmitOutcome reject_locked(const std::string& tenant, const char* code,
                              const std::string& reason)
      MICCO_REQUIRES(mutex_);
  /// Shared enqueue tail of submit() and restore_queued(): stride re-entry,
  /// queue push, admission counters.
  void enqueue_locked(Job job) MICCO_REQUIRES(mutex_);
  /// Registers a (tenant, token) pair in the dedup table (no-op for empty
  /// tokens; first writer wins so replayed registrations cannot clobber).
  void register_idem_locked(const std::string& tenant, const std::string& idem,
                            std::uint64_t job_id) MICCO_REQUIRES(mutex_);
  JobStatus status_locked(const Job& job) const MICCO_REQUIRES(mutex_);
  /// Shared terminal-transition tail: latency histograms + SLO accounting.
  void record_finish_locked(const Job& job, const CompletionTiming& timing)
      MICCO_REQUIRES(mutex_);

  AdmissionConfig config_;
  mutable Mutex mutex_{"JobManager::mutex_", kLockRankJobManager};
  obs::MetricsRegistry* registry_ MICCO_GUARDED_BY(mutex_) = nullptr;
  std::map<std::uint64_t, Job> jobs_ MICCO_GUARDED_BY(mutex_);
  std::map<std::string, Tenant> tenants_ MICCO_GUARDED_BY(mutex_);
  /// tenant + '\x1f' + idempotency token → original job id. Rebuilt from
  /// the journal's admitted records on replay.
  std::map<std::string, std::uint64_t> dedup_ MICCO_GUARDED_BY(mutex_);
  std::uint64_t next_id_ MICCO_GUARDED_BY(mutex_) = 1;
  std::uint64_t dispatch_seq_ MICCO_GUARDED_BY(mutex_) = 0;
  std::size_t queued_ MICCO_GUARDED_BY(mutex_) = 0;
  std::size_t running_ MICCO_GUARDED_BY(mutex_) = 0;
  bool draining_ MICCO_GUARDED_BY(mutex_) = false;
  /// Highest pass handed out so far: newly active tenants start here so a
  /// tenant cannot bank credit while idle (standard stride re-entry rule).
  std::uint64_t global_pass_ MICCO_GUARDED_BY(mutex_) = 0;

  // Session totals (also mirrored into the registry when attached).
  std::uint64_t submitted_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t cancelled_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t duplicates_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t replayed_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t requeued_ MICCO_GUARDED_BY(mutex_) = 0;
};

}  // namespace micco::service
