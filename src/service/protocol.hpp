// Wire protocol of the scheduling daemon (DESIGN.md §6).
//
// Frames are newline-delimited compact JSON documents ("NDJSON"): one
// request or response object per line, serialized through obs::JsonValue so
// framing is safe for arbitrary tenant/job names — every control character
// (including '\n' itself) is escaped to \u00XX by the writer, so a frame
// boundary is always a real record boundary. The protocol is versioned
// (every request carries "v") and strictly limited: a frame longer than the
// negotiated maximum is discarded with a structured error reply, malformed
// JSON gets an error reply, and nothing on this path ever aborts the
// daemon — external bytes are data, not contracts.
//
// Request types (v1): submit, status, result, drain, shutdown, stats,
// metrics. Every response carries "ok" (bool); failures add "code" and
// "message". Submit optionally carries a client-minted "trace" id that the
// daemon threads through the job's whole span tree (DESIGN.md §7) and a
// client-minted "idem" idempotency token (DESIGN.md §8): a resubmit with
// the same (tenant, token) answers from the daemon's journaled dedup table
// — marked "duplicate": true with the original job id — instead of running
// the job again. Further optional reply fields: "interrupted" (the job was
// re-admitted by crash recovery), "replayed" (a finished job answering from
// the replayed journal) and "retry_after" (seconds; advisory backoff on
// draining / queue_full / journal_error rejections).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace micco::service {

/// Protocol version spoken by this build. Requests with a different "v"
/// are answered with an error reply, never silently misread.
inline constexpr std::int64_t kProtocolVersion = 1;

/// Default ceiling on one frame (request or response line, including the
/// trailing newline). Large enough for a multi-megabyte inline workload,
/// small enough that a misbehaving client cannot balloon daemon memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u * 1024u * 1024u;

/// v1 request vocabulary.
enum class MessageType {
  kSubmit,    ///< enqueue a workload for a tenant
  kStatus,    ///< query one job's lifecycle state
  kResult,    ///< fetch a finished job's result document
  kDrain,     ///< stop admitting, finish queued + in-flight work, exit
  kShutdown,  ///< stop admitting, cancel queued work, finish in-flight, exit
  kStats,     ///< per-tenant queue depths and session totals
  kMetrics,   ///< live telemetry: uptime, quantiles, Prometheus exposition
};

const char* to_string(MessageType type);

/// Parses a request "type" string; nullopt for unknown types.
std::optional<MessageType> parse_message_type(const std::string& text);

/// One parsed v1 request. Fields are populated per type: submit fills
/// tenant/job_name/workload_text, status and result fill job_id, the rest
/// carry no payload.
struct Request {
  MessageType type = MessageType::kStats;
  std::string tenant;         ///< submit; defaults to "default"
  std::string job_name;       ///< submit; optional label, may be empty
  std::string workload_text;  ///< submit; micco-workload v1 text
  std::string trace_id;       ///< submit; optional client-minted trace id
  std::string idem;           ///< submit; optional idempotency token
  std::uint64_t job_id = 0;   ///< status / result
};

/// Error vocabulary used in response "code" fields. Stable strings —
/// clients and tests match on them.
namespace error_code {
inline constexpr const char* kBadFrame = "bad_frame";
inline constexpr const char* kFrameTooLong = "frame_too_long";
inline constexpr const char* kBadVersion = "bad_version";
inline constexpr const char* kUnknownType = "unknown_type";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kBadWorkload = "bad_workload";
inline constexpr const char* kQueueFull = "queue_full";
inline constexpr const char* kDraining = "draining";
inline constexpr const char* kUnknownJob = "unknown_job";
inline constexpr const char* kNotFinished = "not_finished";
/// Client-side: the per-request deadline expired before a reply arrived.
inline constexpr const char* kTimeout = "timeout";
/// The daemon could not make the admission durable (journal append/fsync
/// failure); the job was not accepted.
inline constexpr const char* kJournalError = "journal_error";
}  // namespace error_code

/// Builds the request document for each message type (the client half).
obs::JsonValue make_submit_request(const std::string& tenant,
                                   const std::string& job_name,
                                   const std::string& workload_text,
                                   const std::string& trace_id = "",
                                   const std::string& idem = "");
obs::JsonValue make_job_request(MessageType type, std::uint64_t job_id);
obs::JsonValue make_plain_request(MessageType type);

/// Parses one request document. Returns nullopt and fills `error_reply`
/// with a ready-to-send structured error response on any malformed input
/// (wrong version, unknown type, missing/ill-typed fields).
std::optional<Request> parse_request(const obs::JsonValue& doc,
                                     obs::JsonValue* error_reply);

/// {"ok": true, ...} response skeleton.
obs::JsonValue make_ok_response();

/// {"ok": false, "code": code, "message": message} error response.
obs::JsonValue make_error_response(const std::string& code,
                                   const std::string& message);

/// Serializes one frame: compact dump + '\n'. The writer escapes every
/// control character, so the payload can never contain a bare newline.
std::string encode_frame(const obs::JsonValue& doc);

/// Incremental frame splitter for a byte stream. Bytes arrive in arbitrary
/// chunks (partial frames, many frames per read); next_frame() hands back
/// one complete line at a time. A line whose payload exceeds the maximum
/// frame size is discarded — including the bytes still in flight — and
/// surfaces once as oversized=true so the server can send a frame_too_long
/// reply and keep the connection usable for subsequent frames.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes received from the peer.
  void feed(std::string_view bytes);

  /// Next complete frame (without the trailing '\n'), or nullopt when no
  /// full frame is buffered. When an oversized frame was dropped since the
  /// last call, sets *oversized = true exactly once (the frame itself is
  /// never returned). `oversized` may be nullptr when the caller does not
  /// care (trusted in-process peer).
  std::optional<std::string> next_frame(bool* oversized = nullptr);

  /// Bytes buffered but not yet returned (diagnostics / tests).
  std::size_t buffered_bytes() const {
    return ready_bytes_ + partial_.size();
  }

 private:
  std::size_t max_frame_bytes_;
  std::deque<std::string> ready_;  ///< complete frames awaiting next_frame()
  std::size_t ready_bytes_ = 0;
  std::string partial_;            ///< the in-flight (unterminated) line
  bool discarding_ = false;        ///< mid-oversized-frame: drop until '\n'
  bool pending_oversized_ = false;
};

}  // namespace micco::service
