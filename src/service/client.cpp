#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace micco::service {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (fd_ >= 0) return fail("already connected");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    close();
    return fail("connect(" + socket_path +
                "): " + std::string(strerror(err)) +
                " (is the daemon running?)");
  }
  return true;
}

std::optional<obs::JsonValue> Client::call(const obs::JsonValue& request,
                                           std::string* error) {
  if (!send_raw(encode_frame(request), error)) return std::nullopt;
  return read_reply(error);
}

bool Client::send_raw(const std::string& bytes, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (fd_ < 0) return fail("not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("send(): " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<obs::JsonValue> Client::read_reply(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::optional<obs::JsonValue>{};
  };
  if (fd_ < 0) return fail("not connected");

  for (;;) {
    if (const std::optional<std::string> line = reader_.next_frame()) {
      std::string parse_error;
      std::optional<obs::JsonValue> doc = obs::parse_json(*line, &parse_error);
      if (!doc.has_value()) {
        return fail("malformed reply: " + parse_error);
      }
      return doc;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(n == 0 ? "daemon closed the connection"
                       : "recv(): " + std::string(strerror(errno)));
  }
}

std::string Client::mint_trace_id(const std::string& tenant,
                                  const std::string& job_name,
                                  std::uint64_t sequence) {
  // FNV-1a 64-bit over tenant + unit separator + job name: stable across
  // platforms, no RNG involved.
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](const std::string& text) {
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  };
  mix(tenant);
  hash ^= 0x1f;
  hash *= 1099511628211ull;
  mix(job_name);

  std::string id = "t-";
  for (int nibble = 15; nibble >= 0; --nibble) {
    id += "0123456789abcdef"[(hash >> (nibble * 4)) & 0xf];
  }
  id += '-';
  id += std::to_string(sequence);
  return id;
}

std::optional<obs::JsonValue> Client::submit(const std::string& tenant,
                                             const std::string& job_name,
                                             const std::string& workload_text,
                                             std::string* error) {
  const std::string trace_id =
      mint_trace_id(tenant, job_name, submit_seq_++);
  return call(make_submit_request(tenant, job_name, workload_text, trace_id),
              error);
}

std::optional<obs::JsonValue> Client::status(std::uint64_t job_id,
                                             std::string* error) {
  return call(make_job_request(MessageType::kStatus, job_id), error);
}

std::optional<obs::JsonValue> Client::result(std::uint64_t job_id,
                                             std::string* error) {
  return call(make_job_request(MessageType::kResult, job_id), error);
}

std::optional<obs::JsonValue> Client::stats(std::string* error) {
  return call(make_plain_request(MessageType::kStats), error);
}

std::optional<obs::JsonValue> Client::metrics(std::string* error) {
  return call(make_plain_request(MessageType::kMetrics), error);
}

std::optional<obs::JsonValue> Client::drain(std::string* error) {
  return call(make_plain_request(MessageType::kDrain), error);
}

std::optional<obs::JsonValue> Client::shutdown(std::string* error) {
  return call(make_plain_request(MessageType::kShutdown), error);
}

}  // namespace micco::service
