#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/stopwatch.hpp"
#include "common/thread_annotations.hpp"
#include "service/journal.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace micco::service {

namespace {

void sleep_backoff(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Entropy for auto-minted idempotency tokens. The trace id is a pure
/// function of (tenant, job name, sequence) by design, so a token derived
/// from it alone would be identical across independent client processes —
/// and a genuinely new submit would be silently answered as a duplicate of
/// an old job. Mixing pid, monotonic ticks, the client's address and a
/// process-wide counter makes each client's tokens unique without touching
/// the deterministic trace identity (this entropy never reaches decision
/// logs or span traces, only the dedup key).
std::string idem_entropy_nonce(const void* client) {
  // MICCO_LOCK_FREE: monotone uniqueness counter; relaxed fetch_add is
  // enough because only distinctness matters, never ordering.
  static std::atomic<std::uint64_t> counter MICCO_LOCK_FREE{0};
  const std::uint64_t bits[4] = {
      static_cast<std::uint64_t>(::getpid()),
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()),
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(client)),
      counter.fetch_add(1) + 1,
  };
  return fnv1a64_hex(std::string_view(
      reinterpret_cast<const char*>(bits), sizeof(bits)));
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Drop any half-read reply so a reconnected session starts in lockstep.
  reader_ = FrameReader{};
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (fd_ >= 0) return fail("already connected");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    close();
    return fail("connect(" + socket_path +
                "): " + std::string(strerror(err)) +
                " (is the daemon running?)");
  }
  socket_path_ = socket_path;
  return true;
}

bool Client::connect_retry(const std::string& socket_path,
                           const RetryPolicy& policy, std::string* error) {
  std::string last_error;
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (connect(socket_path, &last_error)) return true;
    if (attempt < attempts) sleep_backoff(policy.backoff(attempt));
  }
  if (error != nullptr) {
    *error = last_error + " (after " + std::to_string(attempts) + " attempts)";
  }
  return false;
}

std::optional<obs::JsonValue> Client::call(const obs::JsonValue& request,
                                           std::string* error) {
  if (!send_raw(encode_frame(request), error)) return std::nullopt;
  return read_reply(error);
}

bool Client::send_raw(const std::string& bytes, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (fd_ < 0) return fail("not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("send(): " + std::string(strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<obs::JsonValue> Client::read_reply(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::optional<obs::JsonValue>{};
  };
  if (fd_ < 0) return fail("not connected");

  // Deadline expiry is a *structured* outcome, not a transport failure: the
  // caller gets {"ok": false, "code": "timeout"} and the connection is
  // closed so the daemon's eventual reply cannot answer a later request.
  const auto expire = [&]() -> std::optional<obs::JsonValue> {
    close();
    return make_error_response(
        error_code::kTimeout,
        "no reply within " + std::to_string(deadline_ms_) + " ms");
  };

  Stopwatch waited;
  for (;;) {
    if (const std::optional<std::string> line = reader_.next_frame()) {
      std::string parse_error;
      std::optional<obs::JsonValue> doc = obs::parse_json(*line, &parse_error);
      if (!doc.has_value()) {
        return fail("malformed reply: " + parse_error);
      }
      return doc;
    }

    if (deadline_ms_ > 0.0) {
      const double remaining_ms = deadline_ms_ - waited.elapsed_ms();
      if (remaining_ms <= 0.0) return expire();
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      // Round up so a sub-millisecond remainder still polls once.
      const int timeout_ms = static_cast<int>(remaining_ms) + 1;
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return fail("poll(): " + std::string(strerror(errno)));
      }
      if (ready == 0) return expire();
    }

    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(n == 0 ? "daemon closed the connection"
                       : "recv(): " + std::string(strerror(errno)));
  }
}

std::string Client::mint_trace_id(const std::string& tenant,
                                  const std::string& job_name,
                                  std::uint64_t sequence) {
  // FNV-1a 64-bit over tenant + unit separator + job name: stable across
  // platforms, no RNG involved.
  return "t-" + fnv1a64_hex(tenant + '\x1f' + job_name) + '-' +
         std::to_string(sequence);
}

std::optional<obs::JsonValue> Client::submit(const std::string& tenant,
                                             const std::string& job_name,
                                             const std::string& workload_text,
                                             std::string* error) {
  const std::string trace_id =
      mint_trace_id(tenant, job_name, submit_seq_++);
  return call(make_submit_request(tenant, job_name, workload_text, trace_id),
              error);
}

std::optional<obs::JsonValue> Client::submit_idempotent(
    const std::string& tenant, const std::string& job_name,
    const std::string& workload_text, const std::string& idem,
    std::string* error) {
  const std::string trace_id =
      mint_trace_id(tenant, job_name, submit_seq_++);
  return call(
      make_submit_request(tenant, job_name, workload_text, trace_id, idem),
      error);
}

std::optional<obs::JsonValue> Client::submit_retrying(
    const std::string& tenant, const std::string& job_name,
    const std::string& workload_text, const std::string& idem,
    const RetryPolicy& policy, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::optional<obs::JsonValue>{};
  };
  if (socket_path_.empty()) {
    return fail("submit_retrying: connect() first (socket path unknown)");
  }

  // One identity for the whole loop: every wire attempt carries the same
  // trace and the same idempotency token, so however many times the request
  // is resent the daemon runs the job exactly once. An auto-minted token is
  // the deterministic trace id *plus* per-client entropy (minted once per
  // Client, reused across its submits): dedup must span the retries of one
  // call, never two independent client sessions submitting the same
  // (tenant, name).
  const std::string trace_id =
      mint_trace_id(tenant, job_name, submit_seq_++);
  if (idem.empty() && idem_nonce_.empty()) {
    idem_nonce_ = idem_entropy_nonce(this);
  }
  const std::string token =
      idem.empty() ? trace_id + '-' + idem_nonce_ : idem;
  const std::string frame = encode_frame(
      make_submit_request(tenant, job_name, workload_text, trace_id, token));

  std::string last_error = "submit_retrying: no attempt made";
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) sleep_backoff(policy.backoff(attempt - 1));
    if (!connected() && !connect(socket_path_, &last_error)) continue;
    if (!send_raw(frame, &last_error)) {
      close();
      continue;
    }
    std::optional<obs::JsonValue> reply = read_reply(&last_error);
    if (!reply.has_value()) {
      close();
      continue;
    }
    // A client-side deadline expiry is structured but retryable: the daemon
    // may or may not have seen the submit, which is exactly what the
    // idempotency token exists for. Every other reply — accepted or a
    // structured rejection — is final.
    const obs::JsonValue* code = reply->find("code");
    if (code != nullptr && code->kind() == obs::JsonValue::Kind::kString &&
        code->as_string() == error_code::kTimeout) {
      last_error = "deadline expired waiting for submit reply";
      continue;
    }
    return reply;
  }
  return fail(last_error + " (after " + std::to_string(attempts) +
              " attempts)");
}

std::optional<obs::JsonValue> Client::status(std::uint64_t job_id,
                                             std::string* error) {
  return call(make_job_request(MessageType::kStatus, job_id), error);
}

std::optional<obs::JsonValue> Client::result(std::uint64_t job_id,
                                             std::string* error) {
  return call(make_job_request(MessageType::kResult, job_id), error);
}

std::optional<obs::JsonValue> Client::stats(std::string* error) {
  return call(make_plain_request(MessageType::kStats), error);
}

std::optional<obs::JsonValue> Client::metrics(std::string* error) {
  return call(make_plain_request(MessageType::kMetrics), error);
}

std::optional<obs::JsonValue> Client::drain(std::string* error) {
  return call(make_plain_request(MessageType::kDrain), error);
}

std::optional<obs::JsonValue> Client::shutdown(std::string* error) {
  return call(make_plain_request(MessageType::kShutdown), error);
}

}  // namespace micco::service
