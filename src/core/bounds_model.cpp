#include "core/bounds_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"

namespace micco {

std::array<ml::Dataset, 3> build_bound_datasets(
    std::span<const TrainingSample> samples) {
  std::array<ml::Dataset, 3> out{
      ml::Dataset(DataCharacteristics::kFeatureCount),
      ml::Dataset(DataCharacteristics::kFeatureCount),
      ml::Dataset(DataCharacteristics::kFeatureCount)};
  double features[DataCharacteristics::kFeatureCount];
  for (const TrainingSample& s : samples) {
    s.characteristics.to_features(features);
    for (std::size_t b = 0; b < 3; ++b) {
      out[b].add(std::span<const double>(features,
                                         DataCharacteristics::kFeatureCount),
                 static_cast<double>(s.best_bounds[b]));
    }
  }
  return out;
}

RegressionBoundsProvider::RegressionBoundsProvider(
    ml::MultiOutputRegressor model, std::int64_t max_bound)
    : model_(std::move(model)), max_bound_(max_bound) {
  MICCO_EXPECTS(max_bound >= 0);
}

ReuseBounds RegressionBoundsProvider::bounds_for(
    const DataCharacteristics& c) {
  double features[DataCharacteristics::kFeatureCount];
  c.to_features(features);
  const std::vector<double> raw = model_.predict(
      std::span<const double>(features, DataCharacteristics::kFeatureCount));
  ReuseBounds bounds;
  for (std::size_t b = 0; b < 3; ++b) {
    const auto rounded = static_cast<std::int64_t>(std::llround(raw[b]));
    bounds[b] = std::clamp<std::int64_t>(rounded, 0, max_bound_);
  }
  return bounds;
}

TrainedBoundsModel train_bounds_model(std::span<const TrainingSample> samples,
                                      const ml::RegressorFactory& factory,
                                      const std::string& model_name,
                                      std::int64_t max_bound,
                                      std::uint64_t seed) {
  MICCO_EXPECTS(samples.size() >= 5);

  // One shared shuffled split across the three outputs (same rows in train
  // and test for every bound).
  Pcg32 rng(seed, /*stream=*/0x5e1ec7ULL);
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t n_test =
      std::max<std::size_t>(1, samples.size() / 5);  // the paper's 20 %

  std::vector<TrainingSample> train_samples;
  std::vector<TrainingSample> test_samples;
  train_samples.reserve(samples.size() - n_test);
  test_samples.reserve(n_test);
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < n_test ? test_samples : train_samples)
        .push_back(samples[order[i]]);
  }

  const std::array<ml::Dataset, 3> train_sets =
      build_bound_datasets(train_samples);
  const std::array<ml::Dataset, 3> test_sets =
      build_bound_datasets(test_samples);

  TrainedBoundsModel out;
  out.report.model_name = model_name;

  Stopwatch train_watch;
  ml::MultiOutputRegressor model(factory, 3);
  model.fit(train_sets);
  out.report.train_ms = train_watch.elapsed_ms();

  double r2_sum = 0.0;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::vector<double> predicted =
        model.model(b).predict_all(test_sets[b]);
    out.report.per_bound_r2[b] =
        ml::r2_score(test_sets[b].targets(), predicted);
    r2_sum += out.report.per_bound_r2[b];
  }
  out.report.mean_r2 = r2_sum / 3.0;

  // Single-sample inference latency (Fig. 6 claims negligible overhead).
  Stopwatch infer_watch;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    (void)model.predict(test_sets[0].row(
        static_cast<std::size_t>(rep) % test_sets[0].size()));
  }
  out.report.inference_us = infer_watch.elapsed_us() / kReps;

  out.provider =
      std::make_unique<RegressionBoundsProvider>(std::move(model), max_bound);
  return out;
}

ml::RegressorFactory linear_regression_factory() {
  return [] { return std::make_unique<ml::LinearRegression>(); };
}

ml::RegressorFactory gradient_boosting_factory() {
  return [] {
    ml::BoostingConfig config;
    config.n_stages = 150;      // the paper's boosting stages
    config.learning_rate = 0.1; // the paper's learning rate
    return std::make_unique<ml::GradientBoosting>(config);
  };
}

ml::RegressorFactory random_forest_factory() {
  return [] {
    ml::ForestConfig config;
    config.n_trees = 150;  // the paper's forest size
    return std::make_unique<ml::RandomForest>(config);
  };
}

TrainedBoundsModel train_default_model(const TunerConfig& tuner_config) {
  const TuningData data = generate_tuning_data(tuner_config);
  return train_bounds_model(data.samples, random_forest_factory(),
                            "RandomForest", tuner_config.max_bound);
}

}  // namespace micco
