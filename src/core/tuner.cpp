#include "core/tuner.hpp"

#include <algorithm>
#include <array>
#include <vector>
#include "common/log.hpp"

namespace micco {

double measure_gflops(const WorkloadStream& stream, ReuseBounds bounds,
                      const ClusterConfig& cluster) {
  MiccoSchedulerOptions options;
  options.bounds = bounds;
  MiccoScheduler scheduler(options);
  const RunResult result = run_stream(stream, scheduler, cluster);
  return result.metrics.gflops();
}

TuningData generate_tuning_data(const TunerConfig& config) {
  MICCO_EXPECTS(config.samples >= 1);
  MICCO_EXPECTS(!config.vector_sizes.empty());
  MICCO_EXPECTS(!config.tensor_extents.empty());
  MICCO_EXPECTS(!config.repeated_rates.empty());

  Pcg32 rng(config.seed, /*stream=*/0x70405ULL);
  TuningData data;
  data.samples.reserve(static_cast<std::size_t>(config.samples));

  const std::vector<ReuseBounds> grid = bound_grid(config.max_bound);

  ClusterConfig cluster;
  cluster.num_devices = config.num_devices;
  cluster.device_capacity_bytes = config.device_capacity_bytes;

  for (int s = 0; s < config.samples; ++s) {
    SyntheticConfig synth;
    synth.num_vectors = config.num_vectors;
    synth.batch = config.batch;
    synth.vector_size = config.vector_sizes[rng.uniform_below(
        static_cast<std::uint32_t>(config.vector_sizes.size()))];
    synth.tensor_extent = config.tensor_extents[rng.uniform_below(
        static_cast<std::uint32_t>(config.tensor_extents.size()))];
    synth.repeated_rate = config.repeated_rates[rng.uniform_below(
        static_cast<std::uint32_t>(config.repeated_rates.size()))];
    synth.distribution = rng.uniform_below(2) == 0
                             ? DataDistribution::kUniform
                             : DataDistribution::kGaussian;

    // Several independent streams of the same configuration; bounds are
    // scored on their mean GFLOPS across the group. The group's seeds are a
    // pure function of the configuration (not of the sample index), so the
    // measured "optimal bounds of this configuration" is a deterministic
    // label — re-sampling a configuration reproduces it, as re-measuring a
    // setting on hardware would.
    const std::uint64_t config_hash =
        (static_cast<std::uint64_t>(synth.vector_size) * 0x9e3779b1ULL) ^
        (static_cast<std::uint64_t>(synth.tensor_extent) * 0x85ebca6bULL) ^
        (static_cast<std::uint64_t>(synth.repeated_rate * 100.0) *
         0xc2b2ae35ULL) ^
        (synth.distribution == DataDistribution::kGaussian ? 0x27d4eb2fULL
                                                           : 0ULL) ^
        config.seed;
    const int group = std::max(1, config.seeds_per_sample);
    std::vector<WorkloadStream> streams;
    streams.reserve(static_cast<std::size_t>(group));
    for (int g = 0; g < group; ++g) {
      synth.seed =
          config_hash +
          static_cast<std::uint64_t>(static_cast<unsigned>(g)) * 0x2545f491ULL;
      streams.push_back(generate_synthetic(synth));
    }

    // Features are derived exactly the way the online path derives them —
    // by extracting per-vector characteristics during a probe run and
    // averaging the steady-state vectors. Training on generator ground
    // truth instead would put online queries (estimated bias, observed
    // residency rate) in a region of feature space the model never saw.
    DataCharacteristics characteristics;
    {
      MiccoScheduler probe;
      const RunResult probe_run = run_stream(streams[0], probe, cluster);
      const auto& per_vector = probe_run.per_vector_characteristics;
      MICCO_ASSERT(!per_vector.empty());
      const std::size_t skip = per_vector.size() > 1 ? 1 : 0;  // warm-up
      double n = 0.0;
      for (std::size_t v = skip; v < per_vector.size(); ++v) {
        characteristics.vector_size += per_vector[v].vector_size;
        characteristics.tensor_extent += per_vector[v].tensor_extent;
        characteristics.distribution_bias += per_vector[v].distribution_bias;
        characteristics.repeated_rate += per_vector[v].repeated_rate;
        n += 1.0;
      }
      characteristics.vector_size /= n;
      characteristics.tensor_extent /= n;
      characteristics.distribution_bias /= n;
      characteristics.repeated_rate /= n;
    }

    TrainingSample sample;
    sample.characteristics = characteristics;
    std::vector<double> grid_gflops;
    grid_gflops.reserve(grid.size());
    bool first = true;
    for (const ReuseBounds& bounds : grid) {
      double gflops = 0.0;
      for (const WorkloadStream& stream : streams) {
        gflops += measure_gflops(stream, bounds, cluster);
      }
      gflops /= static_cast<double>(streams.size());
      grid_gflops.push_back(gflops);
      data.records.push_back(TuningRecord{characteristics, bounds, gflops});
      if (first || gflops > sample.best_gflops) sample.best_gflops = gflops;
      if (first || gflops < sample.worst_gflops) sample.worst_gflops = gflops;
      first = false;
    }

    // Label = component-wise median over every triple within 1 % of the
    // optimum. Flat regions of the landscape would otherwise hand back an
    // arbitrary member of the tie set and poison the regression target.
    std::array<std::vector<std::int64_t>, 3> near_best;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (grid_gflops[g] >= 0.99 * sample.best_gflops) {
        for (std::size_t b = 0; b < 3; ++b) {
          near_best[b].push_back(grid[g][b]);
        }
      }
    }
    for (std::size_t b = 0; b < 3; ++b) {
      std::vector<std::int64_t>& vals = near_best[b];
      MICCO_ASSERT(!vals.empty());
      std::sort(vals.begin(), vals.end());
      sample.best_bounds[b] = vals[vals.size() / 2];
    }
    data.samples.push_back(sample);

    if ((s + 1) % 50 == 0) {
      log_info() << "tuner: " << (s + 1) << "/" << config.samples
                 << " samples swept";
    }
  }
  return data;
}

}  // namespace micco
