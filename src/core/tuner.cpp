#include "core/tuner.hpp"

#include <algorithm>
#include <array>
#include <vector>
#include "common/log.hpp"
#include "parallel/parallel.hpp"

namespace micco {

double measure_gflops(const WorkloadStream& stream, ReuseBounds bounds,
                      const ClusterConfig& cluster) {
  MiccoSchedulerOptions options;
  options.bounds = bounds;
  MiccoScheduler scheduler(options);
  const RunResult result = run_stream(stream, scheduler, cluster);
  return result.metrics.gflops();
}

namespace {

/// Everything one sample contributes, computed independently of every other
/// sample so the sweep fans out across the pool: the probe-run features and
/// the mean GFLOPS of each bound triple.
struct SampleSweep {
  DataCharacteristics characteristics;
  std::vector<double> grid_gflops;
};

SampleSweep sweep_sample(const SyntheticConfig& base,
                         std::uint64_t config_hash, int group,
                         const std::vector<ReuseBounds>& grid,
                         const ClusterConfig& cluster) {
  // Several independent streams of the same configuration; bounds are
  // scored on their mean GFLOPS across the group. The group's seeds are a
  // pure function of the configuration (not of the sample index), so the
  // measured "optimal bounds of this configuration" is a deterministic
  // label — re-sampling a configuration reproduces it, as re-measuring a
  // setting on hardware would.
  std::vector<WorkloadStream> streams;
  streams.reserve(static_cast<std::size_t>(group));
  for (int g = 0; g < group; ++g) {
    SyntheticConfig synth = base;
    synth.seed =
        config_hash +
        static_cast<std::uint64_t>(static_cast<unsigned>(g)) * 0x2545f491ULL;
    streams.push_back(generate_synthetic(synth));
  }

  SampleSweep sweep;

  // Features are derived exactly the way the online path derives them —
  // by extracting per-vector characteristics during a probe run and
  // averaging the steady-state vectors. Training on generator ground
  // truth instead would put online queries (estimated bias, observed
  // residency rate) in a region of feature space the model never saw.
  {
    MiccoScheduler probe;
    const RunResult probe_run = run_stream(streams[0], probe, cluster);
    const auto& per_vector = probe_run.per_vector_characteristics;
    MICCO_ASSERT(!per_vector.empty());
    const std::size_t skip = per_vector.size() > 1 ? 1 : 0;  // warm-up
    double n = 0.0;
    DataCharacteristics& c = sweep.characteristics;
    for (std::size_t v = skip; v < per_vector.size(); ++v) {
      c.vector_size += per_vector[v].vector_size;
      c.tensor_extent += per_vector[v].tensor_extent;
      c.distribution_bias += per_vector[v].distribution_bias;
      c.repeated_rate += per_vector[v].repeated_rate;
      n += 1.0;
    }
    c.vector_size /= n;
    c.tensor_extent /= n;
    c.distribution_bias /= n;
    c.repeated_rate /= n;
  }

  // Each grid point is itself an independent batch of simulations, so the
  // inner loop fans out too — idle lanes join it once the outer sample loop
  // has no unclaimed samples left (few-sample sweeps on many cores).
  sweep.grid_gflops = parallel::parallel_map(grid.size(), [&](std::size_t g) {
    double gflops = 0.0;
    for (const WorkloadStream& stream : streams) {
      gflops += measure_gflops(stream, grid[g], cluster);
    }
    return gflops / static_cast<double>(streams.size());
  });
  return sweep;
}

}  // namespace

TuningData generate_tuning_data(const TunerConfig& config) {
  MICCO_EXPECTS(config.samples >= 1);
  MICCO_EXPECTS(!config.vector_sizes.empty());
  MICCO_EXPECTS(!config.tensor_extents.empty());
  MICCO_EXPECTS(!config.repeated_rates.empty());

  Pcg32 rng(config.seed, /*stream=*/0x70405ULL);
  TuningData data;
  data.samples.reserve(static_cast<std::size_t>(config.samples));

  const std::vector<ReuseBounds> grid = bound_grid(config.max_bound);

  ClusterConfig cluster;
  cluster.num_devices = config.num_devices;
  cluster.device_capacity_bytes = config.device_capacity_bytes;

  // The configuration draws are the sweep's only cross-sample RNG, so they
  // happen serially up front (cheap, same draw order as ever); the heavy
  // simulation work per sample is then a pure function of its configuration
  // and fans out across the pool with bit-identical results at any thread
  // count.
  const auto num_samples = static_cast<std::size_t>(config.samples);
  std::vector<SyntheticConfig> synths;
  std::vector<std::uint64_t> hashes;
  synths.reserve(num_samples);
  hashes.reserve(num_samples);
  for (int s = 0; s < config.samples; ++s) {
    SyntheticConfig synth;
    synth.num_vectors = config.num_vectors;
    synth.batch = config.batch;
    synth.vector_size = config.vector_sizes[rng.uniform_below(
        static_cast<std::uint32_t>(config.vector_sizes.size()))];
    synth.tensor_extent = config.tensor_extents[rng.uniform_below(
        static_cast<std::uint32_t>(config.tensor_extents.size()))];
    synth.repeated_rate = config.repeated_rates[rng.uniform_below(
        static_cast<std::uint32_t>(config.repeated_rates.size()))];
    synth.distribution = rng.uniform_below(2) == 0
                             ? DataDistribution::kUniform
                             : DataDistribution::kGaussian;
    hashes.push_back(
        (static_cast<std::uint64_t>(synth.vector_size) * 0x9e3779b1ULL) ^
        (static_cast<std::uint64_t>(synth.tensor_extent) * 0x85ebca6bULL) ^
        (static_cast<std::uint64_t>(synth.repeated_rate * 100.0) *
         0xc2b2ae35ULL) ^
        (synth.distribution == DataDistribution::kGaussian ? 0x27d4eb2fULL
                                                           : 0ULL) ^
        config.seed);
    synths.push_back(synth);
  }

  const int group = std::max(1, config.seeds_per_sample);
  const std::vector<SampleSweep> sweeps =
      parallel::parallel_map(num_samples, [&](std::size_t s) {
        return sweep_sample(synths[s], hashes[s], group, grid, cluster);
      });

  // Merge in sample order: record and label layout match the historical
  // serial sweep byte for byte.
  for (std::size_t s = 0; s < num_samples; ++s) {
    const SampleSweep& sweep = sweeps[s];
    TrainingSample sample;
    sample.characteristics = sweep.characteristics;
    bool first = true;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      const double gflops = sweep.grid_gflops[g];
      data.records.push_back(
          TuningRecord{sweep.characteristics, grid[g], gflops});
      if (first || gflops > sample.best_gflops) sample.best_gflops = gflops;
      if (first || gflops < sample.worst_gflops) sample.worst_gflops = gflops;
      first = false;
    }

    // Label = component-wise median over every triple within 1 % of the
    // optimum. Flat regions of the landscape would otherwise hand back an
    // arbitrary member of the tie set and poison the regression target.
    std::array<std::vector<std::int64_t>, 3> near_best;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (sweep.grid_gflops[g] >= 0.99 * sample.best_gflops) {
        for (std::size_t b = 0; b < 3; ++b) {
          near_best[b].push_back(grid[g][b]);
        }
      }
    }
    for (std::size_t b = 0; b < 3; ++b) {
      std::vector<std::int64_t>& vals = near_best[b];
      MICCO_ASSERT(!vals.empty());
      std::sort(vals.begin(), vals.end());
      sample.best_bounds[b] = vals[vals.size() / 2];
    }
    data.samples.push_back(sample);

    if ((s + 1) % 50 == 0) {
      log_info() << "tuner: " << (s + 1) << "/" << config.samples
                 << " samples swept";
    }
  }
  return data;
}

}  // namespace micco
