// Offline reuse-bound tuning (Section IV-C).
//
// Generates the regression model's training corpus: sample synthetic
// configurations across the data-characteristics space, sweep the reuse
// bound grid for each, measure GFLOPS on the simulated cluster and label
// the sample with the best-performing triple. Every individual measurement
// is kept as a TuningRecord so the Spearman analysis of Fig. 5 can run on
// the same corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "sched/reuse_bounds.hpp"
#include "workload/characteristics.hpp"
#include "workload/synthetic.hpp"

namespace micco {

/// One labelled training sample: configuration features -> optimal bounds.
struct TrainingSample {
  DataCharacteristics characteristics;
  ReuseBounds best_bounds;
  double best_gflops = 0.0;
  double worst_gflops = 0.0;  ///< spread diagnostic (how much tuning buys)
};

/// One (configuration, bounds) measurement — a row of the Fig. 5 corpus.
struct TuningRecord {
  DataCharacteristics characteristics;
  ReuseBounds bounds;
  double gflops = 0.0;
};

struct TunerConfig {
  int samples = 300;  ///< the paper's offline corpus size
  std::vector<std::int64_t> vector_sizes{8, 16, 32, 64};
  std::vector<std::int64_t> tensor_extents{128, 256, 384, 768};
  std::vector<double> repeated_rates{0.25, 0.5, 0.75, 1.0};
  std::int64_t num_vectors = 10;
  std::int64_t batch = 16;
  int num_devices = 8;
  std::uint64_t device_capacity_bytes = 32ULL << 30;
  /// Bound-grid half-width searched for labels: all triples in
  /// [0, max_bound]^3 (the paper sweeps 0..2 in Fig. 8).
  std::int64_t max_bound = 2;
  /// Independent workload seeds averaged per sample: labels reflect the
  /// expected optimum of the configuration, not one stream's noise.
  int seeds_per_sample = 5;
  std::uint64_t seed = 2022;
};

struct TuningData {
  std::vector<TrainingSample> samples;
  std::vector<TuningRecord> records;
};

/// Runs the offline sweep. Deterministic in `config.seed`.
TuningData generate_tuning_data(const TunerConfig& config);

/// Measures GFLOPS of one stream under MICCO with fixed bounds on a fresh
/// cluster (the tuner's inner evaluation, also used by Fig. 8).
double measure_gflops(const WorkloadStream& stream, ReuseBounds bounds,
                      const ClusterConfig& cluster);

}  // namespace micco
