#include "core/verify.hpp"

#include <sstream>
#include <unordered_set>

#include "common/assert.hpp"

namespace micco {

std::string validate_stream_structure(const WorkloadStream& stream) {
  // Determinism audit (DESIGN.md §5e): these sets are membership-tested
  // only; validation walks vectors/tasks in stream order, so the first
  // error reported is a pure function of the stream, not of hash layout.
  std::unordered_set<TensorId> produced;     // outputs seen so far (any stage)
  std::unordered_set<TensorId> ready;        // usable as operands
  std::unordered_set<TensorId> ever_output;  // for originals detection

  // First pass: collect every output id so originals can be identified.
  for (const VectorWorkload& vec : stream.vectors) {
    for (const ContractionTask& task : vec.tasks) {
      if (!ever_output.insert(task.out.id).second) {
        std::ostringstream os;
        os << "output tensor " << task.out.id << " produced twice";
        return os.str();
      }
    }
  }

  for (std::size_t stage = 0; stage < stream.vectors.size(); ++stage) {
    const VectorWorkload& vec = stream.vectors[stage];
    std::vector<TensorId> stage_outputs;
    for (const ContractionTask& task : vec.tasks) {
      for (const TensorDesc* operand : {&task.a, &task.b}) {
        if (!operand->valid()) return "invalid operand descriptor";
        const bool is_original = !ever_output.contains(operand->id);
        if (!is_original && !ready.contains(operand->id)) {
          std::ostringstream os;
          os << "stage " << stage << " consumes tensor " << operand->id
             << " before the stage producing it has completed";
          return os.str();
        }
      }
      if ((task.a.rank != 2 && task.a.rank != 3) ||
          (task.b.rank != 2 && task.b.rank != 3)) {
        return "operand ranks must be 2 or 3";
      }
      if (task.a.extent != task.b.extent || task.a.batch != task.b.batch) {
        return "operand shapes are not contractable";
      }
      if (task.out.rank != contraction_result_rank(task.a.rank, task.b.rank)) {
        return "output rank does not match the contraction rules";
      }
      stage_outputs.push_back(task.out.id);
      produced.insert(task.out.id);
    }
    // Outputs become usable only after the stage barrier.
    for (const TensorId id : stage_outputs) ready.insert(id);
  }
  return "";
}

Tensor materialize_original(const TensorDesc& desc) {
  MICCO_EXPECTS(desc.valid());
  const Shape shape = desc.rank == 2 ? Shape::matrix(desc.batch, desc.extent)
                                     : Shape::rank3(desc.batch, desc.extent);
  // Seeded by the tensor's identity: every appearance of a repeated hadron
  // node materialises identical data, wherever and whenever it is fetched.
  Pcg32 rng(desc.id * 0x9e3779b97f4a7c15ULL + 1ULL);
  return Tensor::random(shape, rng);
}

NumericResult execute_numerically(const WorkloadStream& stream,
                                  std::uint64_t byte_limit) {
  const std::string structural_error = validate_stream_structure(stream);
  MICCO_EXPECTS_MSG(structural_error.empty(),
                    "stream failed structural validation");

  // Determinism audit (DESIGN.md §5e): this map is only ever probed with
  // find/emplace — never iterated — and the digest accumulates in task order,
  // so the hash layout cannot reach the numeric result or any error message.
  std::unordered_map<TensorId, Tensor> live;
  NumericResult result;
  std::uint64_t live_bytes = 0;

  const auto obtain = [&](const TensorDesc& desc) -> const Tensor& {
    const auto it = live.find(desc.id);
    if (it != live.end()) return it->second;
    Tensor t = materialize_original(desc);
    live_bytes += t.bytes();
    MICCO_EXPECTS_MSG(live_bytes <= byte_limit,
                      "numeric execution exceeds the byte limit");
    return live.emplace(desc.id, std::move(t)).first->second;
  };

  for (const VectorWorkload& vec : stream.vectors) {
    for (const ContractionTask& task : vec.tasks) {
      const Tensor& a = obtain(task.a);
      const Tensor& b = obtain(task.b);
      Tensor out = [&] {
        if (task.a.rank == 2 && task.b.rank == 2) return contract_meson(a, b);
        if (task.a.rank == 3 && task.b.rank == 3) return contract_baryon(a, b);
        // Mixed: orient so the matrix comes first.
        return task.a.rank == 2 ? contract_mixed(a, b)
                                : contract_mixed(b, a);
      }();
      result.digest += out.frobenius_norm();
      live_bytes += out.bytes();
      MICCO_EXPECTS_MSG(live_bytes <= byte_limit,
                        "numeric execution exceeds the byte limit");
      live.emplace(task.out.id, std::move(out));
      ++result.tasks_executed;
      result.peak_bytes = std::max(result.peak_bytes, live_bytes);
    }
  }
  return result;
}

}  // namespace micco
