#include "core/experiment.hpp"

#include "common/assert.hpp"
#include "parallel/parallel.hpp"

namespace micco {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kGroute: return "Groute";
    case SchedulerKind::kRoundRobin: return "RoundRobin";
    case SchedulerKind::kDataReuseOnly: return "DataReuseOnly";
    case SchedulerKind::kLoadBalanceOnly: return "LoadBalanceOnly";
    case SchedulerKind::kDmda: return "dmda";
    case SchedulerKind::kMiccoNaive: return "MICCO-naive";
    case SchedulerKind::kMiccoOptimal: return "MICCO-optimal";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kGroute:
      return std::make_unique<GrouteScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kDataReuseOnly:
      return std::make_unique<DataReuseOnlyScheduler>();
    case SchedulerKind::kLoadBalanceOnly:
      return std::make_unique<LoadBalanceOnlyScheduler>();
    case SchedulerKind::kDmda:
      return std::make_unique<DmdaScheduler>();
    case SchedulerKind::kMiccoNaive:
    case SchedulerKind::kMiccoOptimal: {
      MiccoSchedulerOptions options;
      options.seed = seed;
      return std::make_unique<MiccoScheduler>(options);
    }
  }
  MICCO_ASSERT_MSG(false, "unreachable scheduler kind");
  return nullptr;
}

std::vector<ComparisonEntry> compare_schedulers(
    const WorkloadStream& stream, const ClusterConfig& cluster,
    const std::vector<SchedulerKind>& kinds, BoundsProvider* optimal_bounds) {
  std::vector<SchedulerKind> runnable;
  runnable.reserve(kinds.size());
  for (const SchedulerKind kind : kinds) {
    if (kind == SchedulerKind::kMiccoOptimal && optimal_bounds == nullptr) {
      continue;
    }
    runnable.push_back(kind);
  }
  // Each kind runs on its own scheduler and its own simulated cluster (built
  // inside run_stream), so the comparisons are independent; parallel_map
  // keeps the entries in kind order regardless of which finishes first.
  return parallel::parallel_map(runnable.size(), [&](std::size_t i) {
    const SchedulerKind kind = runnable[i];
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
    BoundsProvider* bounds =
        kind == SchedulerKind::kMiccoOptimal ? optimal_bounds : nullptr;
    ComparisonEntry entry;
    entry.kind = kind;
    entry.name = to_string(kind);
    entry.result = run_stream(stream, *scheduler, cluster, bounds);
    return entry;
  });
}

double speedup_of(const std::vector<ComparisonEntry>& entries,
                  SchedulerKind which, SchedulerKind baseline) {
  const ComparisonEntry* target = nullptr;
  const ComparisonEntry* base = nullptr;
  for (const ComparisonEntry& e : entries) {
    if (e.kind == which) target = &e;
    if (e.kind == baseline) base = &e;
  }
  MICCO_EXPECTS_MSG(target != nullptr && base != nullptr,
                    "speedup_of: scheduler missing from comparison");
  MICCO_EXPECTS(base->result.metrics.makespan_s > 0.0);
  return base->result.metrics.makespan_s / target->result.metrics.makespan_s;
}

}  // namespace micco
