// Regression bounds model: trains a multi-output regressor on the tuner's
// labelled corpus and serves per-vector reuse-bound predictions online
// (step 2 of Fig. 6). Also hosts the Table IV model comparison.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/tuner.hpp"
#include "ml/regressor.hpp"

namespace micco {

/// Trained model + held-out quality, per reuse bound and averaged.
struct BoundsModelReport {
  std::string model_name;
  std::array<double, 3> per_bound_r2{0.0, 0.0, 0.0};
  double mean_r2 = 0.0;
  double train_ms = 0.0;
  double inference_us = 0.0;  ///< mean single-sample latency
};

/// Builds the per-output datasets (shared features, one target column per
/// reuse bound) from labelled training samples.
std::array<ml::Dataset, 3> build_bound_datasets(
    std::span<const TrainingSample> samples);

/// Online provider backed by a trained multi-output regressor. Predictions
/// are rounded to integers and clamped to [0, max_bound].
class RegressionBoundsProvider final : public BoundsProvider {
 public:
  RegressionBoundsProvider(ml::MultiOutputRegressor model,
                           std::int64_t max_bound);

  ReuseBounds bounds_for(const DataCharacteristics& c) override;

 private:
  ml::MultiOutputRegressor model_;
  std::int64_t max_bound_;
};

/// Trains a model on an 80/20 split of `samples` (the paper: "20% of which
/// is test data") and reports held-out R^2. The returned provider is fit on
/// the *training* portion only, like the paper's offline model.
struct TrainedBoundsModel {
  std::unique_ptr<RegressionBoundsProvider> provider;
  BoundsModelReport report;
};

TrainedBoundsModel train_bounds_model(std::span<const TrainingSample> samples,
                                      const ml::RegressorFactory& factory,
                                      const std::string& model_name,
                                      std::int64_t max_bound,
                                      std::uint64_t seed = 5);

/// Factories for the three Table IV models with the paper's settings
/// (150 trees / 150 stages, learning rate 0.1).
ml::RegressorFactory linear_regression_factory();
ml::RegressorFactory gradient_boosting_factory();
ml::RegressorFactory random_forest_factory();

/// Convenience: sweep + train the production Random Forest provider in one
/// call (used by examples and bench_redstar).
TrainedBoundsModel train_default_model(const TunerConfig& tuner_config);

}  // namespace micco
