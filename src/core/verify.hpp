// Numeric verification path.
//
// Executes a workload stream with real tensor data through the executing
// contraction kernels, independent of any device assignment. Because hadron
// contractions are pure functions of their operands, every schedule MICCO
// (or any baseline) emits must reproduce exactly the digest this reference
// produces — the property tests and the meson_spectroscopy example rely on
// this to show scheduling is numerically transparent.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "tensor/contraction.hpp"
#include "workload/task.hpp"

namespace micco {

/// Structural validation of a stream: outputs are unique, operands are
/// either originals (never produced) or produced in a strictly earlier
/// stage, ranks are contractable. Returns an empty string when valid, else
/// a description of the first violation.
std::string validate_stream_structure(const WorkloadStream& stream);

struct NumericResult {
  /// Sum of Frobenius norms over all produced tensors (schedule-invariant
  /// digest of the whole computation).
  double digest = 0.0;
  std::size_t tasks_executed = 0;
  std::uint64_t peak_bytes = 0;  ///< live tensor bytes at the high-water mark
};

/// Executes every task of the stream in stage order with real data.
/// Original inputs are materialised deterministically from their TensorId
/// (same id -> same data, mirroring how repeated hadron nodes share
/// payloads). Aborts if the live working set would exceed `byte_limit`
/// (keep verification workloads small; see DESIGN.md).
NumericResult execute_numerically(const WorkloadStream& stream,
                                  std::uint64_t byte_limit = 1ULL << 30);

/// Deterministic payload for an original tensor (exposed so tests can
/// cross-check individual contractions).
Tensor materialize_original(const TensorDesc& desc);

}  // namespace micco
