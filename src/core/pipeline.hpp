// The MICCO execution pipeline (Fig. 6).
//
// Drives one workload stream through a scheduler and the simulated cluster:
// per vector, (1) extract data characteristics, (2) obtain reuse bounds from
// the bounds provider (regression model, fixed triple, or none for
// baselines), (3) assign tensor pairs one by one, executing each assignment
// immediately, then barrier. Scheduler wall-clock is metered separately so
// Table V's overhead split can be reproduced.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "gpusim/cluster.hpp"
#include "mem/policy.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sched/micco_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "workload/characteristics.hpp"
#include "workload/task.hpp"

namespace micco {

/// Supplies reuse bounds for each incoming vector.
class BoundsProvider {
 public:
  virtual ~BoundsProvider() = default;
  virtual ReuseBounds bounds_for(const DataCharacteristics& c) = 0;
};

/// Always returns the same triple (MICCO-naive uses the zero triple; Fig. 8
/// sweeps fixed triples).
class FixedBounds final : public BoundsProvider {
 public:
  explicit FixedBounds(ReuseBounds bounds) : bounds_(bounds) {}
  ReuseBounds bounds_for(const DataCharacteristics&) override {
    return bounds_;
  }

 private:
  ReuseBounds bounds_;
};

struct RunResult {
  std::string scheduler_name;
  ExecutionMetrics metrics;
  /// Wall-clock spent inside scheduler + bounds-provider calls (Table V's
  /// "Scheduling Overhead"), milliseconds.
  double scheduling_overhead_ms = 0.0;
  /// Simulated execution time, milliseconds (Table V's "Total Time").
  double total_time_ms = 0.0;
  /// Characteristics observed per vector (diagnostics, training data).
  std::vector<DataCharacteristics> per_vector_characteristics;

  // -- Per-device rollups captured before the simulator is torn down ------
  int num_devices = 0;
  /// Busy fraction of the makespan, per device.
  std::vector<double> device_utilization;
  /// Accumulated non-idle seconds, per device.
  std::vector<double> device_busy_s;
  /// Bytes left resident per device when the stream finished — the modeled
  /// footprint the job would keep warm. The memory arbiter (mem/arbiter.hpp)
  /// books this per tenant.
  std::vector<std::uint64_t> device_resident_bytes;
  /// Cluster-index residency epoch at run end (total residency changes);
  /// the arbiter uses it as the footprint's coldness generation.
  std::uint64_t residency_epoch = 0;

  // -- Fault tolerance ----------------------------------------------------
  /// Tasks re-enqueued after device losses: lineage re-executions of lost
  /// intermediates plus interrupted tasks retried on survivors.
  std::uint64_t tasks_reexecuted = 0;
  /// Permanent device failures the run absorbed.
  int devices_lost = 0;
  /// True when every pair completed despite at least one device loss.
  bool recovered = false;
  /// False when the stream could not finish (error below says why).
  bool completed = true;
  /// Structured, human-readable failure cause; empty on success. Replaces
  /// the aborts these conditions used to trigger.
  std::string error;
};

/// Order in which a vector's pairs are fed to the scheduler. The paper
/// processes pairs "one after another" in arrival order; the alternatives
/// are ablations on that design choice.
enum class PairOrdering {
  kAsGiven,         ///< arrival order (the paper's setting)
  kReuseTierFirst,  ///< pairs with resident operands first (greedy locality)
  kLargestFirst,    ///< LPT on kernel FLOPs (classic makespan heuristic)
};

const char* to_string(PairOrdering ordering);

struct RunOptions {
  BoundsProvider* bounds = nullptr;  ///< per-vector reuse bounds (Fig. 6)
  PairOrdering ordering = PairOrdering::kAsGiven;
  TraceRecorder* trace = nullptr;    ///< optional timeline recording
  /// Optional telemetry bundle: attached to both the scheduler (decision
  /// log, assignment counters) and the simulator (memory events) for the
  /// duration of the run; the driver maintains its decision-log cursor.
  obs::Telemetry* telemetry = nullptr;
  /// Optional fault plan (not owned; must outlive the run). An empty or
  /// absent plan leaves every metric, report and log byte-identical to a
  /// run without the fault machinery.
  const FaultPlan* faults = nullptr;
  /// Retry/backoff policy for transient transfer faults (used only when a
  /// plan with transfer faults is attached).
  RetryPolicy retry;
  /// Optional request tracing (DESIGN.md §7): when BOTH span_sink and
  /// trace_context are attached, the run emits per-vector "sched"/"exec"
  /// spans and "recovery" spans, parented at trace_context->parent_span and
  /// carrying only deterministic values (simulated time, counts) — a
  /// single-threaded session's trace file is byte-identical across runs.
  obs::SpanSink* span_sink = nullptr;
  obs::TraceContext* trace_context = nullptr;
  /// Optional wall-clock per-decision latency meter for the scheduling hot
  /// path (bounds: names::decision_latency_bounds_us()). Owned by the
  /// caller, observed unsynchronised, flushed by the caller after the run.
  /// Detached (the batch default) the hot path does no extra work and runs
  /// stay byte-reproducible.
  obs::HistogramScratch* decision_latency = nullptr;
  /// Optional eviction policy (mem/, not owned; must outlive the run).
  /// run_stream attaches it to the simulator and feeds it the per-vector
  /// future-use information (begin_vector with the visit order, observe_use
  /// per executed pair). Detached (nullptr, the default) the simulator runs
  /// the legacy hard-coded LRU and every log/report stays byte-identical to
  /// pre-policy builds. Non-const: the feed hooks mutate tracker state.
  mem::EvictionPolicy* evict_policy = nullptr;
};

/// Runs `stream` with `scheduler` on a fresh simulated cluster. When
/// `options.bounds` is non-null and the scheduler is a MiccoScheduler,
/// bounds are refreshed per vector from the provider (step 2 of Fig. 6).
RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster, const RunOptions& options);

/// Back-compat convenience: default options with an optional provider.
RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster,
                     BoundsProvider* bounds = nullptr);

/// Assembles the versioned run-report JSON (obs/report.hpp) from a finished
/// run and the telemetry gathered during it: ExecutionMetrics flattened,
/// per-device rollups, derived ratios and the registry snapshot.
obs::JsonValue make_run_report(const RunResult& result,
                               const obs::Telemetry& telemetry);

/// Sizes device capacity so the run is at the given memory oversubscription
/// rate: rate = (per-device share of the distinct-tensor footprint) /
/// capacity. rate 1.0 means the workload exactly fits; 2.0 means each
/// device can hold half its share (Fig. 11's 200%). The result is floored
/// at `min_capacity` so a single task's working set always fits (the floor
/// also wins for rates below 1.0 whenever the inflated share stays under
/// it). Degenerate inputs — no devices, an empty stream, a non-positive
/// rate — return `min_capacity` instead of dividing by zero.
std::uint64_t capacity_for_oversubscription(const WorkloadStream& stream,
                                            int num_devices, double rate,
                                            std::uint64_t min_capacity);

}  // namespace micco
