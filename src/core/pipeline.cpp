#include "core/pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.hpp"
#include "sched/reuse_pattern.hpp"

namespace micco {

const char* to_string(PairOrdering ordering) {
  switch (ordering) {
    case PairOrdering::kAsGiven: return "as-given";
    case PairOrdering::kReuseTierFirst: return "reuse-tier-first";
    case PairOrdering::kLargestFirst: return "largest-first";
  }
  return "?";
}

namespace {

/// Task visit order for one vector under the configured ordering policy.
/// Reuse-tier ordering is computed against residency at vector entry (the
/// classification drifts as assignments execute, but a stable order keeps
/// the policy deterministic and cheap).
std::vector<std::size_t> visit_order(const VectorWorkload& vec,
                                     const ClusterView& view,
                                     PairOrdering ordering) {
  std::vector<std::size_t> order(vec.tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (ordering) {
    case PairOrdering::kAsGiven:
      break;
    case PairOrdering::kReuseTierFirst: {
      std::vector<int> tier(vec.tasks.size());
      for (std::size_t i = 0; i < vec.tasks.size(); ++i) {
        tier[i] = static_cast<int>(classify_pair(vec.tasks[i], view));
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tier[a] < tier[b];
                       });
      break;
    }
    case PairOrdering::kLargestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return vec.tasks[a].flops() > vec.tasks[b].flops();
                       });
      break;
  }
  return order;
}

}  // namespace

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster,
                     const RunOptions& options) {
  ClusterSimulator sim(cluster);
  sim.set_trace(options.trace);
  RunResult result;
  result.scheduler_name = scheduler.name();
  result.per_vector_characteristics.reserve(stream.vectors.size());

  auto* micco_sched = dynamic_cast<MiccoScheduler*>(&scheduler);
  double overhead_us = 0.0;

  for (const VectorWorkload& vec : stream.vectors) {
    if (vec.tasks.empty()) continue;

    Stopwatch watch;
    const DataCharacteristics characteristics =
        extract_characteristics(vec, sim);
    if (options.bounds != nullptr && micco_sched != nullptr) {
      micco_sched->set_reuse_bounds(
          options.bounds->bounds_for(characteristics));
    }
    scheduler.begin_vector(vec, sim);
    const std::vector<std::size_t> order =
        visit_order(vec, sim, options.ordering);
    overhead_us += watch.elapsed_us();
    result.per_vector_characteristics.push_back(characteristics);

    for (const std::size_t index : order) {
      const ContractionTask& task = vec.tasks[index];
      watch.restart();
      const DeviceId dev = scheduler.assign(task, sim);
      overhead_us += watch.elapsed_us();
      sim.execute(task, dev);
    }

    watch.restart();
    scheduler.end_vector();
    overhead_us += watch.elapsed_us();
    sim.barrier();
  }

  result.metrics = sim.metrics();
  result.scheduling_overhead_ms = overhead_us / 1000.0;
  result.total_time_ms = result.metrics.makespan_s * 1000.0;
  return result;
}

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster, BoundsProvider* bounds) {
  RunOptions options;
  options.bounds = bounds;
  return run_stream(stream, scheduler, cluster, options);
}

std::uint64_t capacity_for_oversubscription(const WorkloadStream& stream,
                                            int num_devices, double rate,
                                            std::uint64_t min_capacity) {
  MICCO_EXPECTS(num_devices >= 1);
  MICCO_EXPECTS(rate > 0.0);
  const std::uint64_t footprint = stream.total_distinct_bytes();
  const auto share =
      static_cast<double>(footprint) / static_cast<double>(num_devices);
  const auto capacity = static_cast<std::uint64_t>(share / rate);
  return std::max(capacity, min_capacity);
}

}  // namespace micco
