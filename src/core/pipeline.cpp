#include "core/pipeline.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.hpp"
#include "faults/injector.hpp"
#include "obs/names.hpp"
#include "sched/reuse_pattern.hpp"

namespace micco {

const char* to_string(PairOrdering ordering) {
  switch (ordering) {
    case PairOrdering::kAsGiven: return "as-given";
    case PairOrdering::kReuseTierFirst: return "reuse-tier-first";
    case PairOrdering::kLargestFirst: return "largest-first";
  }
  return "?";
}

namespace {

/// Task visit order for one vector under the configured ordering policy.
/// Reuse-tier ordering is computed against residency at vector entry (the
/// classification drifts as assignments execute, but a stable order keeps
/// the policy deterministic and cheap).
std::vector<std::size_t> visit_order(const VectorWorkload& vec,
                                     const ClusterView& view,
                                     PairOrdering ordering) {
  std::vector<std::size_t> order(vec.tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (ordering) {
    case PairOrdering::kAsGiven:
      break;
    case PairOrdering::kReuseTierFirst: {
      // Classification from the incremental index when the view maintains
      // one (bitmask intersections instead of holder-list scans; identical
      // results either way).
      const ClusterIndex* index =
          sched_incremental() ? view.cluster_index() : nullptr;
      std::vector<int> tier(vec.tasks.size());
      for (std::size_t i = 0; i < vec.tasks.size(); ++i) {
        tier[i] = static_cast<int>(
            index != nullptr ? classify_pair(vec.tasks[i], *index)
                             : classify_pair(vec.tasks[i], view));
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tier[a] < tier[b];
                       });
      break;
    }
    case PairOrdering::kLargestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return vec.tasks[a].flops() > vec.tasks[b].flops();
                       });
      break;
  }
  return order;
}

}  // namespace

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster,
                     const RunOptions& options) {
  RunResult result;
  result.scheduler_name = scheduler.name();

  // Validate the fault configuration up front: a malformed plan is a user
  // error reported through the result, never an abort mid-run.
  std::optional<FaultInjector> injector;
  if (options.faults != nullptr) {
    std::string problem = options.faults->validate(cluster.num_devices);
    if (problem.empty()) problem = options.retry.validate();
    if (!problem.empty()) {
      result.error = "invalid fault configuration: " + problem;
      result.completed = false;
      result.num_devices = cluster.num_devices;
      return result;
    }
    injector.emplace(*options.faults, options.retry);
  }

  ClusterSimulator sim(cluster);
  if (injector.has_value()) sim.set_fault_injector(&*injector);
  sim.set_trace(options.trace);
  sim.set_telemetry(options.telemetry);
  sim.set_eviction_policy(options.evict_policy);
  scheduler.set_telemetry(options.telemetry);
  result.per_vector_characteristics.reserve(stream.vectors.size());

  auto* micco_sched = dynamic_cast<MiccoScheduler*>(&scheduler);
  double overhead_us = 0.0;
  Stopwatch watch;

  // One unit of pending work. pair_index keeps the decision-log cursor:
  // the pair's position in the vector as given (stable across ordering
  // ablations), or -1 for a lineage re-execution after a device loss.
  // policy_pos is the pair's position in the *visit order* — the coordinate
  // the eviction policy's future-use tracker counts in — and also -1 for
  // re-executions (the tracker treats those as no-ops: the original
  // position was already retired, see mem/policy.hpp).
  struct QueueItem {
    ContractionTask task;
    std::int64_t pair_index = -1;
    std::int64_t policy_pos = -1;
  };
  // Lineage map: the task that produced each intermediate, so tensors lost
  // with a device can be recomputed from surviving inputs (their operands
  // are either host-staged originals or themselves recoverable).
  std::unordered_map<TensorId, ContractionTask> producers;
  std::int64_t vector_index = -1;

  // Builds the recovery work list for one device loss: producers of the
  // lost tensors, in tensor-id order (ids are assigned in production order,
  // so dependencies re-execute before their consumers).
  const auto recovery_items = [&](const std::vector<TensorId>& lost) {
    std::vector<QueueItem> items;
    for (const TensorId id : lost) {
      const auto it = producers.find(id);
      if (it != producers.end()) items.push_back(QueueItem{it->second, -1});
    }
    return items;
  };

  // Tracing needs both halves: the sink to write to and the context that
  // carries the job's identity and id allocator.
  const bool tracing =
      options.span_sink != nullptr && options.trace_context != nullptr;
  const auto emit_span = [&](obs::SpanEvent event) {
    obs::TraceContext& ctx = *options.trace_context;
    event.trace_id = ctx.trace_id;
    event.job_id = ctx.job_id;
    event.tenant = ctx.tenant;
    event.span_id = ctx.alloc();
    event.parent_id = ctx.parent_span;
    options.span_sink->span(std::move(event));
  };

  const auto note_recovery = [&](DeviceId dev, std::size_t requeued) {
    result.tasks_reexecuted += requeued;
    if (options.telemetry != nullptr && requeued > 0) {
      obs::ClusterEvent ev;
      ev.kind = obs::ClusterEventKind::kRecovery;
      ev.device = dev;
      ev.time_s = sim.metrics().makespan_s;
      ev.count = static_cast<std::int64_t>(requeued);
      options.telemetry->emit(ev);
    }
    if (tracing && requeued > 0) {
      obs::SpanEvent span;
      span.name = obs::names::kSpanRecovery;
      span.vector_index = vector_index;
      span.sim_time_s = sim.metrics().makespan_s;
      span.attrs_int.emplace_back("device", static_cast<std::int64_t>(dev));
      span.attrs_int.emplace_back("requeued",
                                  static_cast<std::int64_t>(requeued));
      emit_span(std::move(span));
    }
  };

  // Drains one work queue, absorbing device failures by re-enqueuing lost
  // lineage plus the interrupted task. Returns false when the run cannot
  // continue (result.error is set).
  const auto drain = [&](std::deque<QueueItem>& queue) {
    while (!queue.empty()) {
      if (sim.num_alive_devices() == 0) {
        result.error = "all devices failed; stream cannot complete";
        result.completed = false;
        return false;
      }
      const QueueItem item = queue.front();
      queue.pop_front();
      // A re-queued task may already have run: a device that dies while
      // *re-executing* a producer puts the same task in the queue twice —
      // once as the interrupted pair, once via the lineage of its own
      // (previously committed, now lost) output. Whichever copy runs first
      // re-materialises the output; the straggler is a duplicate and is
      // dropped. Fault-free runs never take this branch: every output id
      // is produced exactly once.
      if (!sim.devices_holding(item.task.out.id).empty()) continue;
      if (options.telemetry != nullptr) {
        options.telemetry->vector_index = vector_index;
        options.telemetry->pair_index = item.pair_index;
      }
      watch.restart();
      const DeviceId dev = scheduler.assign(item.task, sim);
      const double assign_us = watch.elapsed_us();
      overhead_us += assign_us;
      if (options.decision_latency != nullptr) {
        options.decision_latency->observe(assign_us);
      }
      if (!sim.device_alive(dev)) {
        result.error = "scheduler assigned a pair to failed device " +
                       std::to_string(dev);
        result.completed = false;
        return false;
      }
      // Retire the pair's future-use positions before execute(): its own
      // operands are pinned for the kernel anyway, so victim selection must
      // rank them by their *next* use, not the one being served now.
      if (options.evict_policy != nullptr) {
        options.evict_policy->observe_use(item.task, item.policy_pos);
      }
      const ExecuteResult exec = sim.execute(item.task, dev);
      switch (exec.outcome) {
        case TaskOutcome::kCompleted:
          producers[item.task.out.id] = item.task;
          break;
        case TaskOutcome::kDeviceFailed: {
          scheduler.on_device_failure(dev, sim);
          std::vector<QueueItem> requeue = recovery_items(exec.lost_tensors);
          requeue.push_back(item);  // the interrupted pair itself
          queue.insert(queue.begin(), requeue.begin(), requeue.end());
          note_recovery(dev, requeue.size());
          break;
        }
        case TaskOutcome::kCapacityExceeded:
          result.error =
              "task working set exceeds device capacity (device " +
              std::to_string(dev) + ", output tensor " +
              std::to_string(item.task.out.id) + ")";
          result.completed = false;
          return false;
      }
    }
    return true;
  };

  // Barrier + proactive failure sweep: devices whose planned failure fell
  // inside the stage are declared dead here; anything they alone held is
  // recomputed before the next vector starts.
  const auto barrier_and_recover = [&] {
    sim.barrier();
    for (BarrierFailures failures = sim.take_barrier_failures();
         !failures.empty(); failures = sim.take_barrier_failures()) {
      for (const DeviceId dev : failures.devices) {
        scheduler.on_device_failure(dev, sim);
      }
      if (sim.num_alive_devices() == 0) {
        result.error = "all devices failed; stream cannot complete";
        result.completed = false;
        return false;
      }
      std::deque<QueueItem> queue;
      const std::vector<QueueItem> items =
          recovery_items(failures.lost_tensors);
      queue.insert(queue.end(), items.begin(), items.end());
      note_recovery(failures.devices.front(), items.size());
      if (!drain(queue)) return false;
      sim.barrier();
    }
    return true;
  };

  for (const VectorWorkload& vec : stream.vectors) {
    ++vector_index;
    if (vec.tasks.empty()) continue;
    const double vector_start_s = sim.metrics().makespan_s;

    watch.restart();
    const DataCharacteristics characteristics =
        extract_characteristics(vec, sim);
    if (options.bounds != nullptr && micco_sched != nullptr) {
      micco_sched->set_reuse_bounds(
          options.bounds->bounds_for(characteristics));
    }
    scheduler.begin_vector(vec, sim);
    const std::vector<std::size_t> order =
        visit_order(vec, sim, options.ordering);
    if (options.evict_policy != nullptr) {
      options.evict_policy->begin_vector(vec, order);
    }
    overhead_us += watch.elapsed_us();
    result.per_vector_characteristics.push_back(characteristics);

    std::deque<QueueItem> queue;
    std::int64_t policy_pos = 0;
    for (const std::size_t index : order) {
      queue.push_back(QueueItem{vec.tasks[index],
                                static_cast<std::int64_t>(index),
                                policy_pos++});
    }
    if (!drain(queue)) break;

    watch.restart();
    scheduler.end_vector();
    overhead_us += watch.elapsed_us();
    if (!barrier_and_recover()) break;

    if (tracing) {
      obs::SpanEvent sched_span;
      sched_span.name = obs::names::kSpanSched;
      sched_span.vector_index = vector_index;
      sched_span.attrs_int.emplace_back(
          "pairs", static_cast<std::int64_t>(vec.tasks.size()));
      emit_span(std::move(sched_span));

      const double vector_end_s = sim.metrics().makespan_s;
      obs::SpanEvent exec_span;
      exec_span.name = obs::names::kSpanExec;
      exec_span.vector_index = vector_index;
      exec_span.sim_time_s = vector_end_s;
      exec_span.duration_ms = (vector_end_s - vector_start_s) * 1000.0;
      emit_span(std::move(exec_span));
    }
  }

  // Detach so the scheduler never outlives a caller-owned telemetry bundle
  // with a dangling pointer; the next run_stream reattaches.
  scheduler.set_telemetry(nullptr);

  result.devices_lost = static_cast<int>(sim.metrics().devices_lost);
  result.recovered = result.completed && result.devices_lost > 0;

  result.metrics = sim.metrics();
  result.scheduling_overhead_ms = overhead_us / 1000.0;
  result.total_time_ms = result.metrics.makespan_s * 1000.0;

  result.num_devices = sim.num_devices();
  result.device_utilization = sim.utilization();
  result.device_resident_bytes.reserve(
      static_cast<std::size_t>(result.num_devices));
  for (int dev = 0; dev < result.num_devices; ++dev) {
    result.device_resident_bytes.push_back(sim.memory_used(dev));
  }
  result.residency_epoch = sim.cluster_index()->epoch_bumps();
  result.device_busy_s.reserve(result.device_utilization.size());
  for (const double u : result.device_utilization) {
    result.device_busy_s.push_back(u * result.metrics.makespan_s);
  }
  if (options.telemetry != nullptr) {
    obs::MetricsRegistry& reg = options.telemetry->registry;
    for (int dev = 0; dev < result.num_devices; ++dev) {
      const auto i = static_cast<std::size_t>(dev);
      const std::string prefix =
          obs::names::kClusterDevicePrefix + std::to_string(dev) + ".";
      reg.gauge(prefix + obs::names::kDeviceUtilizationSuffix)
          .set(result.device_utilization[i]);
      reg.gauge(prefix + obs::names::kDeviceBusySSuffix)
          .set(result.device_busy_s[i]);
    }
  }
  return result;
}

obs::JsonValue make_run_report(const RunResult& result,
                               const obs::Telemetry& telemetry) {
  obs::ReportInputs in;
  in.scheduler = result.scheduler_name;
  in.num_devices = result.num_devices;
  in.metrics = to_json(result.metrics);
  in.makespan_s = result.metrics.makespan_s;
  in.gflops = result.metrics.gflops();
  in.scheduling_overhead_ms = result.scheduling_overhead_ms;
  in.reuse_rate = result.metrics.reuse_rate();

  double busy_max = 0.0;
  double busy_sum = 0.0;
  for (std::size_t i = 0; i < result.device_busy_s.size(); ++i) {
    const double busy = result.device_busy_s[i];
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
    obs::DeviceRollup rollup;
    rollup.device = static_cast<int>(i);
    rollup.busy_s = busy;
    rollup.utilization = result.device_utilization[i];
    in.devices.push_back(rollup);
  }
  const double busy_mean =
      result.device_busy_s.empty()
          ? 0.0
          : busy_sum / static_cast<double>(result.device_busy_s.size());
  in.imbalance_ratio = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;

  obs::JsonValue report = obs::build_report(in, telemetry.registry);

  // Fault/recovery section, present only when something actually went wrong
  // (or was injected): fault-free reports stay byte-identical to reports
  // from before the fault model existed.
  if (result.metrics.any_faults() || result.tasks_reexecuted > 0 ||
      !result.error.empty()) {
    obs::JsonValue faults = obs::JsonValue::object();
    faults.set("devices_lost", static_cast<std::uint64_t>(
                                   result.devices_lost < 0
                                       ? 0
                                       : result.devices_lost));
    faults.set("transfer_faults", result.metrics.transfer_faults);
    faults.set("retry_backoff_s", result.metrics.retry_backoff_s);
    faults.set("tasks_lost", result.metrics.tasks_lost);
    faults.set("tasks_reexecuted", result.tasks_reexecuted);
    faults.set("capacity_faults", result.metrics.capacity_faults);
    faults.set("recovered", result.recovered);
    faults.set("completed", result.completed);
    report.set("faults", std::move(faults));
  }
  if (!result.error.empty()) report.set("error", result.error);

  // Per-vector rollup: the observed characteristics the bounds model ran on.
  obs::JsonValue vectors = obs::JsonValue::array();
  for (const DataCharacteristics& c : result.per_vector_characteristics) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("vector_size", c.vector_size);
    entry.set("tensor_extent", c.tensor_extent);
    entry.set("distribution_bias", c.distribution_bias);
    entry.set("repeated_rate", c.repeated_rate);
    vectors.push_back(std::move(entry));
  }
  report.set("vectors", std::move(vectors));
  return report;
}

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster, BoundsProvider* bounds) {
  RunOptions options;
  options.bounds = bounds;
  return run_stream(stream, scheduler, cluster, options);
}

std::uint64_t capacity_for_oversubscription(const WorkloadStream& stream,
                                            int num_devices, double rate,
                                            std::uint64_t min_capacity) {
  // Degenerate requests — reachable from CLI flags and empty workload
  // files — get the documented floor instead of a division by zero.
  if (num_devices < 1 || rate <= 0.0) return min_capacity;
  const std::uint64_t footprint = stream.total_distinct_bytes();
  if (footprint == 0) return min_capacity;
  const double share =
      static_cast<double>(footprint) / static_cast<double>(num_devices);
  const double capacity = share / rate;
  // Under-subscription (rate < 1.0) inflates the share; clamp before the
  // float-to-integer cast can overflow.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t clamped =
      capacity >= static_cast<double>(kMax)
          ? kMax
          : static_cast<std::uint64_t>(capacity);
  return std::max(clamped, min_capacity);
}

}  // namespace micco
