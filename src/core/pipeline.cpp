#include "core/pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "common/stopwatch.hpp"
#include "sched/reuse_pattern.hpp"

namespace micco {

const char* to_string(PairOrdering ordering) {
  switch (ordering) {
    case PairOrdering::kAsGiven: return "as-given";
    case PairOrdering::kReuseTierFirst: return "reuse-tier-first";
    case PairOrdering::kLargestFirst: return "largest-first";
  }
  return "?";
}

namespace {

/// Task visit order for one vector under the configured ordering policy.
/// Reuse-tier ordering is computed against residency at vector entry (the
/// classification drifts as assignments execute, but a stable order keeps
/// the policy deterministic and cheap).
std::vector<std::size_t> visit_order(const VectorWorkload& vec,
                                     const ClusterView& view,
                                     PairOrdering ordering) {
  std::vector<std::size_t> order(vec.tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (ordering) {
    case PairOrdering::kAsGiven:
      break;
    case PairOrdering::kReuseTierFirst: {
      std::vector<int> tier(vec.tasks.size());
      for (std::size_t i = 0; i < vec.tasks.size(); ++i) {
        tier[i] = static_cast<int>(classify_pair(vec.tasks[i], view));
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tier[a] < tier[b];
                       });
      break;
    }
    case PairOrdering::kLargestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return vec.tasks[a].flops() > vec.tasks[b].flops();
                       });
      break;
  }
  return order;
}

}  // namespace

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster,
                     const RunOptions& options) {
  ClusterSimulator sim(cluster);
  sim.set_trace(options.trace);
  sim.set_telemetry(options.telemetry);
  scheduler.set_telemetry(options.telemetry);
  RunResult result;
  result.scheduler_name = scheduler.name();
  result.per_vector_characteristics.reserve(stream.vectors.size());

  auto* micco_sched = dynamic_cast<MiccoScheduler*>(&scheduler);
  double overhead_us = 0.0;

  std::int64_t vector_index = -1;
  for (const VectorWorkload& vec : stream.vectors) {
    ++vector_index;
    if (vec.tasks.empty()) continue;

    Stopwatch watch;
    const DataCharacteristics characteristics =
        extract_characteristics(vec, sim);
    if (options.bounds != nullptr && micco_sched != nullptr) {
      micco_sched->set_reuse_bounds(
          options.bounds->bounds_for(characteristics));
    }
    scheduler.begin_vector(vec, sim);
    const std::vector<std::size_t> order =
        visit_order(vec, sim, options.ordering);
    overhead_us += watch.elapsed_us();
    result.per_vector_characteristics.push_back(characteristics);

    for (const std::size_t index : order) {
      const ContractionTask& task = vec.tasks[index];
      if (options.telemetry != nullptr) {
        // Decision-log cursor: pair_index is the pair's position in the
        // vector as given, stable across ordering ablations.
        options.telemetry->vector_index = vector_index;
        options.telemetry->pair_index = static_cast<std::int64_t>(index);
      }
      watch.restart();
      const DeviceId dev = scheduler.assign(task, sim);
      overhead_us += watch.elapsed_us();
      sim.execute(task, dev);
    }

    watch.restart();
    scheduler.end_vector();
    overhead_us += watch.elapsed_us();
    sim.barrier();
  }

  // Detach so the scheduler never outlives a caller-owned telemetry bundle
  // with a dangling pointer; the next run_stream reattaches.
  scheduler.set_telemetry(nullptr);

  result.metrics = sim.metrics();
  result.scheduling_overhead_ms = overhead_us / 1000.0;
  result.total_time_ms = result.metrics.makespan_s * 1000.0;

  result.num_devices = sim.num_devices();
  result.device_utilization = sim.utilization();
  result.device_busy_s.reserve(result.device_utilization.size());
  for (const double u : result.device_utilization) {
    result.device_busy_s.push_back(u * result.metrics.makespan_s);
  }
  if (options.telemetry != nullptr) {
    obs::MetricsRegistry& reg = options.telemetry->registry;
    for (int dev = 0; dev < result.num_devices; ++dev) {
      const auto i = static_cast<std::size_t>(dev);
      const std::string prefix =
          "cluster.device." + std::to_string(dev) + ".";
      reg.gauge(prefix + "utilization").set(result.device_utilization[i]);
      reg.gauge(prefix + "busy_s").set(result.device_busy_s[i]);
    }
  }
  return result;
}

obs::JsonValue make_run_report(const RunResult& result,
                               const obs::Telemetry& telemetry) {
  obs::ReportInputs in;
  in.scheduler = result.scheduler_name;
  in.num_devices = result.num_devices;
  in.metrics = to_json(result.metrics);
  in.makespan_s = result.metrics.makespan_s;
  in.gflops = result.metrics.gflops();
  in.scheduling_overhead_ms = result.scheduling_overhead_ms;
  in.reuse_rate = result.metrics.reuse_rate();

  double busy_max = 0.0;
  double busy_sum = 0.0;
  for (std::size_t i = 0; i < result.device_busy_s.size(); ++i) {
    const double busy = result.device_busy_s[i];
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
    obs::DeviceRollup rollup;
    rollup.device = static_cast<int>(i);
    rollup.busy_s = busy;
    rollup.utilization = result.device_utilization[i];
    in.devices.push_back(rollup);
  }
  const double busy_mean =
      result.device_busy_s.empty()
          ? 0.0
          : busy_sum / static_cast<double>(result.device_busy_s.size());
  in.imbalance_ratio = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;

  obs::JsonValue report = obs::build_report(in, telemetry.registry);

  // Per-vector rollup: the observed characteristics the bounds model ran on.
  obs::JsonValue vectors = obs::JsonValue::array();
  for (const DataCharacteristics& c : result.per_vector_characteristics) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("vector_size", c.vector_size);
    entry.set("tensor_extent", c.tensor_extent);
    entry.set("distribution_bias", c.distribution_bias);
    entry.set("repeated_rate", c.repeated_rate);
    vectors.push_back(std::move(entry));
  }
  report.set("vectors", std::move(vectors));
  return report;
}

RunResult run_stream(const WorkloadStream& stream, Scheduler& scheduler,
                     const ClusterConfig& cluster, BoundsProvider* bounds) {
  RunOptions options;
  options.bounds = bounds;
  return run_stream(stream, scheduler, cluster, options);
}

std::uint64_t capacity_for_oversubscription(const WorkloadStream& stream,
                                            int num_devices, double rate,
                                            std::uint64_t min_capacity) {
  MICCO_EXPECTS(num_devices >= 1);
  MICCO_EXPECTS(rate > 0.0);
  const std::uint64_t footprint = stream.total_distinct_bytes();
  const auto share =
      static_cast<double>(footprint) / static_cast<double>(num_devices);
  const auto capacity = static_cast<std::uint64_t>(share / rate);
  return std::max(capacity, min_capacity);
}

}  // namespace micco
