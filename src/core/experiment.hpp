// Experiment helpers shared by the benches and examples: scheduler
// construction by kind, and side-by-side scheduler comparisons on one
// workload (fresh cluster per run, identical seeds).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sched/baselines.hpp"
#include "sched/micco_scheduler.hpp"

namespace micco {

enum class SchedulerKind {
  kGroute,
  kRoundRobin,
  kDataReuseOnly,
  kLoadBalanceOnly,
  kDmda,          ///< StarPU-style data-aware earliest-finish baseline
  kMiccoNaive,    ///< MICCO heuristic, zero reuse bounds
  kMiccoOptimal,  ///< MICCO heuristic + regression-predicted bounds
};

const char* to_string(SchedulerKind kind);

/// Builds a scheduler instance. kMiccoOptimal still needs a BoundsProvider
/// passed to run_stream to receive per-vector bounds.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed = 7);

struct ComparisonEntry {
  SchedulerKind kind;
  std::string name;
  RunResult result;

  double gflops() const { return result.metrics.gflops(); }
};

/// Runs each scheduler on its own fresh simulated cluster over the same
/// stream. `optimal_bounds` feeds kMiccoOptimal (and is ignored by the
/// rest); pass nullptr to skip that entry even if requested.
std::vector<ComparisonEntry> compare_schedulers(
    const WorkloadStream& stream, const ClusterConfig& cluster,
    const std::vector<SchedulerKind>& kinds,
    BoundsProvider* optimal_bounds = nullptr);

/// Speedup of entry `name` over entry `baseline` within a comparison.
double speedup_of(const std::vector<ComparisonEntry>& entries,
                  SchedulerKind which, SchedulerKind baseline);

}  // namespace micco
