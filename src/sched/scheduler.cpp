#include "sched/scheduler.hpp"

#include "obs/names.hpp"
#include "sched/reuse_pattern.hpp"

namespace micco {

namespace {
/// Configuration-time switch (CLI parse / test setup); read-only while
/// decisions are in flight, so no synchronisation is needed.
bool g_sched_incremental = true;
}  // namespace

void set_sched_incremental(bool on) { g_sched_incremental = on; }
bool sched_incremental() { return g_sched_incremental; }

void Scheduler::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    instruments_ = DecisionInstruments{};
    pattern_cache_.set_counters(nullptr, nullptr);
    return;
  }
  obs::MetricsRegistry& reg = telemetry_->registry;
  // The cache only runs on the incremental path; registering its counters
  // under the escape hatch would pollute off-mode reports with dead zeros.
  if (sched_incremental()) {
    pattern_cache_.set_counters(
        &reg.counter(obs::names::kSchedPatternCacheHits),
        &reg.counter(obs::names::kSchedPatternCacheMisses));
  } else {
    pattern_cache_.set_counters(nullptr, nullptr);
  }
  instruments_.decisions = &reg.counter(obs::names::kSchedDecisions);
  for (int i = 0; i < 4; ++i) {
    instruments_.pattern[i] = &reg.counter(obs::names::kSchedPattern[i]);
    instruments_.mapping[i] = &reg.counter(obs::names::kSchedMapping[i]);
  }
  for (int i = 0; i < 3; ++i) {
    instruments_.tier[i] = &reg.counter(obs::names::kSchedTier[i]);
  }
  instruments_.fallback = &reg.counter(obs::names::kSchedFallback);
  instruments_.evict_risk = &reg.counter(obs::names::kSchedEvictRisk);
}

const std::vector<DeviceId>& Scheduler::alive_candidates(
    const ClusterView& view) {
  candidate_scratch_.clear();
  candidate_scratch_.reserve(static_cast<std::size_t>(view.num_devices()));
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (view.device_alive(dev)) candidate_scratch_.push_back(dev);
  }
  return candidate_scratch_;
}

const std::vector<DeviceId>& Scheduler::single_candidate(DeviceId dev) {
  candidate_scratch_.clear();
  candidate_scratch_.push_back(dev);
  return candidate_scratch_;
}

void Scheduler::record_decision(const ContractionTask& task,
                                const ClusterView& view,
                                const std::vector<DeviceId>& candidates,
                                DeviceId chosen, int bound_tier,
                                std::int64_t bound_value,
                                std::int64_t balance_num, bool fallback,
                                bool evict_risk) {
  if (telemetry_ == nullptr) return;

  // The mapping is classified against residency *before* execution mutates
  // it, which is exactly the state the decision was made on. With the
  // incremental index available, classification goes through the epoch-keyed
  // cache (hot pairs re-classify only after a residency change).
  const ClusterIndex* index =
      sched_incremental() ? view.cluster_index() : nullptr;
  const LocalReusePattern pattern = index != nullptr
                                        ? pattern_cache_.classify(task, *index)
                                        : classify_pair(task, view);
  const MappingClass mapping = index != nullptr
                                   ? classify_mapping(task, chosen, *index)
                                   : classify_mapping(task, chosen, view);

  instruments_.decisions->add();
  instruments_.pattern[static_cast<int>(pattern)]->add();
  instruments_.mapping[static_cast<int>(mapping) - 1]->add();
  if (bound_tier >= 0 && bound_tier < 3) {
    instruments_.tier[bound_tier]->add();
  }
  if (fallback) instruments_.fallback->add();
  if (evict_risk) instruments_.evict_risk->add();

  const std::uint64_t seq = telemetry_->next_seq++;
  if (!telemetry_->has_sink()) return;

  obs::DecisionEvent event;
  event.seq = seq;
  event.vector_index = telemetry_->vector_index;
  event.pair_index = telemetry_->pair_index;
  event.tensor_a = task.a.id;
  event.tensor_b = task.b.id;
  event.tensor_out = task.out.id;
  event.scheduler = name();
  event.pattern = to_string(pattern);
  event.candidates.assign(candidates.begin(), candidates.end());
  event.chosen = chosen;
  event.mapping = to_string(mapping);
  event.bound_tier = bound_tier;
  event.bound_value = bound_value;
  event.balance_num = balance_num;
  event.fallback = fallback;
  event.evict_risk = evict_risk;
  telemetry_->emit(event);
}

}  // namespace micco
