#include "sched/micco_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "obs/names.hpp"

namespace micco {

MiccoScheduler::MiccoScheduler(MiccoSchedulerOptions options)
    : options_(options), bounds_(options.bounds), rng_(options.seed) {}

std::string MiccoScheduler::name() const { return "MICCO"; }

void MiccoScheduler::set_telemetry(obs::Telemetry* telemetry) {
  Scheduler::set_telemetry(telemetry);
  slack_hist_ = telemetry == nullptr
                    ? nullptr
                    : &telemetry->registry.histogram(
                          obs::names::kSchedBoundSlack,
                          {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
}

void MiccoScheduler::begin_vector(const VectorWorkload& vec,
                                  const ClusterView& view) {
  const auto num_devices = static_cast<std::size_t>(view.num_devices());
  vector_assigned_.assign(num_devices, {});
  if (compute_cost_.size() != num_devices) {
    compute_cost_.assign(num_devices, 0.0);
  }
  // Decision scratch sized once per vector; assign() then runs without a
  // single heap allocation in steady state.
  candidate_mask_.assign((num_devices + 63) / 64, 0);
  candidates_.reserve(num_devices);
  best_.reserve(num_devices);
  // balanceNum is the per-device share of *distinct* tensors, matching what
  // mapGPUTensor.at(dev).size() counts. Real correlator stages share hadron
  // nodes across many pairs of one vector; dividing raw slot counts instead
  // would inflate the share and let the data-centric tier concentrate the
  // whole stage onto the few devices holding the hot nodes. The divisor is
  // the number of *surviving* devices: after a failure the share is split
  // over the devices that can still take work.
  vector_unique_inputs_ = static_cast<std::int64_t>(vec.unique_inputs().size());
  balance_num_ = std::max<std::int64_t>(
      1, vector_unique_inputs_ /
             std::max<std::int64_t>(1, view.num_alive_devices()));
}

void MiccoScheduler::on_device_failure(DeviceId dev, const ClusterView& view) {
  // The casualty's per-vector accounting is void (its tensors are gone and
  // its pending pairs will be re-assigned); survivors split the stage.
  const auto idx = static_cast<std::size_t>(dev);
  if (idx < vector_assigned_.size()) vector_assigned_[idx].clear();
  if (idx < compute_cost_.size()) compute_cost_[idx] = 0.0;
  balance_num_ = std::max<std::int64_t>(
      1, vector_unique_inputs_ /
             std::max<std::int64_t>(1, view.num_alive_devices()));
}

std::int64_t MiccoScheduler::assigned_count(DeviceId dev) const {
  MICCO_EXPECTS(dev >= 0 &&
                static_cast<std::size_t>(dev) < vector_assigned_.size());
  return static_cast<std::int64_t>(
      vector_assigned_[static_cast<std::size_t>(dev)].size());
}

bool MiccoScheduler::available(DeviceId dev, std::size_t bound_index) const {
  return assigned_count(dev) < bounds_[bound_index] + balance_num_;
}

void MiccoScheduler::push_unique(DeviceId dev) {
  const auto idx = static_cast<std::size_t>(dev);
  std::uint64_t& word = candidate_mask_[idx / 64];
  const std::uint64_t bit = 1ULL << (idx % 64);
  if ((word & bit) == 0) {
    word |= bit;
    candidates_.push_back(dev);
  }
}

DeviceId MiccoScheduler::assign(const ContractionTask& task,
                                const ClusterView& view) {
  MICCO_EXPECTS_MSG(!vector_assigned_.empty(),
                    "begin_vector must run before assign");
  const std::vector<DeviceId>& holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId>& holders_b = view.devices_holding(task.b.id);

  candidates_.clear();
  std::fill(candidate_mask_.begin(), candidate_mask_.end(), 0);
  int tier = -1;        ///< reuse-bound tier that produced the candidates
  bool fallback = false;

  // Step I — data-centric, TwoRepeatedSame tier: devices holding BOTH
  // tensors, gated by reuse bound 0 (Alg. 1, lines 4-7).
  for (const DeviceId dev : holders_a) {
    const bool holds_both =
        std::find(holders_b.begin(), holders_b.end(), dev) != holders_b.end();
    if (holds_both && available(dev, 0)) push_unique(dev);
  }
  if (!candidates_.empty()) tier = 0;

  // Step II — one-reused tier: devices holding either tensor, gated by
  // reuse bound 1 (Alg. 1, lines 8-14). Entered both for the
  // TwoRepeatedDiff / OneRepeated patterns and when every TwoRepeatedSame
  // device failed its availability test.
  if (candidates_.empty() && (!holders_a.empty() || !holders_b.empty())) {
    for (const DeviceId dev : holders_a) {
      if (available(dev, 1)) push_unique(dev);
    }
    for (const DeviceId dev : holders_b) {
      if (available(dev, 1)) push_unique(dev);
    }
    if (!candidates_.empty()) tier = 1;
  }

  // Step II' — TwoNew tier: any alive device under reuse bound 2 (lines
  // 15-18). Tiers I/II need no filter: residency dies with a device, so
  // holder lists only ever name survivors.
  if (candidates_.empty()) {
    for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
      if (view.device_alive(dev) && available(dev, 2)) {
        push_unique(dev);
      }
    }
    if (!candidates_.empty()) tier = 2;
  }

  // Fallback the pseudocode leaves implicit: when every device exceeds even
  // the TwoNew bound (possible late in a vector with small bounds and an
  // uneven tensor count), consider all survivors so the pair is still placed.
  if (candidates_.empty()) {
    fallback = true;
    for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
      if (view.device_alive(dev)) candidates_.push_back(dev);
    }
  }

  const DeviceId chosen = select_from_candidates(candidates_, task, view);

  if (telemetry_ != nullptr) {
    // Slack the winner had already consumed beyond its balanced share when
    // it won; how deep into the reuse bounds the schedule actually runs.
    slack_hist_->observe(
        static_cast<double>(assigned_count(chosen) - balance_num_));
    record_decision(task, view, candidates_, chosen, tier,
                    tier >= 0 ? bounds_[static_cast<std::size_t>(tier)] : -1,
                    balance_num_, fallback, last_evict_risk_);
  }

  // Step IV — update mapGPUTensor / mapGPUCom (Alg. 1, line 20).
  auto& assigned = vector_assigned_[static_cast<std::size_t>(chosen)];
  assigned.insert(task.a.id);
  assigned.insert(task.b.id);
  compute_cost_[static_cast<std::size_t>(chosen)] +=
      static_cast<double>(task.flops());
  return chosen;
}

DeviceId MiccoScheduler::select_from_candidates(
    const std::vector<DeviceId>& candidates, const ContractionTask& task,
    const ClusterView& view) {
  MICCO_EXPECTS(!candidates.empty());

  // Step III — detect oversubscription among the candidates (Alg. 2,
  // lines 3-5): would placing this pair push any candidate past capacity?
  bool evict_risk = false;
  if (options_.eviction_sensitive) {
    for (const DeviceId dev : candidates) {
      const std::uint64_t needed = bytes_needed_on(task, dev, view);
      if (view.memory_used(dev) + needed > view.memory_capacity(dev)) {
        evict_risk = true;
        break;
      }
    }
  }
  last_evict_risk_ = evict_risk;

  // Primary/secondary keys swap between the computation-centric policy
  // (least-loaded device, then most free memory) and the memory-eviction-
  // sensitive policy (most free memory, then least-loaded). Exact ties on
  // both keys break randomly (Alg. 2, lines 9/15). Load is the device's
  // accumulated timeline (mapGPUCom): kernels plus the memory operations
  // earlier assignments induced — balancing on raw FLOPs alone would let
  // transfer-heavy devices fall behind and waste the stage barrier.
  const auto compute_key = [&](DeviceId dev) {
    return view.busy_time(dev);
  };
  const auto memory_key = [&](DeviceId dev) {
    return static_cast<double>(view.memory_used(dev));
  };

  best_.clear();
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  for (const DeviceId dev : candidates) {
    const double primary = evict_risk ? memory_key(dev) : compute_key(dev);
    const double secondary = evict_risk ? compute_key(dev) : memory_key(dev);
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary)) {
      best_primary = primary;
      best_secondary = secondary;
      best_.clear();
      best_.push_back(dev);
    } else if (primary == best_primary && secondary == best_secondary) {
      best_.push_back(dev);
    }
  }

  if (best_.size() == 1) return best_.front();
  return best_[rng_.uniform_below(static_cast<std::uint32_t>(best_.size()))];
}

}  // namespace micco
