#include "sched/micco_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "obs/names.hpp"

namespace micco {

namespace {

/// splitmix64 finalizer: full-avalanche slot hash for sequential TensorIds.
std::uint64_t mix_id(TensorId id) {
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kInitialTableSlots = 64;  // power of two (mask probing)

}  // namespace

void DistinctTensorCounts::reset(std::size_t num_devices) {
  tables_.resize(num_devices);
  for (Table& table : tables_) {
    ++table.gen;
    table.live = 0;
  }
}

void DistinctTensorCounts::clear_device(DeviceId dev) {
  const auto idx = static_cast<std::size_t>(dev);
  if (idx >= tables_.size()) return;
  ++tables_[idx].gen;
  tables_[idx].live = 0;
}

void DistinctTensorCounts::grow(Table& table) {
  const std::vector<TensorId> old_keys = std::move(table.keys);
  const std::vector<std::uint64_t> old_gens = std::move(table.gens);
  table.keys.assign(old_keys.size() * 2, 0);
  table.gens.assign(old_gens.size() * 2, 0);
  const std::size_t mask = table.keys.size() - 1;
  for (std::size_t s = 0; s < old_keys.size(); ++s) {
    if (old_gens[s] != table.gen) continue;
    std::size_t slot = mix_id(old_keys[s]) & mask;
    while (table.gens[slot] == table.gen) slot = (slot + 1) & mask;
    table.keys[slot] = old_keys[s];
    table.gens[slot] = table.gen;
  }
}

bool DistinctTensorCounts::insert(DeviceId dev, TensorId id) {
  MICCO_EXPECTS(dev >= 0 && static_cast<std::size_t>(dev) < tables_.size());
  Table& table = tables_[static_cast<std::size_t>(dev)];
  if (table.keys.empty()) {
    table.keys.assign(kInitialTableSlots, 0);
    table.gens.assign(kInitialTableSlots, 0);
  }
  const std::size_t mask = table.keys.size() - 1;
  std::size_t slot = mix_id(id) & mask;
  while (table.gens[slot] == table.gen) {
    if (table.keys[slot] == id) return false;
    slot = (slot + 1) & mask;
  }
  table.keys[slot] = id;
  table.gens[slot] = table.gen;
  ++table.live;
  // Grow at 3/4 load: the table must never fill completely (linear probing
  // needs a free slot to terminate misses).
  if (static_cast<std::size_t>(table.live) * 4 > table.keys.size() * 3) {
    grow(table);
  }
  return true;
}

std::int64_t DistinctTensorCounts::count(DeviceId dev) const {
  MICCO_EXPECTS(dev >= 0 && static_cast<std::size_t>(dev) < tables_.size());
  return tables_[static_cast<std::size_t>(dev)].live;
}

MiccoScheduler::MiccoScheduler(MiccoSchedulerOptions options)
    : options_(options), bounds_(options.bounds), rng_(options.seed) {}

std::string MiccoScheduler::name() const { return "MICCO"; }

void MiccoScheduler::set_telemetry(obs::Telemetry* telemetry) {
  Scheduler::set_telemetry(telemetry);
  slack_hist_ = telemetry == nullptr
                    ? nullptr
                    : &telemetry->registry.histogram(
                          obs::names::kSchedBoundSlack,
                          {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
}

void MiccoScheduler::begin_vector(const VectorWorkload& vec,
                                  const ClusterView& view) {
  const auto num_devices = static_cast<std::size_t>(view.num_devices());
  counts_.reset(num_devices);
  if (compute_cost_.size() != num_devices) {
    compute_cost_.assign(num_devices, 0.0);
  }
  // Decision scratch sized once per vector; assign() then runs without a
  // single heap allocation in steady state.
  candidate_mask_.assign((num_devices + 63) / 64, 0);
  candidates_.reserve(num_devices);
  best_.reserve(num_devices);
  // balanceNum is the per-device share of *distinct* tensors, matching what
  // mapGPUTensor.at(dev).size() counts. Real correlator stages share hadron
  // nodes across many pairs of one vector; dividing raw slot counts instead
  // would inflate the share and let the data-centric tier concentrate the
  // whole stage onto the few devices holding the hot nodes. The divisor is
  // the number of *surviving* devices: after a failure the share is split
  // over the devices that can still take work.
  unique_scratch_.reset(1);
  std::int64_t unique = 0;
  for (const ContractionTask& task : vec.tasks) {
    if (unique_scratch_.insert(0, task.a.id)) ++unique;
    if (unique_scratch_.insert(0, task.b.id)) ++unique;
  }
  vector_unique_inputs_ = unique;
  balance_num_ = std::max<std::int64_t>(
      1, vector_unique_inputs_ /
             std::max<std::int64_t>(1, view.num_alive_devices()));
}

void MiccoScheduler::on_device_failure(DeviceId dev, const ClusterView& view) {
  // The casualty's per-vector accounting is void (its tensors are gone and
  // its pending pairs will be re-assigned); survivors split the stage.
  const auto idx = static_cast<std::size_t>(dev);
  counts_.clear_device(dev);
  if (idx < compute_cost_.size()) compute_cost_[idx] = 0.0;
  balance_num_ = std::max<std::int64_t>(
      1, vector_unique_inputs_ /
             std::max<std::int64_t>(1, view.num_alive_devices()));
}

std::int64_t MiccoScheduler::assigned_count(DeviceId dev) const {
  return counts_.count(dev);
}

bool MiccoScheduler::available(DeviceId dev, std::size_t bound_index) const {
  return assigned_count(dev) < bounds_[bound_index] + balance_num_;
}

void MiccoScheduler::push_unique(DeviceId dev) {
  const auto idx = static_cast<std::size_t>(dev);
  std::uint64_t& word = candidate_mask_[idx / 64];
  const std::uint64_t bit = 1ULL << (idx % 64);
  if ((word & bit) == 0) {
    word |= bit;
    candidates_.push_back(dev);
  }
}

void MiccoScheduler::gather_candidates(const ContractionTask& task,
                                       const ClusterView& view, int& tier,
                                       bool& fallback) {
  const std::vector<DeviceId>& holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId>& holders_b = view.devices_holding(task.b.id);

  // Step I — data-centric, TwoRepeatedSame tier: devices holding BOTH
  // tensors, gated by reuse bound 0 (Alg. 1, lines 4-7).
  for (const DeviceId dev : holders_a) {
    const bool holds_both =
        std::find(holders_b.begin(), holders_b.end(), dev) != holders_b.end();
    if (holds_both && available(dev, 0)) push_unique(dev);
  }
  if (!candidates_.empty()) {
    tier = 0;
    return;
  }

  // Step II — one-reused tier: devices holding either tensor, gated by
  // reuse bound 1 (Alg. 1, lines 8-14). Entered both for the
  // TwoRepeatedDiff / OneRepeated patterns and when every TwoRepeatedSame
  // device failed its availability test.
  if (!holders_a.empty() || !holders_b.empty()) {
    for (const DeviceId dev : holders_a) {
      if (available(dev, 1)) push_unique(dev);
    }
    for (const DeviceId dev : holders_b) {
      if (available(dev, 1)) push_unique(dev);
    }
    if (!candidates_.empty()) {
      tier = 1;
      return;
    }
  }

  // Step II' — TwoNew tier: any alive device under reuse bound 2 (lines
  // 15-18). Tiers I/II need no filter: residency dies with a device, so
  // holder lists only ever name survivors.
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (view.device_alive(dev) && available(dev, 2)) {
      push_unique(dev);
    }
  }
  if (!candidates_.empty()) {
    tier = 2;
    return;
  }

  // Fallback the pseudocode leaves implicit: when every device exceeds even
  // the TwoNew bound (possible late in a vector with small bounds and an
  // uneven tensor count), consider all survivors so the pair is still placed.
  fallback = true;
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (view.device_alive(dev)) candidates_.push_back(dev);
  }
}

void MiccoScheduler::gather_candidates(const ContractionTask& task,
                                       const ClusterIndex& index, int& tier,
                                       bool& fallback) {
  const ClusterIndex::Residency* res_a = index.find(task.a.id);
  const ClusterIndex::Residency* res_b = index.find(task.b.id);
  const bool a_resident = res_a != nullptr && !res_a->holders.empty();
  const bool b_resident = res_b != nullptr && !res_b->holders.empty();

  // Step I — the holders_a walk keeps the reference path's enumeration
  // order; the membership scan over holders_b collapses to one bit test.
  if (a_resident && b_resident) {
    for (const DeviceId dev : res_a->holders) {
      if (res_b->holds(dev) && available(dev, 0)) push_unique(dev);
    }
  }
  if (!candidates_.empty()) {
    tier = 0;
    return;
  }

  // Step II — holders of either tensor, in holders_a-then-holders_b order
  // exactly as the reference path enumerates them.
  if (a_resident || b_resident) {
    if (a_resident) {
      for (const DeviceId dev : res_a->holders) {
        if (available(dev, 1)) push_unique(dev);
      }
    }
    if (b_resident) {
      for (const DeviceId dev : res_b->holders) {
        if (available(dev, 1)) push_unique(dev);
      }
    }
    if (!candidates_.empty()) {
      tier = 1;
      return;
    }
  }

  // Step II' — alive devices in ascending id order via the alive-mask word
  // scan (bit position == device id, so set-bit order is ascending).
  const std::vector<std::uint64_t>& alive = index.alive_mask();
  for (std::size_t w = 0; w < alive.size(); ++w) {
    std::uint64_t bits = alive[w];
    while (bits != 0) {
      const auto dev =
          static_cast<DeviceId>(w * 64 + static_cast<std::size_t>(
                                             std::countr_zero(bits)));
      bits &= bits - 1;
      if (available(dev, 2)) push_unique(dev);
    }
  }
  if (!candidates_.empty()) {
    tier = 2;
    return;
  }

  // Fallback: all survivors, ascending.
  fallback = true;
  for (std::size_t w = 0; w < alive.size(); ++w) {
    std::uint64_t bits = alive[w];
    while (bits != 0) {
      const auto dev =
          static_cast<DeviceId>(w * 64 + static_cast<std::size_t>(
                                             std::countr_zero(bits)));
      bits &= bits - 1;
      candidates_.push_back(dev);
    }
  }
}

DeviceId MiccoScheduler::assign(const ContractionTask& task,
                                const ClusterView& view) {
  MICCO_EXPECTS_MSG(counts_.size() > 0,
                    "begin_vector must run before assign");
  const ClusterIndex* index =
      sched_incremental() ? view.cluster_index() : nullptr;

  candidates_.clear();
  std::fill(candidate_mask_.begin(), candidate_mask_.end(), 0);
  int tier = -1;        ///< reuse-bound tier that produced the candidates
  bool fallback = false;
  DeviceId chosen = kNoDevice;
  if (index != nullptr) {
    gather_candidates(task, *index, tier, fallback);
    chosen = select_from_candidates(candidates_, task, *index);
  } else {
    gather_candidates(task, view, tier, fallback);
    chosen = select_from_candidates(candidates_, task, view);
  }

  if (telemetry_ != nullptr) {
    // Slack the winner had already consumed beyond its balanced share when
    // it won; how deep into the reuse bounds the schedule actually runs.
    slack_hist_->observe(
        static_cast<double>(assigned_count(chosen) - balance_num_));
    record_decision(task, view, candidates_, chosen, tier,
                    tier >= 0 ? bounds_[static_cast<std::size_t>(tier)] : -1,
                    balance_num_, fallback, last_evict_risk_);
  }

  // Step IV — update mapGPUTensor / mapGPUCom (Alg. 1, line 20).
  counts_.insert(chosen, task.a.id);
  counts_.insert(chosen, task.b.id);
  compute_cost_[static_cast<std::size_t>(chosen)] +=
      static_cast<double>(task.flops());
  return chosen;
}

DeviceId MiccoScheduler::pick_best(const std::vector<DeviceId>& candidates) {
  // Exact ties on both keys break randomly (Alg. 2, lines 9/15).
  best_.clear();
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double primary = cand_primary_[i];
    const double secondary = cand_secondary_[i];
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary)) {
      best_primary = primary;
      best_secondary = secondary;
      best_.clear();
      best_.push_back(candidates[i]);
    } else if (primary == best_primary && secondary == best_secondary) {
      best_.push_back(candidates[i]);
    }
  }

  if (best_.size() == 1) return best_.front();
  return best_[rng_.uniform_below(static_cast<std::uint32_t>(best_.size()))];
}

DeviceId MiccoScheduler::select_from_candidates(
    const std::vector<DeviceId>& candidates, const ContractionTask& task,
    const ClusterView& view) {
  MICCO_EXPECTS(!candidates.empty());

  // Step III — detect oversubscription among the candidates (Alg. 2,
  // lines 3-5): would placing this pair push any candidate past capacity?
  bool evict_risk = false;
  if (options_.eviction_sensitive) {
    for (const DeviceId dev : candidates) {
      const std::uint64_t needed = bytes_needed_on(task, dev, view);
      if (view.memory_used(dev) + needed > view.memory_capacity(dev)) {
        evict_risk = true;
        break;
      }
    }
  }
  last_evict_risk_ = evict_risk;

  // Primary/secondary keys swap between the computation-centric policy
  // (least-loaded device, then most free memory) and the memory-eviction-
  // sensitive policy (most free memory, then least-loaded). Load is the
  // device's accumulated timeline (mapGPUCom): kernels plus the memory
  // operations earlier assignments induced — balancing on raw FLOPs alone
  // would let transfer-heavy devices fall behind and waste the stage
  // barrier.
  const std::size_t n = candidates.size();
  cand_primary_.resize(n);
  cand_secondary_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double busy = view.busy_time(candidates[i]);
    const double used = static_cast<double>(view.memory_used(candidates[i]));
    cand_primary_[i] = evict_risk ? used : busy;
    cand_secondary_[i] = evict_risk ? busy : used;
  }
  return pick_best(candidates);
}

DeviceId MiccoScheduler::select_from_candidates(
    const std::vector<DeviceId>& candidates, const ContractionTask& task,
    const ClusterIndex& index) {
  MICCO_EXPECTS(!candidates.empty());

  const std::uint64_t* mem_used = index.memory_used_data();
  const std::uint64_t* mem_capacity = index.memory_capacity_data();
  const double* busy = index.busy_data();

  bool evict_risk = false;
  if (options_.eviction_sensitive) {
    for (const DeviceId dev : candidates) {
      const std::uint64_t needed = bytes_needed_on(task, dev, index);
      const auto d = static_cast<std::size_t>(dev);
      if (mem_used[d] + needed > mem_capacity[d]) {
        evict_risk = true;
        break;
      }
    }
  }
  last_evict_risk_ = evict_risk;

  // SoA gather from the flat device mirrors — same doubles the view path
  // reads through virtual calls, so comparisons (and tie sets) agree
  // bit-for-bit.
  const std::size_t n = candidates.size();
  cand_primary_.resize(n);
  cand_secondary_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto d = static_cast<std::size_t>(candidates[i]);
    const double load = busy[d];
    const double used = static_cast<double>(mem_used[d]);
    cand_primary_[i] = evict_risk ? used : load;
    cand_secondary_[i] = evict_risk ? load : used;
  }
  return pick_best(candidates);
}

}  // namespace micco
