// Comparator schedulers.
//
// GrouteScheduler reproduces the assignment rule the paper attributes to
// Groute and similar multi-GPU frameworks: "assigns jobs and associated data
// on the earliest available device to achieve good load balance" — i.e. pick
// the device whose timeline frees up first, blind to data residency.
//
// The remaining schedulers are the two degenerate corners of Fig. 2 used as
// ablations: pure data reuse (case 1) and pure load balance (case 2), plus a
// round-robin strawman.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "sched/scheduler.hpp"

namespace micco {

/// Earliest-available-device assignment (load balance only).
class GrouteScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Groute"; }
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;
};

/// Cyclic assignment, ignoring both load and residency.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "RoundRobin"; }
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;

 private:
  DeviceId next_ = 0;
};

/// Case 1 of Fig. 2: always chase data reuse — place the pair on a device
/// already holding its tensors no matter how unbalanced that gets; fresh
/// pairs go wherever the most recent placement went (maximising future
/// locality, minimising balance).
class DataReuseOnlyScheduler final : public Scheduler {
 public:
  std::string name() const override { return "DataReuseOnly"; }
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;

 private:
  DeviceId last_ = 0;
};

/// StarPU-style deque-model-data-aware (dmda) assignment: estimate each
/// device's completion time for the incoming task — current availability
/// plus the transfers its absent operands would need plus the kernel — and
/// pick the minimum. This is the strongest of the general data-aware
/// schedulers the related-work section discusses (Augonnet et al.): it sees
/// locality through the cost model but knows nothing about reuse bounds or
/// eviction pressure.
class DmdaScheduler final : public Scheduler {
 public:
  explicit DmdaScheduler(CostModelConfig cost = {}) : cost_(cost) {}

  std::string name() const override { return "dmda"; }
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;

 private:
  CostModel cost_;
};

/// Case 2 of Fig. 2: perfect pair-count balance, blind to residency (unlike
/// Groute it counts pairs instead of timeline time, so it stays exactly
/// balanced even when kernels vary).
class LoadBalanceOnlyScheduler final : public Scheduler {
 public:
  std::string name() const override { return "LoadBalanceOnly"; }
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;

 private:
  std::vector<std::int64_t> pair_counts_;
};

}  // namespace micco
