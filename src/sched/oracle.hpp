// Offline oracle search.
//
// For small vectors, exhaustively (or beam-limited) searches the device-
// assignment space of a whole vector against a simulator clone, returning
// the assignment with the smallest end-of-vector makespan. This is the
// "exhaustive search ... easy to be proved an NP problem" the paper rules
// out for production (Section III-B.1) — here it serves as a measuring
// stick: how close does MICCO's greedy heuristic get to the per-vector
// optimum?
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/cluster.hpp"
#include "workload/task.hpp"

namespace micco {

struct OracleOptions {
  /// Exact exhaustive search up to this many tasks per vector
  /// (devices^tasks leaves); larger vectors fall back to beam search.
  std::size_t exhaustive_task_limit = 8;
  /// Beam width for larger vectors (per task step, the best `beam` partial
  /// assignments by projected makespan survive).
  std::size_t beam_width = 64;
};

/// Result of one oracle vector search.
struct OracleAssignment {
  std::vector<DeviceId> devices;  ///< one per task, in vector order
  double makespan_s = 0.0;        ///< end-of-vector makespan of the best plan
  std::uint64_t evaluated = 0;    ///< simulator evaluations performed
  bool exhaustive = false;        ///< true when the search was exact
};

/// Searches assignments of `vec` starting from the cluster state captured in
/// `base` (the search clones it per candidate; `base` is not modified).
OracleAssignment oracle_search(const VectorWorkload& vec,
                               const ClusterSimulator& base,
                               const OracleOptions& options = {});

/// Runs a whole stream with per-vector oracle search, committing each
/// vector's best assignment before moving on. Returns the end metrics.
/// Exponential in vector size unless beam-limited - keep workloads small.
ExecutionMetrics run_oracle(const WorkloadStream& stream,
                            const ClusterConfig& cluster,
                            const OracleOptions& options = {});

}  // namespace micco
