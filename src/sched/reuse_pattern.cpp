#include "sched/reuse_pattern.hpp"

#include <algorithm>

namespace micco {

const char* to_string(LocalReusePattern p) {
  switch (p) {
    case LocalReusePattern::kTwoRepeatedSame: return "TwoRepeatedSame";
    case LocalReusePattern::kTwoRepeatedDiff: return "TwoRepeatedDiff";
    case LocalReusePattern::kOneRepeated: return "OneRepeated";
    case LocalReusePattern::kTwoNew: return "TwoNew";
  }
  return "?";
}

LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterView& view) {
  const std::vector<DeviceId>& holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId>& holders_b = view.devices_holding(task.b.id);

  if (holders_a.empty() && holders_b.empty()) {
    return LocalReusePattern::kTwoNew;
  }
  if (holders_a.empty() || holders_b.empty()) {
    return LocalReusePattern::kOneRepeated;
  }
  const bool overlap = std::any_of(
      holders_a.begin(), holders_a.end(), [&](DeviceId dev) {
        return std::find(holders_b.begin(), holders_b.end(), dev) !=
               holders_b.end();
      });
  return overlap ? LocalReusePattern::kTwoRepeatedSame
                 : LocalReusePattern::kTwoRepeatedDiff;
}

const char* to_string(MappingClass m) {
  switch (m) {
    case MappingClass::kBothReused: return "BothReused";
    case MappingClass::kFirstReused: return "FirstReused";
    case MappingClass::kSecondReused: return "SecondReused";
    case MappingClass::kNoneReused: return "NoneReused";
  }
  return "?";
}

MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view) {
  const bool a_here = view.resident_on(dev, task.a.id);
  const bool b_here = view.resident_on(dev, task.b.id);
  if (a_here && b_here) return MappingClass::kBothReused;
  if (a_here) return MappingClass::kFirstReused;
  if (b_here) return MappingClass::kSecondReused;
  return MappingClass::kNoneReused;
}

int fetches_for(MappingClass m) {
  switch (m) {
    case MappingClass::kBothReused: return 0;
    case MappingClass::kFirstReused:
    case MappingClass::kSecondReused: return 1;
    case MappingClass::kNoneReused: return 2;
  }
  return 2;
}

std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view) {
  std::uint64_t bytes = task.out.bytes();
  if (!view.resident_on(dev, task.a.id)) bytes += task.a.bytes();
  const bool same_operand = task.a.id == task.b.id;
  if (!same_operand && !view.resident_on(dev, task.b.id)) {
    bytes += task.b.bytes();
  }
  return bytes;
}

}  // namespace micco
