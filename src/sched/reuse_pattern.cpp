#include "sched/reuse_pattern.hpp"

#include <algorithm>

namespace micco {

const char* to_string(LocalReusePattern p) {
  switch (p) {
    case LocalReusePattern::kTwoRepeatedSame: return "TwoRepeatedSame";
    case LocalReusePattern::kTwoRepeatedDiff: return "TwoRepeatedDiff";
    case LocalReusePattern::kOneRepeated: return "OneRepeated";
    case LocalReusePattern::kTwoNew: return "TwoNew";
  }
  return "?";
}

LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterView& view) {
  const std::vector<DeviceId>& holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId>& holders_b = view.devices_holding(task.b.id);

  if (holders_a.empty() && holders_b.empty()) {
    return LocalReusePattern::kTwoNew;
  }
  if (holders_a.empty() || holders_b.empty()) {
    return LocalReusePattern::kOneRepeated;
  }
  const bool overlap = std::any_of(
      holders_a.begin(), holders_a.end(), [&](DeviceId dev) {
        return std::find(holders_b.begin(), holders_b.end(), dev) !=
               holders_b.end();
      });
  return overlap ? LocalReusePattern::kTwoRepeatedSame
                 : LocalReusePattern::kTwoRepeatedDiff;
}

namespace {

/// True when the two tensors share at least one holder device (bitmask
/// intersection over the inline word and any spill words).
bool masks_overlap(const ClusterIndex::Residency& a,
                   const ClusterIndex::Residency& b) {
  if ((a.mask0 & b.mask0) != 0) return true;
  const std::size_t words = std::min(a.mask_ext.size(), b.mask_ext.size());
  for (std::size_t w = 0; w < words; ++w) {
    if ((a.mask_ext[w] & b.mask_ext[w]) != 0) return true;
  }
  return false;
}

}  // namespace

LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterIndex& index) {
  const ClusterIndex::Residency* res_a = index.find(task.a.id);
  const ClusterIndex::Residency* res_b = index.find(task.b.id);
  const bool a_empty = res_a == nullptr || res_a->holders.empty();
  const bool b_empty = res_b == nullptr || res_b->holders.empty();
  if (a_empty && b_empty) return LocalReusePattern::kTwoNew;
  if (a_empty || b_empty) return LocalReusePattern::kOneRepeated;
  return masks_overlap(*res_a, *res_b) ? LocalReusePattern::kTwoRepeatedSame
                                       : LocalReusePattern::kTwoRepeatedDiff;
}

LocalReusePattern PatternCache::classify(const ContractionTask& task,
                                         const ClusterIndex& index) {
  const TensorId a = task.a.id;
  const TensorId b = task.b.id;
  const std::uint64_t epoch_a = index.tensor_epoch(a);
  const std::uint64_t epoch_b = index.tensor_epoch(b);
  // splitmix-style mix of the pair identity; asymmetric in (a, b) because
  // classification is order-sensitive only in naming, not result — but two
  // distinct pairs must land on distinct keys with high probability.
  std::uint64_t key = a * 0x9e3779b97f4a7c15ULL;
  key ^= (b + 0x517cc1b727220a95ULL) + (key << 6) + (key >> 2);
  Entry& entry = entries_[key];
  if (entry.a == a && entry.b == b && entry.epoch_a == epoch_a &&
      entry.epoch_b == epoch_b && entry.a != kInvalidTensor) {
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->add();
    return entry.pattern;
  }
  ++misses_;
  if (misses_counter_ != nullptr) misses_counter_->add();
  entry.a = a;
  entry.b = b;
  entry.epoch_a = epoch_a;
  entry.epoch_b = epoch_b;
  entry.pattern = classify_pair(task, index);
  return entry.pattern;
}

const char* to_string(MappingClass m) {
  switch (m) {
    case MappingClass::kBothReused: return "BothReused";
    case MappingClass::kFirstReused: return "FirstReused";
    case MappingClass::kSecondReused: return "SecondReused";
    case MappingClass::kNoneReused: return "NoneReused";
  }
  return "?";
}

MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view) {
  const bool a_here = view.resident_on(dev, task.a.id);
  const bool b_here = view.resident_on(dev, task.b.id);
  if (a_here && b_here) return MappingClass::kBothReused;
  if (a_here) return MappingClass::kFirstReused;
  if (b_here) return MappingClass::kSecondReused;
  return MappingClass::kNoneReused;
}

MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterIndex& index) {
  const bool a_here = index.holds(dev, task.a.id);
  const bool b_here = index.holds(dev, task.b.id);
  if (a_here && b_here) return MappingClass::kBothReused;
  if (a_here) return MappingClass::kFirstReused;
  if (b_here) return MappingClass::kSecondReused;
  return MappingClass::kNoneReused;
}

int fetches_for(MappingClass m) {
  switch (m) {
    case MappingClass::kBothReused: return 0;
    case MappingClass::kFirstReused:
    case MappingClass::kSecondReused: return 1;
    case MappingClass::kNoneReused: return 2;
  }
  return 2;
}

std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view) {
  std::uint64_t bytes = task.out.bytes();
  if (!view.resident_on(dev, task.a.id)) bytes += task.a.bytes();
  const bool same_operand = task.a.id == task.b.id;
  if (!same_operand && !view.resident_on(dev, task.b.id)) {
    bytes += task.b.bytes();
  }
  return bytes;
}

std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterIndex& index) {
  std::uint64_t bytes = task.out.bytes();
  if (!index.holds(dev, task.a.id)) bytes += task.a.bytes();
  const bool same_operand = task.a.id == task.b.id;
  if (!same_operand && !index.holds(dev, task.b.id)) {
    bytes += task.b.bytes();
  }
  return bytes;
}

}  // namespace micco
