#include "sched/baselines.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace micco {

// ---------------------------------------------------------------- Groute --

void GrouteScheduler::begin_vector(const VectorWorkload&, const ClusterView&) {
}

DeviceId GrouteScheduler::assign(const ContractionTask&,
                                 const ClusterView& view) {
  DeviceId best = 0;
  double best_time = std::numeric_limits<double>::infinity();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    const double t = view.busy_time(dev);
    if (t < best_time) {
      best_time = t;
      best = dev;
    }
  }
  return best;
}

// ------------------------------------------------------------ RoundRobin --

void RoundRobinScheduler::begin_vector(const VectorWorkload&,
                                       const ClusterView&) {}

DeviceId RoundRobinScheduler::assign(const ContractionTask&,
                                     const ClusterView& view) {
  const DeviceId dev = next_;
  next_ = (next_ + 1) % view.num_devices();
  return dev;
}

// --------------------------------------------------------- DataReuseOnly --

void DataReuseOnlyScheduler::begin_vector(const VectorWorkload&,
                                          const ClusterView&) {}

DeviceId DataReuseOnlyScheduler::assign(const ContractionTask& task,
                                        const ClusterView& view) {
  const std::vector<DeviceId> holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId> holders_b = view.devices_holding(task.b.id);

  // Prefer a device with both operands, then one with either.
  for (const DeviceId dev : holders_a) {
    if (std::find(holders_b.begin(), holders_b.end(), dev) !=
        holders_b.end()) {
      last_ = dev;
      return dev;
    }
  }
  if (!holders_a.empty()) {
    last_ = holders_a.front();
    return last_;
  }
  if (!holders_b.empty()) {
    last_ = holders_b.front();
    return last_;
  }
  // All-new pair: stick with the previous device so future repeats of these
  // tensors keep hitting one memory (maximal reuse, no balance).
  return last_;
}

// ---------------------------------------------------------------- dmda ---

void DmdaScheduler::begin_vector(const VectorWorkload&, const ClusterView&) {}

DeviceId DmdaScheduler::assign(const ContractionTask& task,
                               const ClusterView& view) {
  DeviceId best = 0;
  double best_finish = std::numeric_limits<double>::infinity();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    double transfer = 0.0;
    // Absent operands would stream from the host; resident ones are free.
    for (const TensorDesc* operand : {&task.a, &task.b}) {
      if (operand == &task.b && task.a.id == task.b.id) break;
      if (!view.resident_on(dev, operand->id)) {
        transfer += cost_.alloc_time() + cost_.h2d_time(operand->bytes());
      }
    }
    transfer += cost_.alloc_time();  // output frame
    const double finish =
        view.busy_time(dev) + transfer + cost_.kernel_time(task);
    if (finish < best_finish) {
      best_finish = finish;
      best = dev;
    }
  }
  return best;
}

// ------------------------------------------------------- LoadBalanceOnly --

void LoadBalanceOnlyScheduler::begin_vector(const VectorWorkload&,
                                            const ClusterView& view) {
  pair_counts_.assign(static_cast<std::size_t>(view.num_devices()), 0);
}

DeviceId LoadBalanceOnlyScheduler::assign(const ContractionTask&,
                                          const ClusterView& view) {
  MICCO_EXPECTS(!pair_counts_.empty());
  DeviceId best = 0;
  std::int64_t best_count = std::numeric_limits<std::int64_t>::max();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    const std::int64_t c = pair_counts_[static_cast<std::size_t>(dev)];
    if (c < best_count) {
      best_count = c;
      best = dev;
    }
  }
  ++pair_counts_[static_cast<std::size_t>(best)];
  return best;
}

}  // namespace micco
