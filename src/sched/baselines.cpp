#include "sched/baselines.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace micco {

// Baselines with no candidate filtering log every *alive* device as the
// candidate set (failed devices never receive work); the shared
// alive_candidates()/single_candidate() scratch keeps those logs
// allocation-free per decision.

// ---------------------------------------------------------------- Groute --

void GrouteScheduler::begin_vector(const VectorWorkload&, const ClusterView&) {
}

DeviceId GrouteScheduler::assign(const ContractionTask& task,
                                 const ClusterView& view) {
  DeviceId best = kNoDevice;
  double best_time = std::numeric_limits<double>::infinity();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (!view.device_alive(dev)) continue;
    const double t = view.busy_time(dev);
    if (t < best_time) {
      best_time = t;
      best = dev;
    }
  }
  MICCO_EXPECTS_MSG(best != kNoDevice, "no alive device to assign to");
  if (telemetry_ != nullptr) {
    record_decision(task, view, alive_candidates(view), best);
  }
  return best;
}

// ------------------------------------------------------------ RoundRobin --

void RoundRobinScheduler::begin_vector(const VectorWorkload&,
                                       const ClusterView&) {}

DeviceId RoundRobinScheduler::assign(const ContractionTask& task,
                                     const ClusterView& view) {
  const int n = view.num_devices();
  // Skip over failed devices; the cycle continues over the survivors.
  DeviceId dev = next_;
  for (int hops = 0; hops < n && !view.device_alive(dev); ++hops) {
    dev = (dev + 1) % n;
  }
  MICCO_EXPECTS_MSG(view.device_alive(dev), "no alive device to assign to");
  next_ = (dev + 1) % n;
  if (telemetry_ != nullptr) {
    record_decision(task, view, single_candidate(dev), dev);
  }
  return dev;
}

// --------------------------------------------------------- DataReuseOnly --

void DataReuseOnlyScheduler::begin_vector(const VectorWorkload&,
                                          const ClusterView&) {}

DeviceId DataReuseOnlyScheduler::assign(const ContractionTask& task,
                                        const ClusterView& view) {
  const std::vector<DeviceId>& holders_a = view.devices_holding(task.a.id);
  const std::vector<DeviceId>& holders_b = view.devices_holding(task.b.id);

  const auto chose = [&](DeviceId dev) {
    last_ = dev;
    if (telemetry_ != nullptr) {
      record_decision(task, view, single_candidate(dev), dev);
    }
    return dev;
  };

  // Prefer a device with both operands, then one with either.
  for (const DeviceId dev : holders_a) {
    if (std::find(holders_b.begin(), holders_b.end(), dev) !=
        holders_b.end()) {
      return chose(dev);
    }
  }
  if (!holders_a.empty()) return chose(holders_a.front());
  if (!holders_b.empty()) return chose(holders_b.front());
  // All-new pair: stick with the previous device so future repeats of these
  // tensors keep hitting one memory (maximal reuse, no balance). If that
  // device died, roll forward to the next survivor.
  const int n = view.num_devices();
  for (int hops = 0; hops < n && !view.device_alive(last_); ++hops) {
    last_ = (last_ + 1) % n;
  }
  MICCO_EXPECTS_MSG(view.device_alive(last_), "no alive device to assign to");
  return chose(last_);
}

// ---------------------------------------------------------------- dmda ---

void DmdaScheduler::begin_vector(const VectorWorkload&, const ClusterView&) {}

DeviceId DmdaScheduler::assign(const ContractionTask& task,
                               const ClusterView& view) {
  DeviceId best = kNoDevice;
  double best_finish = std::numeric_limits<double>::infinity();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (!view.device_alive(dev)) continue;
    double transfer = 0.0;
    // Absent operands would stream from the host; resident ones are free.
    for (const TensorDesc* operand : {&task.a, &task.b}) {
      if (operand == &task.b && task.a.id == task.b.id) break;
      if (!view.resident_on(dev, operand->id)) {
        transfer += cost_.alloc_time() + cost_.h2d_time(operand->bytes());
      }
    }
    transfer += cost_.alloc_time();  // output frame
    const double finish =
        view.busy_time(dev) + transfer + cost_.kernel_time(task);
    if (finish < best_finish) {
      best_finish = finish;
      best = dev;
    }
  }
  MICCO_EXPECTS_MSG(best != kNoDevice, "no alive device to assign to");
  if (telemetry_ != nullptr) {
    record_decision(task, view, alive_candidates(view), best);
  }
  return best;
}

// ------------------------------------------------------- LoadBalanceOnly --

void LoadBalanceOnlyScheduler::begin_vector(const VectorWorkload&,
                                            const ClusterView& view) {
  pair_counts_.assign(static_cast<std::size_t>(view.num_devices()), 0);
}

DeviceId LoadBalanceOnlyScheduler::assign(const ContractionTask& task,
                                          const ClusterView& view) {
  MICCO_EXPECTS(!pair_counts_.empty());
  DeviceId best = kNoDevice;
  std::int64_t best_count = std::numeric_limits<std::int64_t>::max();
  for (DeviceId dev = 0; dev < view.num_devices(); ++dev) {
    if (!view.device_alive(dev)) continue;
    const std::int64_t c = pair_counts_[static_cast<std::size_t>(dev)];
    if (c < best_count) {
      best_count = c;
      best = dev;
    }
  }
  MICCO_EXPECTS_MSG(best != kNoDevice, "no alive device to assign to");
  ++pair_counts_[static_cast<std::size_t>(best)];
  if (telemetry_ != nullptr) {
    record_decision(task, view, alive_candidates(view), best);
  }
  return best;
}

}  // namespace micco
