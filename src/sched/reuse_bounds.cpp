#include "sched/reuse_bounds.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace micco {

std::string ReuseBounds::to_string() const {
  std::ostringstream os;
  os << "(" << values[0] << "," << values[1] << "," << values[2] << ")";
  return os.str();
}

const std::array<ReuseBounds, 13>& fig8_bound_sweep() {
  // The thirteen triples measured in Fig. 8: the all-zero baseline plus the
  // axis-aligned and diagonal combinations of {0,1,2}.
  static const std::array<ReuseBounds, 13> kSweep{{
      {0, 0, 0},
      {1, 0, 0},
      {2, 0, 0},
      {0, 1, 0},
      {0, 2, 0},
      {0, 0, 1},
      {0, 0, 2},
      {1, 1, 0},
      {0, 1, 1},
      {1, 0, 1},
      {1, 1, 1},
      {2, 2, 0},
      {0, 2, 2},
  }};
  return kSweep;
}

std::vector<ReuseBounds> bound_grid(std::int64_t max_component) {
  MICCO_EXPECTS(max_component >= 0);
  std::vector<ReuseBounds> grid;
  grid.reserve(static_cast<std::size_t>((max_component + 1) *
                                        (max_component + 1) *
                                        (max_component + 1)));
  for (std::int64_t b0 = 0; b0 <= max_component; ++b0) {
    for (std::int64_t b1 = 0; b1 <= max_component; ++b1) {
      for (std::int64_t b2 = 0; b2 <= max_component; ++b2) {
        grid.push_back(ReuseBounds{b0, b1, b2});
      }
    }
  }
  return grid;
}

}  // namespace micco
