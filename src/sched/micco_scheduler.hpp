// The MICCO heuristic scheduler (Section IV-B, Algorithms 1 and 2).
//
// Toggles among three policies per incoming tensor pair:
//   * data-centric      — restrict candidates to devices already holding the
//                         pair's tensors (tiered by local reuse pattern,
//                         gated by the per-tier reuse bounds);
//   * computation-centric — among candidates, pick the least-loaded device;
//   * memory-eviction-sensitive — if any candidate would oversubscribe,
//                         pick the device with the most free memory instead.
//
// Two equivalent hot paths implement the tier walk and Alg. 2 selection
// (DESIGN.md §9): the incremental path reads the cluster's delta-maintained
// ClusterIndex (holder bitmasks, alive-mask word scan, SoA key arrays over
// flat busy/memory mirrors), the reference path recomputes everything from
// ClusterView queries. Both enumerate candidates in the same order, compare
// the same doubles and draw the same tie-break randomness, so decision logs
// are byte-identical; sched_incremental() picks the path at run time (the
// --sched-incremental=off escape hatch, kept for one release).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/cluster_index.hpp"
#include "sched/reuse_bounds.hpp"
#include "sched/reuse_pattern.hpp"
#include "sched/scheduler.hpp"

namespace micco {

/// Distinct-tensor counter per device for one vector (the paper's
/// mapGPUTensor.at(dev).size(), the quantity the reuse-bound availability
/// test compares against balanceNum + bound).
///
/// Open-addressing tables with generation-stamped slots: begin_vector bumps
/// every device's generation (an O(devices) reset instead of freeing every
/// node of an unordered_set), a device failure bumps only the casualty's.
/// A slot whose stamp differs from the table's current generation is free.
/// Both scheduler paths share this accounting — only the per-device counts
/// are observable, so the container swap cannot perturb decisions.
class DistinctTensorCounts {
 public:
  /// Starts a fresh vector over `num_devices` tables (capacity retained).
  void reset(std::size_t num_devices);

  /// Voids one device's counts mid-vector (device-failure degradation).
  void clear_device(DeviceId dev);

  /// Records `id` against `dev`; false when it was already counted.
  bool insert(DeviceId dev, TensorId id);

  std::int64_t count(DeviceId dev) const;

  std::size_t size() const { return tables_.size(); }

 private:
  struct Table {
    std::vector<TensorId> keys;
    std::vector<std::uint64_t> gens;  ///< slot live iff gens[s] == gen
    std::uint64_t gen = 0;            ///< 0 never marks a live slot
    std::int64_t live = 0;
  };

  void grow(Table& table);

  std::vector<Table> tables_;
};

struct MiccoSchedulerOptions {
  /// Initial reuse bounds; the driver typically overrides them per vector
  /// with the regression model's prediction (MICCO-optimal) or leaves the
  /// zero triple in place (MICCO-naive).
  ReuseBounds bounds = ReuseBounds::naive();

  /// Disables the memory-eviction-sensitive policy (ablation for Fig. 11).
  bool eviction_sensitive = true;

  /// Tie-break RNG seed (Alg. 2 breaks exact ties randomly).
  std::uint64_t seed = 7;
};

class MiccoScheduler final : public Scheduler {
 public:
  explicit MiccoScheduler(MiccoSchedulerOptions options = {});

  std::string name() const override;
  void begin_vector(const VectorWorkload& vec,
                    const ClusterView& view) override;
  DeviceId assign(const ContractionTask& task,
                  const ClusterView& view) override;
  void set_telemetry(obs::Telemetry* telemetry) override;

  /// Degradation path: drops the casualty's per-vector accounting and
  /// recomputes balanceNum over the surviving devices, so the remainder of
  /// the vector rebalances instead of honouring a stale per-device share.
  void on_device_failure(DeviceId dev, const ClusterView& view) override;

  /// Installs the reuse bounds used from the next assignment on; the online
  /// pipeline calls this right after the regression model's inference (step
  /// 2 of Fig. 6).
  void set_reuse_bounds(ReuseBounds bounds) { bounds_ = bounds; }
  ReuseBounds reuse_bounds() const { return bounds_; }

  /// Distinct input tensors assigned to `dev` within the current vector
  /// (the paper's mapGPUTensor.at(dev).size()); exposed for tests.
  std::int64_t assigned_count(DeviceId dev) const;

  std::int64_t balance_num() const { return balance_num_; }

 private:
  /// Device passes the availability test for tier `bound_index`.
  bool available(DeviceId dev, std::size_t bound_index) const;

  /// Alg. 1's tier walk: fills candidates_ and reports the admitting tier
  /// (-1 with fallback when every tier ran dry). The two overloads must
  /// enumerate identical candidates in identical order.
  void gather_candidates(const ContractionTask& task, const ClusterView& view,
                         int& tier, bool& fallback);
  void gather_candidates(const ContractionTask& task,
                         const ClusterIndex& index, int& tier, bool& fallback);

  /// Alg. 2: selects from the candidate queue, switching between the
  /// computation-centric and memory-eviction-sensitive policies. The index
  /// overload gathers the primary/secondary keys into SoA scratch arrays
  /// first and runs the argmin over flat doubles.
  DeviceId select_from_candidates(const std::vector<DeviceId>& candidates,
                                  const ContractionTask& task,
                                  const ClusterView& view);
  DeviceId select_from_candidates(const std::vector<DeviceId>& candidates,
                                  const ContractionTask& task,
                                  const ClusterIndex& index);

  /// Shared argmin tail of both select overloads: scans the key arrays,
  /// collects exact ties and applies the random tie-break.
  DeviceId pick_best(const std::vector<DeviceId>& candidates);

  MiccoSchedulerOptions options_;
  ReuseBounds bounds_;
  Pcg32 rng_;

  /// Whether the last select_from_candidates ran the memory-eviction-
  /// sensitive policy (surfaced into the decision log).
  bool last_evict_risk_ = false;
  /// Bound-slack utilization histogram (resolved at set_telemetry).
  obs::Histogram* slack_hist_ = nullptr;

  std::int64_t balance_num_ = 1;
  /// Distinct inputs of the current vector (balanceNum numerator), kept so
  /// on_device_failure can recompute the share over the survivors.
  std::int64_t vector_unique_inputs_ = 0;
  /// Per-device distinct input tensors assigned in the current vector.
  DistinctTensorCounts counts_;
  /// Scratch for begin_vector's distinct-input count (single-table reuse of
  /// the same flat-set machinery; replaces an unordered_set built per call).
  DistinctTensorCounts unique_scratch_;
  /// Per-device cumulative assigned kernel FLOPs (mapGPUCom).
  std::vector<double> compute_cost_;

  // -- Per-decision scratch (reused, never reallocated in steady state) ---
  /// Candidate queue of the decision in flight.
  std::vector<DeviceId> candidates_;
  /// Membership bitmask over device ids backing push_unique: one word for
  /// the common numGPU <= 64 case, more for larger clusters.
  std::vector<std::uint64_t> candidate_mask_;
  /// SoA selection keys, parallel to candidates_ (index path).
  std::vector<double> cand_primary_;
  std::vector<double> cand_secondary_;
  /// Tie set of select_from_candidates.
  std::vector<DeviceId> best_;

  /// Appends dev to candidates_ unless already present: O(1) via the
  /// membership bitmask (the old linear scan made candidate enumeration
  /// quadratic in the holder count).
  void push_unique(DeviceId dev);
};

}  // namespace micco
