// Local reuse patterns (Section III-B.1, Fig. 4).
//
// Every incoming tensor pair is classified against current device residency
// into one of four patterns; together with the chosen device this fixes the
// memory-operation cost of the assignment (the seven canonical mappings).
//
// Each query exists in two forms: the original recompute-from-view form, and
// an overload over the incremental ClusterIndex that answers the same
// question from bitmask intersections instead of holder-list scans. The two
// forms return identical results on identical state — the byte-identity
// tests hold the schedulers to that. PatternCache sits on top of the index
// form, memoizing classifications per (pair, residency epochs).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gpusim/cluster.hpp"
#include "workload/task.hpp"

namespace micco {

enum class LocalReusePattern {
  kTwoRepeatedSame,  ///< both tensors resident on at least one common device
  kTwoRepeatedDiff,  ///< both resident, but on disjoint device sets
  kOneRepeated,      ///< exactly one tensor resident somewhere
  kTwoNew,           ///< neither tensor resident on any device
};

const char* to_string(LocalReusePattern p);

/// Classifies a pair against the cluster's residency state.
LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterView& view);

/// Index form: emptiness from the holder lists, overlap from the bitmask
/// intersection. Identical result to the view form.
LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterIndex& index);

/// Cost class of assigning `task` to `dev` — the collapse of Fig. 4's seven
/// mappings by their memory-operation cost: mapping (1) reuses both
/// operands, (2)/(3) reuse one, (4)-(7) reuse none.
enum class MappingClass {
  kBothReused = 1,    ///< mapping (1): no fetches
  kFirstReused = 2,   ///< mapping (2): fetch operand B only
  kSecondReused = 3,  ///< mapping (3): fetch operand A only
  kNoneReused = 4,    ///< mappings (4)-(7): fetch both operands
};

const char* to_string(MappingClass m);

MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view);
MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterIndex& index);

/// Number of operand fetches (memory allocation + communication pairs) the
/// mapping incurs, i.e. the yellow-bar cost of Fig. 4.
int fetches_for(MappingClass m);

/// Bytes that must move onto `dev` to run `task` there (absent operands plus
/// the output allocation). The eviction-sensitive policy compares this
/// against the device's headroom.
std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view);
std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterIndex& index);

/// Memoized pair classification keyed on (tensor pair, residency epochs).
///
/// A cached entry is valid exactly while *both* tensors' residency epochs
/// are unchanged — any eviction, fetch, discard or device failure touching
/// either tensor bumps its epoch in the index, and the next classify() for
/// the pair recomputes (counted as a miss). Real correlator stages re-ask
/// about the same hot hadron nodes many times per epoch, which is the hit
/// rate this converts from repeated holder-list scans into one table probe.
///
/// The table never evicts within a run (pair universes are bounded by the
/// stream) and collisions on the mixed key are disambiguated by the stored
/// ids — a losing pair simply overwrites the slot, trading a recompute, not
/// correctness.
class PatternCache {
 public:
  LocalReusePattern classify(const ContractionTask& task,
                             const ClusterIndex& index);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Optional registry counters mirrored on every classify (resolved by the
  /// owning scheduler at set_telemetry; nullptr detaches).
  void set_counters(obs::Counter* hits, obs::Counter* misses) {
    hits_counter_ = hits;
    misses_counter_ = misses;
  }

  void clear() {
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Entry {
    TensorId a = kInvalidTensor;
    TensorId b = kInvalidTensor;
    std::uint64_t epoch_a = 0;
    std::uint64_t epoch_b = 0;
    LocalReusePattern pattern = LocalReusePattern::kTwoNew;
  };

  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
};

}  // namespace micco
