// Local reuse patterns (Section III-B.1, Fig. 4).
//
// Every incoming tensor pair is classified against current device residency
// into one of four patterns; together with the chosen device this fixes the
// memory-operation cost of the assignment (the seven canonical mappings).
#pragma once

#include <string>

#include "gpusim/cluster.hpp"
#include "workload/task.hpp"

namespace micco {

enum class LocalReusePattern {
  kTwoRepeatedSame,  ///< both tensors resident on at least one common device
  kTwoRepeatedDiff,  ///< both resident, but on disjoint device sets
  kOneRepeated,      ///< exactly one tensor resident somewhere
  kTwoNew,           ///< neither tensor resident on any device
};

const char* to_string(LocalReusePattern p);

/// Classifies a pair against the cluster's residency state.
LocalReusePattern classify_pair(const ContractionTask& task,
                                const ClusterView& view);

/// Cost class of assigning `task` to `dev` — the collapse of Fig. 4's seven
/// mappings by their memory-operation cost: mapping (1) reuses both
/// operands, (2)/(3) reuse one, (4)-(7) reuse none.
enum class MappingClass {
  kBothReused = 1,    ///< mapping (1): no fetches
  kFirstReused = 2,   ///< mapping (2): fetch operand B only
  kSecondReused = 3,  ///< mapping (3): fetch operand A only
  kNoneReused = 4,    ///< mappings (4)-(7): fetch both operands
};

const char* to_string(MappingClass m);

MappingClass classify_mapping(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view);

/// Number of operand fetches (memory allocation + communication pairs) the
/// mapping incurs, i.e. the yellow-bar cost of Fig. 4.
int fetches_for(MappingClass m);

/// Bytes that must move onto `dev` to run `task` there (absent operands plus
/// the output allocation). The eviction-sensitive policy compares this
/// against the device's headroom.
std::uint64_t bytes_needed_on(const ContractionTask& task, DeviceId dev,
                              const ClusterView& view);

}  // namespace micco
