// Scheduler interface.
//
// Scheduling is online: the driver announces each incoming vector, then asks
// for a device assignment pair by pair, executing each assignment on the
// simulator (or real backend) before requesting the next. Schedulers
// therefore always see residency state that reflects every earlier decision,
// including evictions — exactly the dynamic setting the paper targets
// ("(partial) contraction graphs are generated dynamically").
#pragma once

#include <memory>
#include <string>

#include "gpusim/cluster.hpp"
#include "obs/telemetry.hpp"
#include "sched/reuse_pattern.hpp"
#include "workload/task.hpp"

namespace micco {

/// Process-global switch for the incremental scheduler core. On (the
/// default), schedulers consume the cluster's delta-maintained ClusterIndex
/// (flat residency/load/headroom arrays, epoch-keyed pattern cache); off is
/// the recompute-from-view escape hatch kept for one release, byte-identical
/// in every decision log. Set at configuration time (CLI parse), never
/// mid-run.
void set_sched_incremental(bool on);
bool sched_incremental();

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable name for bench tables ("Groute", "MICCO-optimal", ...).
  virtual std::string name() const = 0;

  /// Announces the next vector before its pairs are assigned. Schedulers
  /// reset their per-vector accounting (balanceNum, assigned-tensor maps).
  virtual void begin_vector(const VectorWorkload& vec,
                            const ClusterView& view) = 0;

  /// Picks the device for one tensor pair. Called once per task, in order.
  virtual DeviceId assign(const ContractionTask& task,
                          const ClusterView& view) = 0;

  /// Announces that the vector's tasks all executed (barrier follows).
  virtual void end_vector() {}

  /// Announces a permanent device failure detected by the execution layer.
  /// `view` already reflects the loss (the device reads dead, its residency
  /// is gone). Schedulers drop per-device accounting for the casualty and
  /// rebalance over the survivors; every assign() from here on must return
  /// an alive device.
  virtual void on_device_failure(DeviceId dev, const ClusterView& view) {
    (void)dev;
    (void)view;
  }

  /// Attaches the telemetry bundle (nullptr detaches). Implementations log
  /// one DecisionEvent per assign() and bump registry counters; unattached
  /// schedulers pay one pointer test per assignment. Overrides must call the
  /// base to keep the shared instruments resolved.
  virtual void set_telemetry(obs::Telemetry* telemetry);

  /// The epoch-keyed pattern cache backing record_decision's classification
  /// on the incremental path (hit/miss counts exposed for tests and tools).
  const PatternCache& pattern_cache() const { return pattern_cache_; }

 protected:
  /// Logs one decision to the attached telemetry: classifies the pair,
  /// classifies the chosen mapping, bumps the shared counters and — when a
  /// sink is attached — emits the DecisionEvent. The tier/bound/fallback
  /// fields are the MICCO-specific extras; baselines keep the defaults.
  /// No-op when telemetry is detached.
  void record_decision(const ContractionTask& task, const ClusterView& view,
                       const std::vector<DeviceId>& candidates,
                       DeviceId chosen, int bound_tier = -1,
                       std::int64_t bound_value = -1,
                       std::int64_t balance_num = -1, bool fallback = false,
                       bool evict_risk = false);

  /// Reusable candidate buffers for record_decision call sites, so baselines
  /// that log "every alive device" or "the single winner" as their candidate
  /// set do not allocate per decision. The reference is valid until the next
  /// call on the same scheduler.
  const std::vector<DeviceId>& alive_candidates(const ClusterView& view);
  const std::vector<DeviceId>& single_candidate(DeviceId dev);

  obs::Telemetry* telemetry_ = nullptr;

 private:
  /// Registry instruments resolved once at attach time so record_decision
  /// never does a name lookup on the hot path.
  struct DecisionInstruments {
    obs::Counter* decisions = nullptr;
    obs::Counter* pattern[4] = {};
    obs::Counter* mapping[4] = {};
    obs::Counter* tier[3] = {};
    obs::Counter* fallback = nullptr;
    obs::Counter* evict_risk = nullptr;
  };
  DecisionInstruments instruments_;
  std::vector<DeviceId> candidate_scratch_;
  /// Memoizes classify_pair per (pair, residency epochs) when the view
  /// offers a ClusterIndex and the incremental core is on.
  PatternCache pattern_cache_;
};

}  // namespace micco
