// Scheduler interface.
//
// Scheduling is online: the driver announces each incoming vector, then asks
// for a device assignment pair by pair, executing each assignment on the
// simulator (or real backend) before requesting the next. Schedulers
// therefore always see residency state that reflects every earlier decision,
// including evictions — exactly the dynamic setting the paper targets
// ("(partial) contraction graphs are generated dynamically").
#pragma once

#include <memory>
#include <string>

#include "gpusim/cluster.hpp"
#include "workload/task.hpp"

namespace micco {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable name for bench tables ("Groute", "MICCO-optimal", ...).
  virtual std::string name() const = 0;

  /// Announces the next vector before its pairs are assigned. Schedulers
  /// reset their per-vector accounting (balanceNum, assigned-tensor maps).
  virtual void begin_vector(const VectorWorkload& vec,
                            const ClusterView& view) = 0;

  /// Picks the device for one tensor pair. Called once per task, in order.
  virtual DeviceId assign(const ContractionTask& task,
                          const ClusterView& view) = 0;

  /// Announces that the vector's tasks all executed (barrier follows).
  virtual void end_vector() {}
};

}  // namespace micco
