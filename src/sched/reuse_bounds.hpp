// Reuse bounds (Section III-B.2, Table II).
//
// A reuse bound is the load-imbalance slack the scheduler accepts to keep a
// data-reuse opportunity: a device is "available" for an incoming pair only
// while its per-vector tensor count stays under balanceNum + bound, with a
// separate bound per local-reuse tier:
//   bound[0] -> TwoRepeatedSame pairs (mapping 1),
//   bound[1] -> TwoRepeatedDiff / OneRepeated pairs (mappings 2-3),
//   bound[2] -> TwoNew pairs (mappings 4-7).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace micco {

struct ReuseBounds {
  std::array<std::int64_t, 3> values{0, 0, 0};

  constexpr ReuseBounds() = default;
  constexpr ReuseBounds(std::int64_t b0, std::int64_t b1, std::int64_t b2)
      : values{b0, b1, b2} {}

  std::int64_t operator[](std::size_t i) const { return values[i]; }
  std::int64_t& operator[](std::size_t i) { return values[i]; }

  /// MICCO-naive: zero slack everywhere (pure balance within each tier).
  static constexpr ReuseBounds naive() { return ReuseBounds{0, 0, 0}; }

  bool operator==(const ReuseBounds&) const = default;

  std::string to_string() const;
};

/// The thirteen bound triples swept in Fig. 8 (values 0..2).
const std::array<ReuseBounds, 13>& fig8_bound_sweep();

/// Full sweep grid for offline training-label search: all triples with each
/// component in [0, max_component].
std::vector<ReuseBounds> bound_grid(std::int64_t max_component);

}  // namespace micco
