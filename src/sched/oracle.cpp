#include "sched/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace micco {

namespace {

/// End-of-vector makespan if the remaining tasks were free: the maximum
/// device timeline of the clone.
double current_makespan(const ClusterSimulator& sim) {
  double worst = 0.0;
  for (DeviceId dev = 0; dev < sim.num_devices(); ++dev) {
    worst = std::max(worst, sim.busy_time(dev));
  }
  return worst;
}

struct Candidate {
  ClusterSimulator sim;
  std::vector<DeviceId> devices;
};

}  // namespace

OracleAssignment oracle_search(const VectorWorkload& vec,
                               const ClusterSimulator& base,
                               const OracleOptions& options) {
  MICCO_EXPECTS(!vec.tasks.empty());
  MICCO_EXPECTS(options.beam_width >= 1);

  const auto num_devices = base.num_devices();
  // Exhaustive search must bound the LEAF count, not just the task count:
  // devices^tasks simulator clones blow up fast (8 tasks on 8 devices would
  // be 16.7M). Cap the total frontier work and fall back to beam search.
  constexpr double kMaxLeaves = 65536.0;
  const bool exhaustive =
      vec.tasks.size() <= options.exhaustive_task_limit &&
      std::pow(static_cast<double>(num_devices),
               static_cast<double>(vec.tasks.size())) <= kMaxLeaves;
  const std::size_t beam =
      exhaustive ? std::numeric_limits<std::size_t>::max()
                 : options.beam_width;

  OracleAssignment best;
  best.exhaustive = exhaustive;

  std::vector<Candidate> frontier;
  {
    Candidate root{base, {}};
    root.sim.set_trace(nullptr);  // clones never record
    frontier.push_back(std::move(root));
  }

  for (const ContractionTask& task : vec.tasks) {
    std::vector<Candidate> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(num_devices));
    for (const Candidate& candidate : frontier) {
      for (DeviceId dev = 0; dev < num_devices; ++dev) {
        Candidate extended = candidate;
        extended.sim.execute(task, dev);
        extended.devices.push_back(dev);
        ++best.evaluated;
        next.push_back(std::move(extended));
      }
    }
    // Beam pruning: keep the most promising partials by projected makespan;
    // break exact ties deterministically by the assignment prefix.
    if (next.size() > beam) {
      std::stable_sort(next.begin(), next.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return current_makespan(a.sim) <
                                current_makespan(b.sim);
                       });
      next.erase(next.begin() + static_cast<std::ptrdiff_t>(beam),
                 next.end());
    }
    frontier = std::move(next);
  }

  MICCO_ASSERT(!frontier.empty());
  const Candidate* winner = &frontier.front();
  for (const Candidate& candidate : frontier) {
    if (current_makespan(candidate.sim) < current_makespan(winner->sim)) {
      winner = &candidate;
    }
  }
  best.devices = winner->devices;
  best.makespan_s = current_makespan(winner->sim);
  return best;
}

ExecutionMetrics run_oracle(const WorkloadStream& stream,
                            const ClusterConfig& cluster,
                            const OracleOptions& options) {
  ClusterSimulator sim(cluster);
  for (const VectorWorkload& vec : stream.vectors) {
    if (vec.tasks.empty()) continue;
    const OracleAssignment plan = oracle_search(vec, sim, options);
    MICCO_ASSERT(plan.devices.size() == vec.tasks.size());
    for (std::size_t i = 0; i < vec.tasks.size(); ++i) {
      sim.execute(vec.tasks[i], plan.devices[i]);
    }
    sim.barrier();
  }
  return sim.metrics();
}

}  // namespace micco
