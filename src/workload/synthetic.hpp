// Synthetic workload generator reproducing Section V's evaluation setup:
// streams of tensor-pair vectors with controlled vector size, tensor size,
// repeated rate and repeated-data selection distribution (Uniform or
// Gaussian-biased), all driven by a deterministic seed.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/task.hpp"

namespace micco {

struct SyntheticConfig {
  std::int64_t num_vectors = 10;   ///< Table V uses a sum of 10 vectors
  std::int64_t vector_size = 64;   ///< tensors per vector (even, >= 2)
  std::int64_t tensor_extent = 384;
  std::int64_t batch = 16;
  int rank = 2;                    ///< 2 = meson workload, 3 = baryon
  double repeated_rate = 0.5;      ///< fraction of slots drawn from history
  DataDistribution distribution = DataDistribution::kUniform;

  /// Width of the Gaussian used to pick repeated tensors, as a fraction of
  /// the history length. Smaller values concentrate the repeats on fewer
  /// tensors (more bias, more load-imbalance pressure).
  double gaussian_sigma_fraction = 0.12;

  std::uint64_t seed = 42;
};

/// Generates a reproducible stream. Repeated slots of each vector are drawn
/// from the tensors of *previous* vectors (the paper: "the selection of
/// repeated data from the previous data follows two distributions"); the
/// first vector is therefore all-new. Fresh tensors get new TensorIds.
WorkloadStream generate_synthetic(const SyntheticConfig& config);

/// Validates a config, aborting with a message on nonsensical values
/// (odd vector size, repeated_rate outside [0,1], ...).
void validate(const SyntheticConfig& config);

}  // namespace micco
