// Per-vector data characteristics (Table I): the feature vector MICCO's
// regression model consumes. The online path re-derives repeated rate and
// distribution bias from the incoming vector and the current device
// residency, mirroring "repeated rate is calculated dynamically for each
// vector" in Section IV-C.
#pragma once

#include <cstdint>

#include "workload/task.hpp"

namespace micco {

/// Abstract residency query the extractor needs; the GPU simulator's cluster
/// state implements it. Kept minimal so workload does not depend on gpusim.
class ResidencyOracle {
 public:
  virtual ~ResidencyOracle() = default;
  /// True when the tensor currently lives in at least one device memory.
  virtual bool resident_anywhere(TensorId id) const = 0;
};

/// Trivial oracle for workloads with no devices attached yet (first vector,
/// unit tests): nothing is resident.
class EmptyResidency final : public ResidencyOracle {
 public:
  bool resident_anywhere(TensorId) const override { return false; }
};

/// The regression model's feature vector.
struct DataCharacteristics {
  double vector_size = 0.0;    ///< tensor slots in the vector
  double tensor_extent = 0.0;  ///< the paper's "tensor size"
  double distribution_bias = 0.0;  ///< 0 = uniform, 1 = strongly biased
  double repeated_rate = 0.0;  ///< fraction of slots already device-resident

  /// Fixed feature order for the ML pipeline.
  static constexpr int kFeatureCount = 4;
  void to_features(double out[kFeatureCount]) const {
    out[0] = vector_size;
    out[1] = tensor_extent;
    out[2] = distribution_bias;
    out[3] = repeated_rate;
  }
};

/// Extracts the characteristics of one incoming vector given the current
/// residency state. Distribution bias is estimated from the skew of tensor
/// multiplicities inside the vector (a hot set repeated many times reads as
/// biased; evenly spread repeats read as uniform).
DataCharacteristics extract_characteristics(const VectorWorkload& vec,
                                            const ResidencyOracle& residency);

/// The multiplicity-skew statistic used for the bias estimate, exposed for
/// testing: 0 when every distinct input appears once, approaching 1 as a
/// single tensor dominates the slots.
double multiplicity_skew(const VectorWorkload& vec);

}  // namespace micco
