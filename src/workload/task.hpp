// Scheduling-level task model.
//
// After Redstar's dependency analysis, a correlation function reaches the
// scheduler as a sequence of *vectors*: each vector holds independent tensor
// pairs, every pair is one hadron contraction, and vectors execute with a
// barrier between them (they correspond to the stages of Fig. 1). These are
// the types the workload generators emit, the schedulers consume, and the
// GPU simulator executes.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "tensor/contraction.hpp"

namespace micco {

/// Globally unique logical tensor identity. Two tasks referencing the same
/// TensorId reference the same data, which is exactly what creates the data
/// reuse opportunities MICCO exploits.
using TensorId = std::uint64_t;

constexpr TensorId kInvalidTensor = ~TensorId{0};

/// Metadata of one hadron-node tensor (a batch of matrices or rank-3
/// tensors). Only metadata flows through the scheduler; payloads live in
/// the numeric path (tensor::Tensor) or are priced by the cost model.
struct TensorDesc {
  TensorId id = kInvalidTensor;
  int rank = 2;               ///< 2 = meson node, 3 = baryon node
  std::int64_t extent = 0;    ///< the paper's "tensor size"
  std::int64_t batch = 1;     ///< batched kernel width

  /// Device-memory footprint of the payload.
  std::uint64_t bytes() const {
    MICCO_EXPECTS(extent > 0 && batch > 0);
    std::uint64_t per_entry = 1;
    for (int i = 0; i < rank; ++i) {
      per_entry *= static_cast<std::uint64_t>(extent);
    }
    return per_entry * static_cast<std::uint64_t>(batch) * sizeof(cplx);
  }

  bool valid() const { return id != kInvalidTensor; }
  bool operator==(const TensorDesc& other) const = default;
};

/// One hadron contraction: reduce the edge between hadron nodes `a` and `b`,
/// producing `out`. FLOPs are fixed by the operand shapes.
struct ContractionTask {
  TensorDesc a;
  TensorDesc b;
  TensorDesc out;

  std::uint64_t flops() const {
    return hadron_contraction_flops(a.rank, b.rank, a.batch, a.extent);
  }

  /// Bytes the kernel touches (roofline traffic term).
  std::uint64_t kernel_bytes() const {
    return hadron_contraction_bytes(a.rank, b.rank, a.batch, a.extent);
  }
};

/// How the generator selects which historical tensors repeat.
enum class DataDistribution { kUniform, kGaussian };

const char* to_string(DataDistribution d);

/// A stage's worth of independent contractions (one "vector" in the paper's
/// vocabulary). `tensor_count()` counts tensor *slots* (2 per task), which
/// is the quantity balanceNum divides.
struct VectorWorkload {
  std::vector<ContractionTask> tasks;

  /// Number of input tensor slots (the paper's "vector size").
  std::int64_t tensor_count() const {
    return static_cast<std::int64_t>(tasks.size()) * 2;
  }

  /// Distinct input TensorIds in this vector.
  std::unordered_set<TensorId> unique_inputs() const;

  /// Total FLOPs over all contractions in the vector.
  std::uint64_t total_flops() const;

  /// Sum of distinct input payload bytes (each distinct tensor counted once).
  std::uint64_t unique_input_bytes() const;

  /// Sum of output payload bytes.
  std::uint64_t output_bytes() const;
};

/// A full workload: an ordered sequence of vectors with barriers between
/// them, plus the generator-level ground truth used by the regression model
/// experiments.
struct WorkloadStream {
  std::vector<VectorWorkload> vectors;

  // Generator parameters (ground truth; the online path re-derives its own
  // estimates via DataCharacteristics).
  std::int64_t vector_size = 0;    ///< tensors per vector
  std::int64_t tensor_extent = 0;  ///< the paper's "tensor size"
  std::int64_t batch = 1;
  double repeated_rate = 0.0;      ///< requested repeat fraction
  DataDistribution distribution = DataDistribution::kUniform;

  std::uint64_t total_flops() const;

  /// Peak footprint if every distinct tensor (inputs + outputs) stayed
  /// resident: the denominator for oversubscription-rate sizing.
  std::uint64_t total_distinct_bytes() const;
};

}  // namespace micco
