#include "workload/task.hpp"

namespace micco {

const char* to_string(DataDistribution d) {
  switch (d) {
    case DataDistribution::kUniform: return "Uniform";
    case DataDistribution::kGaussian: return "Gaussian";
  }
  return "?";
}

std::unordered_set<TensorId> VectorWorkload::unique_inputs() const {
  std::unordered_set<TensorId> ids;
  ids.reserve(tasks.size() * 2);
  for (const ContractionTask& t : tasks) {
    ids.insert(t.a.id);
    ids.insert(t.b.id);
  }
  return ids;
}

std::uint64_t VectorWorkload::total_flops() const {
  std::uint64_t acc = 0;
  for (const ContractionTask& t : tasks) acc += t.flops();
  return acc;
}

std::uint64_t VectorWorkload::unique_input_bytes() const {
  std::unordered_set<TensorId> seen;
  std::uint64_t acc = 0;
  for (const ContractionTask& t : tasks) {
    if (seen.insert(t.a.id).second) acc += t.a.bytes();
    if (seen.insert(t.b.id).second) acc += t.b.bytes();
  }
  return acc;
}

std::uint64_t VectorWorkload::output_bytes() const {
  std::uint64_t acc = 0;
  for (const ContractionTask& t : tasks) acc += t.out.bytes();
  return acc;
}

std::uint64_t WorkloadStream::total_flops() const {
  std::uint64_t acc = 0;
  for (const VectorWorkload& v : vectors) acc += v.total_flops();
  return acc;
}

std::uint64_t WorkloadStream::total_distinct_bytes() const {
  std::unordered_set<TensorId> seen;
  std::uint64_t acc = 0;
  for (const VectorWorkload& v : vectors) {
    for (const ContractionTask& t : v.tasks) {
      if (seen.insert(t.a.id).second) acc += t.a.bytes();
      if (seen.insert(t.b.id).second) acc += t.b.bytes();
      if (seen.insert(t.out.id).second) acc += t.out.bytes();
    }
  }
  return acc;
}

}  // namespace micco
