// Workload stream (de)serialization.
//
// A captured stream — synthetic, or emitted by a Redstar-style frontend —
// can be written to a portable text file and replayed later against any
// scheduler/cluster configuration, which is how real scheduling workloads
// get shared and regression-tested. Line-oriented, versioned:
//   micco-workload v1
//   meta <vector_size> <extent> <batch> <repeated_rate> <distribution>
//   vectors <count>
//   vector <task_count>
//   task <a.id> <a.rank> <a.extent> <a.batch> <b...> <out...>   (one per line)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "workload/task.hpp"

namespace micco {

/// Writes a stream; aborts on I/O failure (programmer-controlled sink).
void save_stream(const WorkloadStream& stream, std::ostream& out);
void save_stream_file(const WorkloadStream& stream, const std::string& path);

/// Reads a stream back. Returns nullopt and sets `error` on malformed
/// input (external data: never aborts). The loaded stream passes the same
/// structural validation the generators guarantee.
std::optional<WorkloadStream> load_stream(std::istream& in,
                                          std::string* error = nullptr);
std::optional<WorkloadStream> load_stream_file(const std::string& path,
                                               std::string* error = nullptr);

}  // namespace micco
