#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace micco {

void validate(const SyntheticConfig& config) {
  MICCO_EXPECTS_MSG(config.num_vectors >= 1, "need at least one vector");
  MICCO_EXPECTS_MSG(config.vector_size >= 2 && config.vector_size % 2 == 0,
                    "vector size must be even and >= 2");
  MICCO_EXPECTS_MSG(config.tensor_extent >= 1, "tensor extent must be >= 1");
  MICCO_EXPECTS_MSG(config.batch >= 1, "batch must be >= 1");
  MICCO_EXPECTS_MSG(config.rank == 2 || config.rank == 3,
                    "rank must be 2 (meson) or 3 (baryon)");
  MICCO_EXPECTS_MSG(config.repeated_rate >= 0.0 && config.repeated_rate <= 1.0,
                    "repeated rate must lie in [0, 1]");
  MICCO_EXPECTS_MSG(config.gaussian_sigma_fraction > 0.0,
                    "gaussian sigma fraction must be positive");
}

namespace {

/// Picks the history index of a repeated tensor. Uniform treats all previous
/// tensors alike; Gaussian folds a normal deviate onto the low indices so a
/// small "hot set" of early tensors dominates the repeats (the biased
/// distribution of Table I).
std::size_t pick_history_index(const SyntheticConfig& config,
                               std::size_t history_size, Pcg32& rng) {
  MICCO_EXPECTS(history_size > 0);
  if (config.distribution == DataDistribution::kUniform) {
    return rng.uniform_below(static_cast<std::uint32_t>(history_size));
  }
  const double sigma =
      std::max(1.0, config.gaussian_sigma_fraction *
                        static_cast<double>(history_size));
  for (;;) {
    const double draw = std::abs(rng.gaussian(0.0, sigma));
    const auto idx = static_cast<std::size_t>(draw);
    if (idx < history_size) return idx;
    // Out-of-range tail: redraw (keeps the distribution a proper folded
    // normal truncated to the history, rather than clumping at the end).
  }
}

}  // namespace

WorkloadStream generate_synthetic(const SyntheticConfig& config) {
  validate(config);

  WorkloadStream stream;
  stream.vector_size = config.vector_size;
  stream.tensor_extent = config.tensor_extent;
  stream.batch = config.batch;
  stream.repeated_rate = config.repeated_rate;
  stream.distribution = config.distribution;
  stream.vectors.reserve(static_cast<std::size_t>(config.num_vectors));

  Pcg32 rng(config.seed, /*stream=*/0x9e3779b97f4a7c15ULL);
  TensorId next_id = 0;
  std::vector<TensorDesc> history;  // inputs in order of first appearance

  const auto make_input = [&](TensorId id) {
    TensorDesc d;
    d.id = id;
    d.rank = config.rank;
    d.extent = config.tensor_extent;
    d.batch = config.batch;
    return d;
  };

  for (std::int64_t v = 0; v < config.num_vectors; ++v) {
    const auto slots = static_cast<std::size_t>(config.vector_size);
    std::vector<TensorDesc> inputs(slots);

    // Decide which slots hold repeats. The first vector has no history, so
    // all of its slots are fresh regardless of the requested rate.
    std::size_t num_repeats = 0;
    if (!history.empty()) {
      num_repeats = static_cast<std::size_t>(
          std::llround(config.repeated_rate * static_cast<double>(slots)));
    }
    const std::vector<std::size_t> repeat_slots =
        rng.sample_without_replacement(slots, num_repeats);
    std::vector<bool> is_repeat(slots, false);
    for (const std::size_t s : repeat_slots) is_repeat[s] = true;

    for (std::size_t s = 0; s < slots; ++s) {
      if (is_repeat[s]) {
        inputs[s] = history[pick_history_index(config, history.size(), rng)];
      } else {
        inputs[s] = make_input(next_id++);
      }
    }

    // Fresh tensors enter the history once, after the whole vector is built,
    // so repeats always reference strictly earlier vectors.
    for (std::size_t s = 0; s < slots; ++s) {
      if (!is_repeat[s]) history.push_back(inputs[s]);
    }

    VectorWorkload vec;
    vec.tasks.reserve(slots / 2);
    for (std::size_t s = 0; s + 1 < slots; s += 2) {
      ContractionTask task;
      task.a = inputs[s];
      task.b = inputs[s + 1];
      // Outputs are always rank-2 (both kernels emit matrices) and never
      // collide with input ids.
      task.out = TensorDesc{next_id++, 2, config.tensor_extent, config.batch};
      vec.tasks.push_back(task);
    }
    stream.vectors.push_back(std::move(vec));
  }

  return stream;
}

}  // namespace micco
