#include "workload/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>

#include "common/assert.hpp"

namespace micco {

namespace {

constexpr const char* kMagic = "micco-workload";
constexpr const char* kVersion = "v1";

void write_desc(const TensorDesc& d, std::ostream& out) {
  out << d.id << " " << d.rank << " " << d.extent << " " << d.batch;
}

bool read_desc(std::istream& in, TensorDesc* d, std::string* error) {
  if (!(in >> d->id >> d->rank >> d->extent >> d->batch)) {
    if (error) *error = "truncated tensor descriptor";
    return false;
  }
  if ((d->rank != 2 && d->rank != 3) || d->extent < 1 || d->batch < 1) {
    if (error) *error = "invalid tensor descriptor";
    return false;
  }
  return true;
}

}  // namespace

void save_stream(const WorkloadStream& stream, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "meta " << stream.vector_size << " " << stream.tensor_extent << " "
      << stream.batch << " "
      << std::setprecision(std::numeric_limits<double>::max_digits10)
      << stream.repeated_rate << " "
      << (stream.distribution == DataDistribution::kGaussian ? "gaussian"
                                                             : "uniform")
      << "\n";
  out << "vectors " << stream.vectors.size() << "\n";
  for (const VectorWorkload& vec : stream.vectors) {
    out << "vector " << vec.tasks.size() << "\n";
    for (const ContractionTask& t : vec.tasks) {
      out << "task ";
      write_desc(t.a, out);
      out << " ";
      write_desc(t.b, out);
      out << " ";
      write_desc(t.out, out);
      out << "\n";
    }
  }
}

std::optional<WorkloadStream> load_stream(std::istream& in,
                                          std::string* error) {
  std::string magic, version;
  if (!(in >> magic >> version) || magic != kMagic) {
    if (error) *error = "not a micco workload file";
    return std::nullopt;
  }
  if (version != kVersion) {
    if (error) *error = "unsupported workload version: " + version;
    return std::nullopt;
  }

  WorkloadStream stream;
  std::string tag, dist;
  if (!(in >> tag >> stream.vector_size >> stream.tensor_extent >>
        stream.batch >> stream.repeated_rate >> dist) ||
      tag != "meta") {
    if (error) *error = "malformed meta line";
    return std::nullopt;
  }
  if (dist == "gaussian") {
    stream.distribution = DataDistribution::kGaussian;
  } else if (dist == "uniform") {
    stream.distribution = DataDistribution::kUniform;
  } else {
    if (error) *error = "unknown distribution: " + dist;
    return std::nullopt;
  }

  std::size_t vector_count = 0;
  if (!(in >> tag >> vector_count) || tag != "vectors" ||
      vector_count > 10'000'000) {
    if (error) *error = "malformed vectors line";
    return std::nullopt;
  }
  stream.vectors.reserve(vector_count);
  for (std::size_t v = 0; v < vector_count; ++v) {
    std::size_t task_count = 0;
    if (!(in >> tag >> task_count) || tag != "vector" ||
        task_count > 100'000'000) {
      if (error) *error = "malformed vector header";
      return std::nullopt;
    }
    VectorWorkload vec;
    vec.tasks.reserve(task_count);
    for (std::size_t t = 0; t < task_count; ++t) {
      if (!(in >> tag) || tag != "task") {
        if (error) *error = "malformed task line";
        return std::nullopt;
      }
      ContractionTask task;
      if (!read_desc(in, &task.a, error) || !read_desc(in, &task.b, error) ||
          !read_desc(in, &task.out, error)) {
        return std::nullopt;
      }
      if (task.a.extent != task.b.extent || task.a.batch != task.b.batch) {
        if (error) *error = "operands are not contractable";
        return std::nullopt;
      }
      vec.tasks.push_back(task);
    }
    stream.vectors.push_back(std::move(vec));
  }
  return stream;
}

void save_stream_file(const WorkloadStream& stream, const std::string& path) {
  std::ofstream out(path);
  MICCO_EXPECTS_MSG(out.good(), "cannot open workload file for writing");
  save_stream(stream, out);
  out.flush();
  MICCO_EXPECTS_MSG(out.good(), "workload file write failed");
}

std::optional<WorkloadStream> load_stream_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error) *error = "cannot open workload file: " + path;
    return std::nullopt;
  }
  return load_stream(in, error);
}

}  // namespace micco
