#include "workload/characteristics.hpp"

#include <unordered_map>

namespace micco {

double multiplicity_skew(const VectorWorkload& vec) {
  std::unordered_map<TensorId, std::int64_t> counts;
  std::int64_t slots = 0;
  for (const ContractionTask& t : vec.tasks) {
    ++counts[t.a.id];
    ++counts[t.b.id];
    slots += 2;
  }
  if (slots == 0 || counts.empty()) return 0.0;

  // Herfindahl-style concentration of slot occupancy, rescaled so that an
  // all-distinct vector scores 0 and a single-tensor vector scores 1.
  const double n = static_cast<double>(counts.size());
  double hhi = 0.0;
  for (const auto& [id, c] : counts) {
    (void)id;
    const double share = static_cast<double>(c) / static_cast<double>(slots);
    hhi += share * share;
  }
  const double uniform_floor = 1.0 / n;  // HHI when all multiplicities equal
  if (n <= 1.0) return 1.0;
  const double skew = (hhi - uniform_floor) / (1.0 - uniform_floor);
  return skew < 0.0 ? 0.0 : (skew > 1.0 ? 1.0 : skew);
}

DataCharacteristics extract_characteristics(const VectorWorkload& vec,
                                            const ResidencyOracle& residency) {
  DataCharacteristics c;
  c.vector_size = static_cast<double>(vec.tensor_count());
  if (!vec.tasks.empty()) {
    c.tensor_extent = static_cast<double>(vec.tasks.front().a.extent);
  }

  std::int64_t resident_slots = 0;
  for (const ContractionTask& t : vec.tasks) {
    if (residency.resident_anywhere(t.a.id)) ++resident_slots;
    if (residency.resident_anywhere(t.b.id)) ++resident_slots;
  }
  const std::int64_t slots = vec.tensor_count();
  c.repeated_rate =
      slots == 0 ? 0.0
                 : static_cast<double>(resident_slots) /
                       static_cast<double>(slots);

  c.distribution_bias = multiplicity_skew(vec);
  return c;
}

}  // namespace micco
