// Pluggable eviction policies (memory co-design subsystem, DESIGN.md §11).
//
// The oversubscription experiments (Fig. 11) originally ran on a hard-coded
// per-device LRU inside DeviceMemory. The contraction graph, however, gives
// the runtime *exact* future-use information per vector: every pair a
// scheduler will feed to the cluster is known up front, so an eviction
// policy can rank victims by their true next-use distance (Belady) instead
// of by recency. This header defines the policy interface and its three
// implementations:
//
//   * LruPolicy            — exactly today's behavior (the default path in
//                            ClusterSimulator stays policy-free and
//                            byte-identical; attaching LruPolicy makes the
//                            same decisions through the policy interface).
//   * ReuseDistancePolicy  — evicts the unpinned resident whose next use is
//                            farthest in the vector's remaining pair
//                            sequence (never-used-again wins outright);
//                            ties break toward the least recently used.
//   * PinUntilLastUsePolicy— tensors with pending consumers are evicted
//                            only under hard pressure (nothing consumer-
//                            free is left unpinned); the pressure spill
//                            order is deterministic Belady order.
//
// Determinism rules. pick_victim() is const and must read only the memory
// state plus the tracker state fed by run_stream — the oracle scheduler
// clones whole simulators per candidate assignment and the clones share one
// policy pointer, so a mutating pick_victim() would let probe executions
// corrupt the real run. All mutation happens through the two feed hooks
// (begin_vector / observe_use), which only the pipeline's real execution
// path calls; recovery re-executions pass position -1 and are no-ops.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/memory.hpp"
#include "workload/task.hpp"

namespace micco::mem {

enum class EvictPolicyKind : std::uint8_t {
  kLru,
  kReuseDistance,
  kPinUntilLastUse,
};

/// Metric-segment-safe policy name ("lru", "reuse_distance",
/// "pin_until_last_use") — used verbatim in mem.evictions.<policy> and in
/// run reports, so it must never contain a dot.
const char* to_string(EvictPolicyKind kind);

/// Accepts both hyphenated CLI spellings ("reuse-distance") and the
/// underscore metric spellings; nullopt for anything else.
std::optional<EvictPolicyKind> parse_evict_policy(const std::string& text);

/// Every kind, in declaration order (bench sweeps, CLI help).
std::vector<EvictPolicyKind> all_evict_policies();

/// Sentinel reuse distance for a victim with no known future use.
inline constexpr std::uint64_t kNoFutureUse =
    std::numeric_limits<std::uint64_t>::max();

/// A policy's verdict for one eviction: which tensor to spill and how far
/// away its next use is (kNoFutureUse when it has none), in units of pairs
/// remaining before the use. The distance feeds the mem.reuse_distance
/// histogram for future-use-aware policies.
struct VictimChoice {
  TensorId id = kInvalidTensor;
  std::uint64_t reuse_distance = kNoFutureUse;
};

/// Known future uses of every tensor in the current vector, in visit-order
/// positions. run_stream rebuilds it per vector (begin_vector) and retires
/// positions as pairs execute (observe_use); policies query next_use()
/// during victim selection.
class FutureUseTracker {
 public:
  /// Rebuilds the position lists for one vector. `order` is the visit order
  /// run_stream will feed pairs in (visit_order()'s result); position k is
  /// the k-th pair executed, i.e. vec.tasks[order[k]].
  void begin_vector(const VectorWorkload& vec,
                    const std::vector<std::size_t>& order);

  /// Retires exactly position `pos` of both operands (a recovery
  /// re-execution passes pos < 0 and is a no-op, so replays after a device
  /// loss never desynchronize the books). Also advances the cursor the
  /// distances are measured from.
  void observe_use(const ContractionTask& task, std::int64_t pos);

  /// Smallest remaining use position of `id`, or nullopt when the vector's
  /// remaining pairs never touch it again.
  std::optional<std::int64_t> next_use(TensorId id) const;

  /// Position distances are measured from: the position of the pair
  /// currently executing.
  std::int64_t cursor() const { return cursor_; }

 private:
  void erase_use(TensorId id, std::int64_t pos);

  // Per-tensor remaining use positions, each vector ascending (built by one
  // forward sweep, consumed front-first). Lookup only — iteration order of
  // the map itself never reaches any output.
  std::unordered_map<TensorId, std::vector<std::int64_t>> uses_;
  std::int64_t cursor_ = 0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual EvictPolicyKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Selects the next victim among the unpinned residents of `memory`, or
  /// nullopt when everything resident is pinned (the caller escalates this
  /// exactly as the legacy evict_lru() nullopt). Const on purpose — see the
  /// determinism rules in the header comment.
  virtual std::optional<VictimChoice> pick_victim(
      const DeviceMemory& memory) const = 0;

  // -- feed hooks (no-ops for recency-only policies) -----------------------
  virtual void begin_vector(const VectorWorkload& vec,
                            const std::vector<std::size_t>& order);
  virtual void observe_use(const ContractionTask& task, std::int64_t pos);
};

/// The extracted legacy behavior: least recently used unpinned resident.
/// Decision-for-decision identical to DeviceMemory::evict_lru().
class LruPolicy final : public EvictionPolicy {
 public:
  EvictPolicyKind kind() const override { return EvictPolicyKind::kLru; }
  std::optional<VictimChoice> pick_victim(
      const DeviceMemory& memory) const override;
};

/// Shared base of the future-use-aware policies: owns the tracker and wires
/// the feed hooks into it.
class FutureUsePolicy : public EvictionPolicy {
 public:
  void begin_vector(const VectorWorkload& vec,
                    const std::vector<std::size_t>& order) override;
  void observe_use(const ContractionTask& task, std::int64_t pos) override;

  const FutureUseTracker& tracker() const { return tracker_; }

 protected:
  /// Belady selection: the unpinned resident with the farthest next use
  /// (never-used-again counts as infinitely far); ties toward the least
  /// recently used. Shared by ReuseDistance (always) and PinUntilLastUse
  /// (pressure spill).
  std::optional<VictimChoice> pick_farthest_use(
      const DeviceMemory& memory) const;

  FutureUseTracker tracker_;
};

class ReuseDistancePolicy final : public FutureUsePolicy {
 public:
  EvictPolicyKind kind() const override {
    return EvictPolicyKind::kReuseDistance;
  }
  std::optional<VictimChoice> pick_victim(
      const DeviceMemory& memory) const override;
};

class PinUntilLastUsePolicy final : public FutureUsePolicy {
 public:
  EvictPolicyKind kind() const override {
    return EvictPolicyKind::kPinUntilLastUse;
  }
  std::optional<VictimChoice> pick_victim(
      const DeviceMemory& memory) const override;
};

std::unique_ptr<EvictionPolicy> make_policy(EvictPolicyKind kind);

}  // namespace micco::mem
