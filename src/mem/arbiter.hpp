// Cross-tenant memory arbiter (memory co-design subsystem, DESIGN.md §11).
//
// The daemon multiplexes tenants onto one simulated cluster, but every job
// runs on a *fresh* ClusterSimulator — physical residency does not persist
// across jobs. What does persist is the modeled footprint each tenant's
// last runs would leave resident, and that is what admission arbitrates
// over: the arbiter keeps per-tenant, per-device resident-byte accounting
// (stamped with the finishing run's cluster-index epoch as its coldness
// generation), and at job admission pre-evicts the *coldest cross-tenant*
// footprints — lowest generation first, ties by tenant name — until the
// incoming job's estimated per-device share fits. Pre-eviction is modeled
// bookkeeping (TENSILE-style tensor-granularity arbitration across dynamic
// workloads), never a rejection: admission always proceeds, the arbiter
// only decides whose cold bytes notionally make way and surfaces the
// accounting in `stats`, `micco top` and the mem.arbiter.* metrics.
//
// Thread safety: admit() runs on I/O lanes, record_run() on the dispatcher;
// one internal mutex (rank kLockRankMemArbiter, below the service locks —
// callers may hold JobManager/ServerState) serializes them. All outputs are
// deterministic: tenants live in an ordered map and pre-eviction order is a
// total order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"

namespace micco::mem {

/// Outcome of one admission arbitration.
struct ArbiterAdmission {
  /// Cold cross-tenant bytes pre-evicted (summed over devices) to make the
  /// estimated share fit. Zero when everything already fit.
  std::uint64_t preevicted_bytes = 0;
  /// Tenants whose footprint was (partially) pre-evicted, deterministic
  /// order (coldest first).
  std::vector<std::string> evicted_tenants;
};

class MemoryArbiter {
 public:
  MemoryArbiter(int num_devices, std::uint64_t device_capacity_bytes);

  /// Records the residual footprint a tenant's finished job left per device
  /// (RunResult::device_resident_bytes), stamped with the run's residency
  /// epoch (RunResult::residency_epoch) as its coldness generation. A
  /// tenant's new run replaces its previous footprint.
  void record_run(const std::string& tenant,
                  const std::vector<std::uint64_t>& device_resident_bytes,
                  std::uint64_t residency_epoch);

  /// Arbitrates admission of a job estimated to need
  /// `estimated_bytes_per_device` on every device: pre-evicts cold
  /// cross-tenant footprints (coldest generation first, ties by tenant
  /// name) until the estimate fits next to the surviving residents, or
  /// until no cross-tenant bytes remain. Never rejects.
  ArbiterAdmission admit(const std::string& tenant,
                         std::uint64_t estimated_bytes_per_device);

  /// Per-tenant residency + arbitration counters, for `stats` replies and
  /// `micco top`: {"tenants": {<name>: {"resident_bytes", "epoch"}},
  /// "preevicted_bytes", "admissions"}.
  obs::JsonValue stats_json() const;

  /// Total resident bytes currently booked for one tenant (0 if unknown).
  std::uint64_t tenant_resident_bytes(const std::string& tenant) const;

  std::uint64_t preevicted_bytes_total() const;

 private:
  struct TenantFootprint {
    std::vector<std::uint64_t> device_bytes;
    std::uint64_t epoch = 0;  ///< coldness generation (higher = warmer)
  };

  int num_devices_;
  std::uint64_t device_capacity_;

  mutable Mutex mutex_{"mem::MemoryArbiter::mutex_", kLockRankMemArbiter};
  /// Ordered by tenant name: iteration feeds stats output and pre-eviction
  /// tie-breaks, both part of the determinism contract.
  std::map<std::string, TenantFootprint> tenants_ MICCO_GUARDED_BY(mutex_);
  std::uint64_t preevicted_bytes_ MICCO_GUARDED_BY(mutex_) = 0;
  std::uint64_t admissions_ MICCO_GUARDED_BY(mutex_) = 0;
};

}  // namespace micco::mem
