#include "mem/policy.hpp"

#include <algorithm>

namespace micco::mem {

const char* to_string(EvictPolicyKind kind) {
  switch (kind) {
    case EvictPolicyKind::kLru: return "lru";
    case EvictPolicyKind::kReuseDistance: return "reuse_distance";
    case EvictPolicyKind::kPinUntilLastUse: return "pin_until_last_use";
  }
  return "?";
}

std::optional<EvictPolicyKind> parse_evict_policy(const std::string& text) {
  std::string norm = text;
  std::replace(norm.begin(), norm.end(), '-', '_');
  if (norm == "lru") return EvictPolicyKind::kLru;
  if (norm == "reuse_distance") return EvictPolicyKind::kReuseDistance;
  if (norm == "pin_until_last_use") return EvictPolicyKind::kPinUntilLastUse;
  return std::nullopt;
}

std::vector<EvictPolicyKind> all_evict_policies() {
  return {EvictPolicyKind::kLru, EvictPolicyKind::kReuseDistance,
          EvictPolicyKind::kPinUntilLastUse};
}

void EvictionPolicy::begin_vector(const VectorWorkload&,
                                  const std::vector<std::size_t>&) {}

void EvictionPolicy::observe_use(const ContractionTask&, std::int64_t) {}

// -- FutureUseTracker --------------------------------------------------------

void FutureUseTracker::begin_vector(const VectorWorkload& vec,
                                    const std::vector<std::size_t>& order) {
  uses_.clear();
  cursor_ = 0;
  for (std::size_t seq = 0; seq < order.size(); ++seq) {
    const ContractionTask& task = vec.tasks[order[seq]];
    const auto pos = static_cast<std::int64_t>(seq);
    uses_[task.a.id].push_back(pos);
    if (task.b.id != task.a.id) uses_[task.b.id].push_back(pos);
  }
}

void FutureUseTracker::observe_use(const ContractionTask& task,
                                   std::int64_t pos) {
  if (pos < 0) return;  // recovery re-execution: its positions are history
  cursor_ = pos;
  erase_use(task.a.id, pos);
  if (task.b.id != task.a.id) erase_use(task.b.id, pos);
}

void FutureUseTracker::erase_use(TensorId id, std::int64_t pos) {
  const auto it = uses_.find(id);
  if (it == uses_.end()) return;
  std::vector<std::int64_t>& positions = it->second;
  // Exact-position removal: a position either exists once or was already
  // retired (re-observation after recovery), never "the next one in line".
  const auto where =
      std::lower_bound(positions.begin(), positions.end(), pos);
  if (where != positions.end() && *where == pos) positions.erase(where);
}

std::optional<std::int64_t> FutureUseTracker::next_use(TensorId id) const {
  const auto it = uses_.find(id);
  if (it == uses_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

// -- LruPolicy ---------------------------------------------------------------

std::optional<VictimChoice> LruPolicy::pick_victim(
    const DeviceMemory& memory) const {
  for (const TensorId id : memory.lru_order()) {
    if (memory.pinned(id)) continue;
    return VictimChoice{id, kNoFutureUse};
  }
  return std::nullopt;
}

// -- FutureUsePolicy ---------------------------------------------------------

void FutureUsePolicy::begin_vector(const VectorWorkload& vec,
                                   const std::vector<std::size_t>& order) {
  tracker_.begin_vector(vec, order);
}

void FutureUsePolicy::observe_use(const ContractionTask& task,
                                  std::int64_t pos) {
  tracker_.observe_use(task, pos);
}

std::optional<VictimChoice> FutureUsePolicy::pick_farthest_use(
    const DeviceMemory& memory) const {
  // Never-used-again tensors carry the uint64 max sentinel, so a plain
  // strictly-greater scan makes them win outright; strict comparison keeps
  // ties on the least recently used candidate (encountered first in LRU
  // order), which is also what pins the selection deterministically.
  std::optional<TensorId> best;
  std::uint64_t best_key = 0;
  for (const TensorId id : memory.lru_order()) {
    if (memory.pinned(id)) continue;
    const std::optional<std::int64_t> next = tracker_.next_use(id);
    const std::uint64_t key =
        next.has_value() ? static_cast<std::uint64_t>(*next) : kNoFutureUse;
    if (!best.has_value() || key > best_key) {
      best = id;
      best_key = key;
    }
  }
  if (!best.has_value()) return std::nullopt;
  std::uint64_t distance = kNoFutureUse;
  if (best_key != kNoFutureUse) {
    const auto cursor = static_cast<std::uint64_t>(
        tracker_.cursor() < 0 ? 0 : tracker_.cursor());
    distance = best_key > cursor ? best_key - cursor : 0;
  }
  return VictimChoice{*best, distance};
}

// -- ReuseDistancePolicy -----------------------------------------------------

std::optional<VictimChoice> ReuseDistancePolicy::pick_victim(
    const DeviceMemory& memory) const {
  return pick_farthest_use(memory);
}

// -- PinUntilLastUsePolicy ---------------------------------------------------

std::optional<VictimChoice> PinUntilLastUsePolicy::pick_victim(
    const DeviceMemory& memory) const {
  // Soft pass: tensors whose consumers have all run are fair game, least
  // recently used first (they behave like LRU over the consumer-free set).
  for (const TensorId id : memory.lru_order()) {
    if (memory.pinned(id)) continue;
    if (!tracker_.next_use(id).has_value()) {
      return VictimChoice{id, kNoFutureUse};
    }
  }
  // Hard pressure: every unpinned resident still has pending consumers.
  // Spill in deterministic Belady order (farthest next use first).
  return pick_farthest_use(memory);
}

std::unique_ptr<EvictionPolicy> make_policy(EvictPolicyKind kind) {
  switch (kind) {
    case EvictPolicyKind::kLru: return std::make_unique<LruPolicy>();
    case EvictPolicyKind::kReuseDistance:
      return std::make_unique<ReuseDistancePolicy>();
    case EvictPolicyKind::kPinUntilLastUse:
      return std::make_unique<PinUntilLastUsePolicy>();
  }
  return nullptr;
}

}  // namespace micco::mem
