#include "mem/arbiter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace micco::mem {

MemoryArbiter::MemoryArbiter(int num_devices,
                             std::uint64_t device_capacity_bytes)
    : num_devices_(num_devices), device_capacity_(device_capacity_bytes) {
  MICCO_EXPECTS(num_devices >= 1);
  MICCO_EXPECTS(device_capacity_bytes > 0);
}

void MemoryArbiter::record_run(
    const std::string& tenant,
    const std::vector<std::uint64_t>& device_resident_bytes,
    std::uint64_t residency_epoch) {
  const MutexLock lock(mutex_);
  TenantFootprint& fp = tenants_[tenant];
  fp.device_bytes.assign(static_cast<std::size_t>(num_devices_), 0);
  const std::size_t n = std::min(device_resident_bytes.size(),
                                 fp.device_bytes.size());
  for (std::size_t i = 0; i < n; ++i) {
    fp.device_bytes[i] = device_resident_bytes[i];
  }
  fp.epoch = residency_epoch;
}

ArbiterAdmission MemoryArbiter::admit(
    const std::string& tenant, std::uint64_t estimated_bytes_per_device) {
  const MutexLock lock(mutex_);
  ++admissions_;
  ArbiterAdmission result;

  // Coldness order over the *other* tenants: lowest epoch (least recently
  // refreshed footprint) first, ties by tenant name. Recomputed per
  // admission — the tenant set is small (humans, not tensors).
  std::vector<std::map<std::string, TenantFootprint>::iterator> cold;
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if (it->first != tenant) cold.push_back(it);
  }
  std::stable_sort(cold.begin(), cold.end(), [](const auto& a, const auto& b) {
    if (a->second.epoch != b->second.epoch) {
      return a->second.epoch < b->second.epoch;
    }
    return a->first < b->first;
  });

  const auto own = tenants_.find(tenant);
  for (int dev = 0; dev < num_devices_; ++dev) {
    const auto d = static_cast<std::size_t>(dev);
    // The submitting tenant's own cold bytes are the job's to reuse; only
    // cross-tenant bytes compete with the incoming estimate.
    std::uint64_t own_bytes = 0;
    if (own != tenants_.end() && d < own->second.device_bytes.size()) {
      own_bytes = own->second.device_bytes[d];
    }
    std::uint64_t resident = own_bytes;
    for (const auto& it : cold) {
      if (d < it->second.device_bytes.size()) {
        resident += it->second.device_bytes[d];
      }
    }
    std::uint64_t need = estimated_bytes_per_device;
    if (need > device_capacity_) need = device_capacity_;
    for (const auto& it : cold) {
      if (resident + need <= device_capacity_) break;
      if (d >= it->second.device_bytes.size()) continue;
      std::uint64_t& victim = it->second.device_bytes[d];
      if (victim == 0) continue;
      const std::uint64_t over = resident + need - device_capacity_;
      const std::uint64_t taken = std::min(victim, over);
      victim -= taken;
      resident -= taken;
      result.preevicted_bytes += taken;
      if (std::find(result.evicted_tenants.begin(),
                    result.evicted_tenants.end(),
                    it->first) == result.evicted_tenants.end()) {
        result.evicted_tenants.push_back(it->first);
      }
    }
  }
  preevicted_bytes_ += result.preevicted_bytes;
  return result;
}

obs::JsonValue MemoryArbiter::stats_json() const {
  const MutexLock lock(mutex_);
  obs::JsonValue out = obs::JsonValue::object();
  obs::JsonValue tenants = obs::JsonValue::object();
  for (const auto& [name, fp] : tenants_) {
    std::uint64_t total = 0;
    for (const std::uint64_t b : fp.device_bytes) total += b;
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("resident_bytes", total);
    entry.set("epoch", fp.epoch);
    tenants.set(name, std::move(entry));
  }
  out.set("tenants", std::move(tenants));
  out.set("preevicted_bytes", preevicted_bytes_);
  out.set("admissions", admissions_);
  return out;
}

std::uint64_t MemoryArbiter::tenant_resident_bytes(
    const std::string& tenant) const {
  const MutexLock lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  std::uint64_t total = 0;
  for (const std::uint64_t b : it->second.device_bytes) total += b;
  return total;
}

std::uint64_t MemoryArbiter::preevicted_bytes_total() const {
  const MutexLock lock(mutex_);
  return preevicted_bytes_;
}

}  // namespace micco::mem
