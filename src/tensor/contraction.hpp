// Hadron contraction kernels.
//
// Reducing an edge of a contraction graph contracts the two incident hadron
// nodes: a batched complex matrix multiplication for meson systems, or a
// batched two-index tensor contraction for baryon systems. Both kernels and
// their exact FLOP counts live here; the FLOP counts also calibrate the
// gpusim cost model so the simulated GFLOPS figures in the benches use the
// same arithmetic the paper's hipBLAS kernels perform.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace micco {

/// Batched matrix product C[b] = A[b] * B[b] (meson hadron contraction).
/// A: [batch; m x k], B: [batch; k x n] -> C: [batch; m x n].
Tensor contract_meson(const Tensor& a, const Tensor& b);

/// Batched baryon contraction over two shared indices:
/// C[b](i, l) = sum_{j,k} A[b](i, j, k) * B[b](k, j, l).
/// Reducing a baryon edge contracts the two quark indices the edge carries,
/// leaving a rank-2 node.
Tensor contract_baryon(const Tensor& a, const Tensor& b);

/// Mixed-rank contraction arising while reducing baryon diagrams: a rank-2
/// intermediate against a rank-3 baryon node over one shared index,
/// C[b](i, k, l) = sum_j M[b](i, j) * T[b](j, k, l). The result stays
/// rank 3 (two quark lines of the baryon remain open).
Tensor contract_mixed(const Tensor& m, const Tensor& t);

/// Result rank of contracting hadron nodes of the given ranks:
/// 2x2 -> 2 (meson), 3x3 -> 2 (double contraction), 2x3 / 3x2 -> 3.
int contraction_result_rank(int rank_a, int rank_b);

/// Batched trace sum_b sum_i M[b](i, i): the final reduction when only two
/// hadron nodes remain and the correlator value is extracted.
cplx batched_trace(const Tensor& m);

/// Exact complex-FLOP counts (a complex multiply-accumulate = 8 real flops)
/// for each kernel, given the operand shapes. Used by both the executing
/// kernels' tests and the analytic cost model.
std::uint64_t meson_contraction_flops(std::int64_t batch, std::int64_t m,
                                      std::int64_t k, std::int64_t n);
std::uint64_t baryon_contraction_flops(std::int64_t batch,
                                       std::int64_t extent);

std::uint64_t mixed_contraction_flops(std::int64_t batch,
                                      std::int64_t extent);

/// FLOPs for contracting two hadron nodes of the given extent and ranks
/// (square operands, the shape the workloads use): 2x2 meson GEMM, 3x3
/// baryon double contraction, 2x3 mixed single contraction.
std::uint64_t hadron_contraction_flops(int rank_a, int rank_b,
                                       std::int64_t batch,
                                       std::int64_t extent);

/// Same-rank convenience used by the synthetic generators.
std::uint64_t hadron_contraction_flops(int rank, std::int64_t batch,
                                       std::int64_t extent);

/// Bytes read+written by the contraction (operands + result), used by the
/// roofline term of the cost model.
std::uint64_t hadron_contraction_bytes(int rank_a, int rank_b,
                                       std::int64_t batch,
                                       std::int64_t extent);
std::uint64_t hadron_contraction_bytes(int rank, std::int64_t batch,
                                       std::int64_t extent);

}  // namespace micco
