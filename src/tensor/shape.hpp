// Tensor shapes for hadron-node data.
//
// A hadron node in a meson system carries a batch of square matrices
// (rank 2); in a baryon system, a batch of rank-3 tensors. Shapes are a
// leading batch dimension plus up to three spatial extents; the paper calls
// the spatial extent the "tensor size" (e.g. 384).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/assert.hpp"

namespace micco {

/// Shape of a batched tensor: `batch` independent tensors of rank
/// `rank` with extents `dims[0..rank)`.
class Shape {
 public:
  static constexpr int kMaxRank = 3;

  Shape() = default;

  Shape(std::int64_t batch, std::initializer_list<std::int64_t> dims)
      : batch_(batch), rank_(static_cast<int>(dims.size())) {
    MICCO_EXPECTS(batch >= 1);
    MICCO_EXPECTS(rank_ >= 1 && rank_ <= kMaxRank);
    int i = 0;
    for (const std::int64_t d : dims) {
      MICCO_EXPECTS(d >= 1);
      dims_[static_cast<std::size_t>(i++)] = d;
    }
  }

  /// Batch of square matrices (meson hadron node).
  static Shape matrix(std::int64_t batch, std::int64_t extent) {
    return Shape(batch, {extent, extent});
  }

  /// Batch of cubical rank-3 tensors (baryon hadron node).
  static Shape rank3(std::int64_t batch, std::int64_t extent) {
    return Shape(batch, {extent, extent, extent});
  }

  std::int64_t batch() const { return batch_; }
  int rank() const { return rank_; }

  std::int64_t dim(int axis) const {
    MICCO_EXPECTS(axis >= 0 && axis < rank_);
    return dims_[static_cast<std::size_t>(axis)];
  }

  /// Elements in a single batch entry.
  std::int64_t elements_per_batch() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[static_cast<std::size_t>(i)];
    return n;
  }

  /// Total element count across the batch.
  std::int64_t elements() const { return batch_ * elements_per_batch(); }

  bool operator==(const Shape& other) const = default;

  std::string to_string() const;

 private:
  std::int64_t batch_ = 0;
  int rank_ = 0;
  std::array<std::int64_t, kMaxRank> dims_{};
};

}  // namespace micco
