#include "tensor/contraction.hpp"

namespace micco {

Tensor contract_meson(const Tensor& a, const Tensor& b) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  MICCO_EXPECTS(sa.rank() == 2 && sb.rank() == 2);
  MICCO_EXPECTS(sa.batch() == sb.batch());
  MICCO_EXPECTS_MSG(sa.dim(1) == sb.dim(0), "inner extents must agree");

  const std::int64_t batch = sa.batch();
  const std::int64_t m = sa.dim(0);
  const std::int64_t k = sa.dim(1);
  const std::int64_t n = sb.dim(1);

  Tensor c(Shape(batch, {m, n}));
  // i-k-j loop order keeps the B row and C row contiguous in the inner loop.
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const cplx aik = a.at(bi, i, kk);
        for (std::int64_t j = 0; j < n; ++j) {
          c.at(bi, i, j) += aik * b.at(bi, kk, j);
        }
      }
    }
  }
  return c;
}

Tensor contract_baryon(const Tensor& a, const Tensor& b) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  MICCO_EXPECTS(sa.rank() == 3 && sb.rank() == 3);
  MICCO_EXPECTS(sa.batch() == sb.batch());
  MICCO_EXPECTS(sa.dim(1) == sb.dim(1));  // shared index j
  MICCO_EXPECTS(sa.dim(2) == sb.dim(0));  // shared index k

  const std::int64_t batch = sa.batch();
  const std::int64_t di = sa.dim(0);
  const std::int64_t dj = sa.dim(1);
  const std::int64_t dk = sa.dim(2);
  const std::int64_t dl = sb.dim(2);

  Tensor c(Shape(batch, {di, dl}));
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    for (std::int64_t i = 0; i < di; ++i) {
      for (std::int64_t j = 0; j < dj; ++j) {
        for (std::int64_t k = 0; k < dk; ++k) {
          const cplx aijk = a.at(bi, i, j, k);
          for (std::int64_t l = 0; l < dl; ++l) {
            c.at(bi, i, l) += aijk * b.at(bi, k, j, l);
          }
        }
      }
    }
  }
  return c;
}

Tensor contract_mixed(const Tensor& m, const Tensor& t) {
  const Shape& sm = m.shape();
  const Shape& st = t.shape();
  MICCO_EXPECTS(sm.rank() == 2 && st.rank() == 3);
  MICCO_EXPECTS(sm.batch() == st.batch());
  MICCO_EXPECTS_MSG(sm.dim(1) == st.dim(0), "shared extents must agree");

  const std::int64_t batch = sm.batch();
  const std::int64_t di = sm.dim(0);
  const std::int64_t dj = sm.dim(1);
  const std::int64_t dk = st.dim(1);
  const std::int64_t dl = st.dim(2);

  Tensor c(Shape(batch, {di, dk, dl}));
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    for (std::int64_t i = 0; i < di; ++i) {
      for (std::int64_t j = 0; j < dj; ++j) {
        const cplx mij = m.at(bi, i, j);
        for (std::int64_t k = 0; k < dk; ++k) {
          for (std::int64_t l = 0; l < dl; ++l) {
            c.at(bi, i, k, l) += mij * t.at(bi, j, k, l);
          }
        }
      }
    }
  }
  return c;
}

int contraction_result_rank(int rank_a, int rank_b) {
  MICCO_EXPECTS((rank_a == 2 || rank_a == 3) && (rank_b == 2 || rank_b == 3));
  if (rank_a == 2 && rank_b == 2) return 2;
  if (rank_a == 3 && rank_b == 3) return 2;
  return 3;  // mixed: one baryon line stays open
}

cplx batched_trace(const Tensor& m) {
  const Shape& s = m.shape();
  MICCO_EXPECTS(s.rank() == 2);
  MICCO_EXPECTS(s.dim(0) == s.dim(1));
  cplx acc{0.0, 0.0};
  for (std::int64_t b = 0; b < s.batch(); ++b) {
    for (std::int64_t i = 0; i < s.dim(0); ++i) acc += m.at(b, i, i);
  }
  return acc;
}

std::uint64_t meson_contraction_flops(std::int64_t batch, std::int64_t m,
                                      std::int64_t k, std::int64_t n) {
  MICCO_EXPECTS(batch >= 1 && m >= 1 && k >= 1 && n >= 1);
  // One complex MAC = 4 real multiplies + 4 real adds = 8 flops.
  return 8ULL * static_cast<std::uint64_t>(batch) *
         static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(k) *
         static_cast<std::uint64_t>(n);
}

std::uint64_t baryon_contraction_flops(std::int64_t batch,
                                       std::int64_t extent) {
  MICCO_EXPECTS(batch >= 1 && extent >= 1);
  // sum over i, j, k, l: extent^4 complex MACs per batch entry.
  const auto e = static_cast<std::uint64_t>(extent);
  return 8ULL * static_cast<std::uint64_t>(batch) * e * e * e * e;
}

std::uint64_t mixed_contraction_flops(std::int64_t batch,
                                      std::int64_t extent) {
  MICCO_EXPECTS(batch >= 1 && extent >= 1);
  // sum over i, j, k, l: extent^4 complex MACs per batch entry.
  const auto e = static_cast<std::uint64_t>(extent);
  return 8ULL * static_cast<std::uint64_t>(batch) * e * e * e * e;
}

std::uint64_t hadron_contraction_flops(int rank_a, int rank_b,
                                       std::int64_t batch,
                                       std::int64_t extent) {
  MICCO_EXPECTS((rank_a == 2 || rank_a == 3) && (rank_b == 2 || rank_b == 3));
  if (rank_a == 2 && rank_b == 2) {
    return meson_contraction_flops(batch, extent, extent, extent);
  }
  if (rank_a == 3 && rank_b == 3) {
    return baryon_contraction_flops(batch, extent);
  }
  return mixed_contraction_flops(batch, extent);
}

std::uint64_t hadron_contraction_flops(int rank, std::int64_t batch,
                                       std::int64_t extent) {
  return hadron_contraction_flops(rank, rank, batch, extent);
}

std::uint64_t hadron_contraction_bytes(int rank_a, int rank_b,
                                       std::int64_t batch,
                                       std::int64_t extent) {
  MICCO_EXPECTS((rank_a == 2 || rank_a == 3) && (rank_b == 2 || rank_b == 3));
  const auto e = static_cast<std::uint64_t>(extent);
  const auto b = static_cast<std::uint64_t>(batch);
  const auto entry = [&](int rank) {
    return rank == 2 ? e * e : e * e * e;
  };
  const std::uint64_t out_entry =
      entry(contraction_result_rank(rank_a, rank_b));
  return (entry(rank_a) + entry(rank_b) + out_entry) * b * sizeof(cplx);
}

std::uint64_t hadron_contraction_bytes(int rank, std::int64_t batch,
                                       std::int64_t extent) {
  return hadron_contraction_bytes(rank, rank, batch, extent);
}

}  // namespace micco
