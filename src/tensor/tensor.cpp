#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace micco {

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "[batch=" << batch_ << "; ";
  for (int i = 0; i < rank_; ++i) {
    if (i > 0) os << "x";
    os << dims_[static_cast<std::size_t>(i)];
  }
  os << "]";
  return os.str();
}

Tensor Tensor::random(Shape shape, Pcg32& rng) {
  Tensor t(shape);
  for (cplx& v : t.data_) {
    v = cplx{rng.uniform_real(-1.0, 1.0), rng.uniform_real(-1.0, 1.0)};
  }
  return t;
}

double Tensor::max_abs_diff(const Tensor& other) const {
  MICCO_EXPECTS(same_shape(other));
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Tensor::frobenius_norm() const {
  double acc = 0.0;
  for (const cplx& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

}  // namespace micco
