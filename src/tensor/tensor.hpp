// Dense complex tensors backing hadron nodes, plus element access helpers.
//
// This is the *executing* substrate: tests and examples contract real data
// through it to prove any schedule MICCO emits is numerically equivalent to
// the sequential reference. The benchmark harnesses use the analytic cost
// model in gpusim instead (see DESIGN.md, hardware substitution).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace micco {

/// Complex scalar used throughout the numeric path. Double precision keeps
/// cross-schedule comparisons bit-exact for the contraction orders we use.
using cplx = std::complex<double>;

/// A dense batched tensor in row-major layout:
/// index (b, i[, j[, k]]) linearises as ((b*d0 + i)*d1 + j)*d2 + k.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.elements()), cplx{0.0, 0.0}) {}

  /// Fills with uniform random complex values in the unit square; the
  /// deterministic RNG keeps test fixtures reproducible.
  static Tensor random(Shape shape, Pcg32& rng);

  const Shape& shape() const { return shape_; }
  std::int64_t elements() const { return shape_.elements(); }

  /// Payload size in bytes (what a device allocation would occupy).
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(shape_.elements()) * sizeof(cplx);
  }

  std::span<cplx> data() { return data_; }
  std::span<const cplx> data() const { return data_; }

  /// Rank-2 element access (batch b, row i, column j).
  cplx& at(std::int64_t b, std::int64_t i, std::int64_t j) {
    return data_[index2(b, i, j)];
  }
  const cplx& at(std::int64_t b, std::int64_t i, std::int64_t j) const {
    return data_[index2(b, i, j)];
  }

  /// Rank-3 element access.
  cplx& at(std::int64_t b, std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[index3(b, i, j, k)];
  }
  const cplx& at(std::int64_t b, std::int64_t i, std::int64_t j,
                 std::int64_t k) const {
    return data_[index3(b, i, j, k)];
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Max absolute elementwise difference; tests use it for tolerance checks.
  double max_abs_diff(const Tensor& other) const;

  /// Frobenius norm across the whole batch.
  double frobenius_norm() const;

 private:
  std::size_t index2(std::int64_t b, std::int64_t i, std::int64_t j) const {
    MICCO_EXPECTS(shape_.rank() == 2);
    MICCO_EXPECTS(b >= 0 && b < shape_.batch());
    MICCO_EXPECTS(i >= 0 && i < shape_.dim(0));
    MICCO_EXPECTS(j >= 0 && j < shape_.dim(1));
    return static_cast<std::size_t>((b * shape_.dim(0) + i) * shape_.dim(1) +
                                    j);
  }

  std::size_t index3(std::int64_t b, std::int64_t i, std::int64_t j,
                     std::int64_t k) const {
    MICCO_EXPECTS(shape_.rank() == 3);
    MICCO_EXPECTS(b >= 0 && b < shape_.batch());
    MICCO_EXPECTS(i >= 0 && i < shape_.dim(0));
    MICCO_EXPECTS(j >= 0 && j < shape_.dim(1));
    MICCO_EXPECTS(k >= 0 && k < shape_.dim(2));
    return static_cast<std::size_t>(
        ((b * shape_.dim(0) + i) * shape_.dim(1) + j) * shape_.dim(2) + k);
  }

  Shape shape_;
  std::vector<cplx> data_;
};

}  // namespace micco
