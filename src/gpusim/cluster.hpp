// Simulated multi-GPU cluster.
//
// The cluster is the execution substrate substituting for the paper's 8x
// MI100 node (see DESIGN.md). It owns per-device memory managers and
// timelines, executes scheduler-assigned contraction tasks by pricing each
// induced event (allocation, H2D/P2P fetch, eviction write-back, kernel),
// and exposes the read-only ClusterView the schedulers consult: residency,
// memory headroom and accumulated device busy time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "faults/injector.hpp"
#include "gpusim/cluster_index.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/trace.hpp"
#include "obs/telemetry.hpp"
#include "workload/characteristics.hpp"
#include "workload/task.hpp"

namespace micco {

namespace mem {
class EvictionPolicy;  // mem/policy.hpp; attached via set_eviction_policy()
}

/// Read-only cluster state offered to schedulers. Doubles as the residency
/// oracle for data-characteristics extraction.
class ClusterView : public ResidencyOracle {
 public:
  /// Size of the device *id space* (stable across failures: a dead device
  /// keeps its id so residency maps and rollups stay indexable).
  virtual int num_devices() const = 0;

  /// Devices currently holding the tensor (unordered, possibly empty). The
  /// returned reference aliases the residency index — valid only until the
  /// next mutation of cluster state (execute, barrier, discard, failure);
  /// schedulers read it within one decision and never hold it across calls.
  /// Returning a reference keeps the decision hot path allocation-free
  /// (a miss returns a shared static empty vector, not a fresh copy).
  virtual const std::vector<DeviceId>& devices_holding(TensorId id) const = 0;

  virtual bool resident_on(DeviceId dev, TensorId id) const = 0;
  virtual std::uint64_t memory_used(DeviceId dev) const = 0;
  virtual std::uint64_t memory_capacity(DeviceId dev) const = 0;

  /// Accumulated busy time of the device's timeline, in seconds. "Earliest
  /// available device" baselines key off this.
  virtual double busy_time(DeviceId dev) const = 0;

  // -- Device health (fault tolerance) ----------------------------------
  /// False once a permanent failure of the device has been detected.
  /// Schedulers must never assign work to a dead device. Defaults keep
  /// fault-oblivious views (tests, oracles) valid.
  virtual bool device_alive(DeviceId) const { return true; }

  /// Devices still accepting work; the degradation path recomputes
  /// balanceNum over this count instead of num_devices().
  virtual int num_alive_devices() const { return num_devices(); }

  /// The incremental cluster-state index, when this view maintains one
  /// (ClusterSimulator does). Schedulers use it for the delta-maintained
  /// hot path; a nullptr return sends them down the recompute-from-view
  /// reference path, so lightweight views (tests, oracles' probes) need not
  /// implement it.
  virtual const ClusterIndex* cluster_index() const { return nullptr; }
};

/// Aggregated execution metrics for one simulated run.
struct ExecutionMetrics {
  double makespan_s = 0.0;
  std::uint64_t total_flops = 0;

  std::uint64_t h2d_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t p2p_transfers = 0;
  std::uint64_t p2p_bytes = 0;
  std::uint64_t internode_transfers = 0;
  std::uint64_t internode_bytes = 0;
  std::uint64_t writeback_bytes = 0;

  std::uint64_t allocations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  // -- Eviction-policy accounting (mem/, set only while a policy is
  // -- attached; the policy-free default leaves both at their zero values
  // -- and neither field is serialised) ----------------------------------
  /// Metric-safe name of the attached eviction policy ("" = legacy path).
  std::string evict_policy;
  /// Bytes re-fetched for tensors this run had previously evicted from the
  /// fetching device — the "came back after we threw it out" half of the
  /// eviction-caused transfer bill (write-backs are the other half).
  std::uint64_t eviction_refetch_bytes = 0;

  /// Reused operand slots: an operand that was already resident on the
  /// executing device (no fetch needed).
  std::uint64_t reused_operands = 0;
  std::uint64_t fetched_operands = 0;

  /// Total device-seconds lost at vector barriers (load imbalance).
  double barrier_idle_s = 0.0;

  double kernel_time_s = 0.0;
  double transfer_time_s = 0.0;

  // -- Fault/recovery accounting (all zero on fault-free runs) -----------
  std::uint64_t transfer_faults = 0;  ///< failed transient transfer attempts
  double retry_backoff_s = 0.0;       ///< simulated time spent backing off
  std::uint64_t devices_lost = 0;     ///< permanent device failures detected
  std::uint64_t tasks_lost = 0;       ///< task attempts lost to a mid-task loss
  std::uint64_t capacity_faults = 0;  ///< spurious capacity losses applied

  /// True when any fault fired during the run.
  bool any_faults() const {
    return transfer_faults > 0 || devices_lost > 0 || tasks_lost > 0 ||
           capacity_faults > 0;
  }

  /// Simulated throughput over the whole run.
  double gflops() const {
    return makespan_s > 0.0
               ? static_cast<double>(total_flops) / makespan_s / 1.0e9
               : 0.0;
  }

  /// Operand reuse rate: resident hits over all operand lookups.
  double reuse_rate() const {
    const std::uint64_t lookups = reused_operands + fetched_operands;
    return lookups > 0
               ? static_cast<double>(reused_operands) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

/// Flat JSON object of every ExecutionMetrics field (run-report "metrics").
/// Fault counters are emitted only when non-zero so fault-free runs stay
/// byte-identical to pre-fault-model reports.
obs::JsonValue to_json(const ExecutionMetrics& metrics);

/// How one execute() call ended.
enum class TaskOutcome : std::uint8_t {
  kCompleted,
  /// The device suffered (or had already suffered) a permanent failure;
  /// the task did not complete and must be re-assigned to a survivor.
  kDeviceFailed,
  /// The task's working set cannot fit on the device even after evicting
  /// everything unpinned — a structured, recoverable error (the run reports
  /// it instead of aborting).
  kCapacityExceeded,
};

const char* to_string(TaskOutcome outcome);

struct ExecuteResult {
  TaskOutcome outcome = TaskOutcome::kCompleted;
  /// Transient transfer faults retried (successfully) during this task.
  int transfer_retries = 0;
  /// Produced tensors whose only copy died with the device (no host copy,
  /// no surviving replica); the recovery layer re-executes their producers.
  std::vector<TensorId> lost_tensors;

  bool ok() const { return outcome == TaskOutcome::kCompleted; }
};

/// Devices declared dead at a stage barrier plus the tensors lost with them
/// (drained by the pipeline's recovery loop).
struct BarrierFailures {
  std::vector<DeviceId> devices;
  std::vector<TensorId> lost_tensors;
  bool empty() const { return devices.empty(); }
};

struct ClusterConfig {
  int num_devices = 8;
  std::uint64_t device_capacity_bytes = 32ULL << 30;  ///< MI100: 32 GiB
  /// Peer-to-peer fetches of replicas. The evaluated system stages hadron
  /// tensors through host memory, so this is off by default and exposed as
  /// an extension/ablation (bench flag --p2p).
  bool p2p_enabled = false;
  /// When true, fetches overlap with kernel execution via a separate copy
  /// engine per device (the paper's future-work "asynchronous data copy";
  /// off by default to match the evaluated system).
  bool overlap_transfers = false;
  /// Multi-node extension (the paper's future work): devices are grouped
  /// into nodes of this size; peer fetches across nodes use the slower
  /// inter-node link. 0 means a single node holds every device.
  int devices_per_node = 0;
  CostModelConfig cost;
};

class ClusterSimulator final : public ClusterView {
 public:
  explicit ClusterSimulator(ClusterConfig config);

  // -- ClusterView -----------------------------------------------------
  int num_devices() const override;
  const std::vector<DeviceId>& devices_holding(TensorId id) const override;
  bool resident_on(DeviceId dev, TensorId id) const override;
  std::uint64_t memory_used(DeviceId dev) const override;
  std::uint64_t memory_capacity(DeviceId dev) const override;
  double busy_time(DeviceId dev) const override;
  bool resident_anywhere(TensorId id) const override;
  bool device_alive(DeviceId dev) const override;
  int num_alive_devices() const override;
  const ClusterIndex* cluster_index() const override { return &index_; }

  // -- Execution --------------------------------------------------------
  /// Executes one contraction on the given device: fetches absent operands
  /// (P2P when available and enabled, otherwise H2D), allocates the output,
  /// evicts LRU tensors on capacity pressure and advances the device
  /// timeline. With a fault injector attached, transient transfer faults
  /// are retried under the configured policy and planned device failures
  /// fire here (fail-on-next-use detection). Returns how the attempt ended;
  /// anything but kCompleted leaves the device timeline frozen at the
  /// failure instant and the task un-executed.
  ExecuteResult execute(const ContractionTask& task, DeviceId dev);

  /// Stage barrier: devices synchronise to the slowest timeline; the idle
  /// gap is recorded as load imbalance. With a fault injector attached this
  /// also proactively declares devices whose planned failure time has passed
  /// dead (even if no task touched them) — drain take_barrier_failures()
  /// afterwards.
  void barrier();

  // -- Fault tolerance ---------------------------------------------------
  /// Attaches a fault injector (nullptr detaches; not owned; must outlive
  /// all execute()/barrier() calls). Without one, the simulator behaves
  /// exactly as before the fault model existed.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Declares a device permanently failed at simulated time `at_s`: its
  /// timelines freeze, every resident tensor is dropped, and the ids of
  /// produced tensors whose only copy just vanished (no host copy, no
  /// surviving replica) are returned, sorted, for lineage recovery. Public
  /// so tests and the recovery layer can inject losses directly. No-op
  /// (returning empty) if the device is already dead.
  std::vector<TensorId> fail_device(DeviceId dev, double at_s);

  /// Devices declared dead by the last barrier() sweep; clears the record.
  BarrierFailures take_barrier_failures();

  /// Releases a tensor from every device (e.g. a Redstar intermediate whose
  /// last consumer has run). Free latency is charged to each holder.
  void discard(TensorId id);

  const ExecutionMetrics& metrics() const { return metrics_; }
  const CostModel& cost_model() const { return cost_model_; }
  const ClusterConfig& config() const { return config_; }

  /// Attaches an event recorder (nullptr detaches). The simulator does not
  /// own it; it must outlive all execute()/barrier() calls.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches the telemetry bundle (nullptr detaches): memory events flow to
  /// its sink, fetch/eviction/barrier distributions into its registry.
  /// Attach before the first execute(); the simulator does not own it.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Attaches an eviction policy (mem/, nullptr detaches; not owned, must
  /// outlive all execute() calls). Detached, make_room() runs the legacy
  /// hard-coded LRU exactly as before the policy subsystem existed — zero
  /// new state, byte-identical decisions, logs and reports. Attached, every
  /// eviction victim is the policy's pick, evictions count into the
  /// mem.evictions.<policy> / mem.evicted_bytes.<policy> counters, victim
  /// reuse distances feed the mem.reuse_distance histogram (future-use-aware
  /// policies only) and re-fetches of previously evicted tensors accrue into
  /// metrics().eviction_refetch_bytes. The policy pointer is shared by
  /// simulator copies (the oracle's candidate clones), which is safe because
  /// pick_victim() is const — see mem/policy.hpp's determinism rules.
  void set_eviction_policy(const mem::EvictionPolicy* policy);
  const mem::EvictionPolicy* eviction_policy() const { return evict_policy_; }

  /// Resizes a device to `new_capacity`, evicting (under the attached
  /// policy, cause kCapacityLoss) until usage fits again. Growth — a healed
  /// capacity fault restoring memory — is legal with live residents and
  /// evicts nothing. Returns the eviction cost charged, or nullopt when the
  /// shrink is unsatisfiable (everything left is pinned). Used by the
  /// capacity-fault path and directly by tests.
  std::optional<double> shrink_to_capacity(DeviceId dev,
                                           std::uint64_t new_capacity);

  /// Node index of a device under the configured topology.
  int node_of(DeviceId dev) const;

  /// Read-only view of one device's memory book-keeping (LRU order, pins,
  /// residency) — what pick_victim() sees. Tests drive policies against it.
  const DeviceMemory& device_memory(DeviceId dev) const;

  /// True when a host copy of the tensor exists: original inputs always
  /// (Redstar stages them in host memory), produced intermediates only
  /// after an eviction migrated them back. Fetching a produced tensor with
  /// neither a device replica nor a host copy is a lost-intermediate bug
  /// and aborts.
  bool host_resident(TensorId id) const;

  /// Fraction of each device's pre-barrier busy time over the makespan so
  /// far; used by scalability diagnostics and tests.
  std::vector<double> utilization() const;

 private:
  struct DeviceState {
    explicit DeviceState(std::uint64_t capacity) : memory(capacity) {}
    DeviceMemory memory;
    double compute_free_s = 0.0;  ///< when the compute engine frees up
    double copy_free_s = 0.0;     ///< when the copy engine frees up
    double work_s = 0.0;          ///< accumulated non-idle device time
    bool alive = true;            ///< false after a permanent failure
    /// True once a spurious capacity-loss fault hit this device; memory
    /// exhaustion afterwards escalates to a device failure instead of a
    /// capacity error (the hardware is suspect).
    bool capacity_faulted = false;
    /// Allocation timestamp per resident tensor; maintained only while
    /// telemetry is attached (feeds the eviction-victim-age histogram).
    std::unordered_map<TensorId, double> alloc_time;
    /// Tensors ever evicted from this device; maintained only while an
    /// eviction policy is attached (feeds the eviction-refetch accounting).
    std::unordered_set<TensorId> evicted_ever;
  };

  /// How one operand fetch ended (only kOk commits residency).
  enum class FetchStatus : std::uint8_t { kOk, kCapacity, kTransferGaveUp };
  struct FetchResult {
    double cost_s = 0.0;
    FetchStatus status = FetchStatus::kOk;
    int retries = 0;  ///< transient transfer faults survived
  };

  DeviceState& device(DeviceId dev);
  const DeviceState& device(DeviceId dev) const;

  /// Makes room for `bytes` on `dev`, charging eviction costs; operands of
  /// the in-flight task must already be pinned. `cause` labels any induced
  /// evictions in traces and telemetry. Returns nullopt when the bytes can
  /// never fit (single tensor over capacity, or everything left is pinned) —
  /// a recoverable kCapacityExceeded for the caller, not an abort.
  std::optional<double> make_room(DeviceId dev, std::uint64_t bytes,
                                  EvictionCause cause);

  /// Ensures `desc` is resident on `dev`, retrying transient transfer
  /// faults under the injector's policy; on kOk the tensor is pinned and
  /// metrics are updated.
  FetchResult fetch_operand(const TensorDesc& desc, DeviceId dev);

  /// Applies any capacity-loss fault scheduled for `dev` at or before
  /// `now_s`, evicting until usage fits the shrunken capacity. Returns the
  /// eviction cost charged, or nullopt when the survivors alone exceed the
  /// new capacity (escalated by the caller).
  std::optional<double> apply_capacity_faults(DeviceId dev, double now_s);

  void index_add(TensorId id, DeviceId dev);
  void index_remove(TensorId id, DeviceId dev);

  /// (Re-)resolves the mem.* registry instruments; called whenever the
  /// telemetry bundle or the eviction policy changes (both are inputs).
  void resolve_mem_instruments();

  /// Re-syncs the device's SoA mirror (busy time, memory, liveness) in the
  /// index. Called at the end of every mutation entry point — execute,
  /// barrier, fail_device, discard — which is sufficient because schedulers
  /// only observe cluster state between those calls, never mid-task.
  void sync_device_mirror(DeviceId dev);

  /// execute() body; the public wrapper re-syncs the device mirror on every
  /// return path (early failure exits included — a half-fetched task has
  /// already moved memory).
  ExecuteResult execute_impl(const ContractionTask& task, DeviceId dev);

  /// One priced memory operation of the in-flight task, kept so the trace
  /// and telemetry sink can assign exact start offsets once the task's
  /// window is known.
  struct PendingOp {
    TraceEventKind kind;
    TensorId tensor;
    double duration_s;
    std::uint64_t bytes = 0;
    EvictionCause cause = EvictionCause::kNone;
    double victim_age_s = 0.0;  ///< evictions only
  };

  /// True when any observer needs per-operation records buffered.
  bool observing() const {
    return trace_ != nullptr || telemetry_ != nullptr;
  }

  /// Flushes pending_ops_ (and the kernel) to the trace and telemetry sink
  /// once the copy window and kernel slot are known.
  void emit_task_events(DeviceId dev, const ContractionTask& task,
                        double copy_window_start, double kernel_start,
                        double kernel_cost);

  ClusterConfig config_;
  CostModel cost_model_;
  std::vector<DeviceState> devices_;
  /// Incremental residency/load/headroom index, maintained as deltas by
  /// index_add/index_remove and sync_device_mirror (replaces the old
  /// residency hash map; holders keep the same insertion order).
  ClusterIndex index_;
  /// Tensors ever produced by a kernel (everything else is an original).
  std::unordered_set<TensorId> produced_;
  /// Produced tensors with a live host copy (eviction write-backs).
  std::unordered_set<TensorId> host_copies_;
  ExecutionMetrics metrics_;
  TraceRecorder* trace_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  FaultInjector* injector_ = nullptr;  ///< not owned; nullptr = fault-free
  /// Attached eviction policy (not owned); nullptr = legacy LRU fast path.
  const mem::EvictionPolicy* evict_policy_ = nullptr;
  BarrierFailures barrier_failures_;
  /// Registry instruments resolved once at set_telemetry (hot-path cheap).
  obs::Histogram* fetch_bytes_hist_ = nullptr;
  obs::Histogram* victim_age_hist_ = nullptr;
  obs::Histogram* barrier_idle_hist_ = nullptr;
  /// Residency-epoch bumps (one per place/remove) — the invalidation rate
  /// the pattern cache pays for.
  obs::Counter* epoch_bumps_counter_ = nullptr;
  /// mem.* instruments, resolved only while BOTH telemetry and an eviction
  /// policy are attached (resolve_mem_instruments); the policy-free default
  /// never registers them, keeping registry snapshots byte-identical.
  obs::Counter* mem_evictions_counter_ = nullptr;
  obs::Counter* mem_evicted_bytes_counter_ = nullptr;
  obs::Histogram* mem_reuse_distance_hist_ = nullptr;
  std::vector<PendingOp> pending_ops_;
};

}  // namespace micco
