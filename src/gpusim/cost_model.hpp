// Analytic device cost model.
//
// Prices the four event classes the paper's trade-off analysis enumerates —
// kernel execution, memory allocation, data communication (H2D / D2H / P2P)
// and eviction write-back — using MI100-class calibration constants (peak
// FLOP rate, HBM2 bandwidth, PCIe 4.0 and xGMI link bandwidths, launch and
// allocation latencies). Kernels are priced with a roofline: small tensors
// go memory-bound, which reproduces the paper's observation that memory
// operations dominate at tensor size 384 and below.
#pragma once

#include <cstdint>

#include "workload/task.hpp"

namespace micco {

struct CostModelConfig {
  // Compute. Redstar runs hadron contractions in single precision, so
  // kernels are priced at the MI100's FP32 matrix-op peak (46.1 TFLOP/s)
  // with a realistic sustained fraction. (The executing numeric path keeps
  // complex double for bit-exact cross-schedule comparisons; only the cost
  // model prices FP32.)
  double peak_gflops = 46100.0;
  double sustained_fraction = 0.50;

  /// Occupancy ramp: extents at/above this saturate the CUs; smaller extents
  /// scale occupancy down linearly (with a floor), making small kernels
  /// latency/memory bound.
  std::int64_t saturating_extent = 512;
  double min_occupancy = 0.05;

  // Memory system. Host transfers are priced at effective *pageable*
  // PCIe 4.0 rates — Redstar streams hadron tensors straight from host
  // buffers — which is what makes tensor movements the expensive events the
  // paper's trade-off analysis revolves around.
  double hbm_bandwidth_gbs = 1228.8;   ///< device-local traffic
  double h2d_bandwidth_gbs = 12.0;     ///< PCIe 4.0 x16, pageable effective
  double d2h_bandwidth_gbs = 11.0;
  double p2p_bandwidth_gbs = 48.0;     ///< xGMI link (extension; off by default)
  /// Cross-node replica fetches in the multi-node extension (future work of
  /// the paper): InfiniBand-class links, slower than intra-node xGMI but
  /// competitive with pageable host staging.
  double internode_bandwidth_gbs = 20.0;

  // Fixed latencies (seconds). Device allocation is hipMalloc-scale, not a
  // pool hit: the paper counts "memory allocation" as a first-class cost.
  double kernel_launch_latency_s = 8.0e-6;
  double transfer_latency_s = 12.0e-6;
  double alloc_latency_s = 200.0e-6;
  double free_latency_s = 10.0e-6;
};

/// Pure cost-evaluation functions over a fixed config. All results are in
/// seconds of simulated device time.
class CostModel {
 public:
  explicit CostModel(CostModelConfig config = {});

  const CostModelConfig& config() const { return config_; }

  /// Time for the contraction kernel of `task` on one device.
  double kernel_time(const ContractionTask& task) const;

  /// Host-to-device transfer of `bytes`.
  double h2d_time(std::uint64_t bytes) const;

  /// Device-to-host transfer (eviction write-back of dirty tensors).
  double d2h_time(std::uint64_t bytes) const;

  /// Peer-to-peer transfer between two devices of the same node.
  double p2p_time(std::uint64_t bytes) const;

  /// Peer transfer across nodes (multi-node extension).
  double internode_time(std::uint64_t bytes) const;

  /// Device memory allocation of one tensor.
  double alloc_time() const;

  /// Device memory release of one tensor.
  double free_time() const;

  /// Occupancy factor in (0, 1] for a kernel over square operands of the
  /// given extent. Exposed for tests and the bench ablation.
  double occupancy(std::int64_t extent) const;

 private:
  CostModelConfig config_;
};

}  // namespace micco
