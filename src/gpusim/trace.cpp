#include "gpusim/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/assert.hpp"

namespace micco {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kFetchH2D: return "fetch_h2d";
    case TraceEventKind::kFetchP2P: return "fetch_p2p";
    case TraceEventKind::kOutputAlloc: return "output_alloc";
    case TraceEventKind::kEviction: return "eviction";
    case TraceEventKind::kKernel: return "kernel";
    case TraceEventKind::kBarrier: return "barrier";
    case TraceEventKind::kTransferRetry: return "transfer_retry";
    case TraceEventKind::kDeviceFailure: return "device_failure";
    case TraceEventKind::kCapacityLoss: return "capacity_loss";
  }
  return "?";
}

const char* to_string(EvictionCause cause) {
  switch (cause) {
    case EvictionCause::kNone: return "none";
    case EvictionCause::kOperandFetch: return "operand_fetch";
    case EvictionCause::kOutputAlloc: return "output_alloc";
    case EvictionCause::kCapacityLoss: return "capacity_loss";
  }
  return "?";
}

TraceSummary TraceRecorder::summarize(TraceEventKind kind) const {
  TraceSummary s;
  for (const TraceEvent& e : events_) {
    if (e.kind != kind) continue;
    ++s.count;
    s.total_s += e.duration_s;
  }
  return s;
}

std::vector<TraceEvent> TraceRecorder::window(double from_s,
                                              double to_s) const {
  MICCO_EXPECTS(from_s <= to_s);
  std::vector<TraceEvent> out;
  // [t, t) is the empty interval: it overlaps nothing, even events that
  // span t.
  if (from_s >= to_s) return out;
  for (const TraceEvent& e : events_) {
    if (e.start_s < to_s && e.start_s + e.duration_s > from_s) {
      out.push_back(e);
    }
  }
  return out;
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << to_string(e.kind) << "\"";
    // Perfetto surfaces `args` in the tooltip; keep the top-level schema
    // fields (name/ph/pid/tid/ts/dur) untouched for existing tooling.
    if (e.tensor != kInvalidTensor) {
      out << ",\"args\":{\"tensor\":" << e.tensor;
      if (e.bytes > 0) out << ",\"bytes\":" << e.bytes;
      if (e.cause != EvictionCause::kNone) {
        out << ",\"cause\":\"" << to_string(e.cause) << "\"";
      }
      out << "}";
    }
    out << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.device
        << ",\"ts\":" << e.start_s * 1e6 << ",\"dur\":" << e.duration_s * 1e6
        << "}";
  }
  out << "]}\n";
}

void TraceRecorder::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  MICCO_EXPECTS_MSG(out.good(), "cannot open trace file for writing");
  write_chrome_json(out);
  out.flush();
  MICCO_EXPECTS_MSG(out.good(), "trace file write failed");
}

}  // namespace micco
