#include "gpusim/cluster_index.hpp"

#include <algorithm>

namespace micco {

ClusterIndex::ClusterIndex(int num_devices) : num_devices_(num_devices) {
  MICCO_EXPECTS(num_devices >= 1);
  const auto n = static_cast<std::size_t>(num_devices);
  busy_.assign(n, 0.0);
  mem_used_.assign(n, 0);
  mem_capacity_.assign(n, 0);
  alive_mask_.assign((n + 63) / 64, 0);
  for (std::size_t dev = 0; dev < n; ++dev) {
    alive_mask_[dev / 64] |= 1ULL << (dev % 64);
  }
  num_alive_ = num_devices;
}

ClusterIndex::Residency& ClusterIndex::entry(TensorId id) {
  if (id < kDenseLimit) {
    if (id >= dense_.size()) dense_.resize(static_cast<std::size_t>(id) + 1);
    return dense_[static_cast<std::size_t>(id)];
  }
  return sparse_[id];
}

const ClusterIndex::Residency* ClusterIndex::find(TensorId id) const {
  if (id < kDenseLimit) {
    return id < dense_.size() ? &dense_[static_cast<std::size_t>(id)]
                              : nullptr;
  }
  const auto it = sparse_.find(id);
  return it == sparse_.end() ? nullptr : &it->second;
}

const std::vector<DeviceId>& ClusterIndex::holders(TensorId id) const {
  // Shared empty result for misses: the common empty-miss case (fresh
  // tensors) must not allocate — this sits on every scheduler's per-decision
  // path.
  static const std::vector<DeviceId> kNoHolders;
  const Residency* res = find(id);
  return res == nullptr ? kNoHolders : res->holders;
}

void ClusterIndex::place(TensorId id, DeviceId dev) {
  const auto bit = static_cast<std::size_t>(checked(dev));
  Residency& res = entry(id);
  MICCO_ASSERT(!res.holds(dev));
  res.holders.push_back(dev);
  if (bit < 64) {
    res.mask0 |= 1ULL << bit;
  } else {
    const std::size_t word = bit / 64 - 1;
    if (word >= res.mask_ext.size()) res.mask_ext.resize(word + 1, 0);
    res.mask_ext[word] |= 1ULL << (bit % 64);
  }
  res.epoch = ++global_epoch_;
}

void ClusterIndex::remove(TensorId id, DeviceId dev) {
  const auto bit = static_cast<std::size_t>(checked(dev));
  Residency& res = entry(id);
  MICCO_ASSERT(res.holds(dev));
  const auto pos = std::find(res.holders.begin(), res.holders.end(), dev);
  MICCO_ASSERT(pos != res.holders.end());
  res.holders.erase(pos);
  if (bit < 64) {
    res.mask0 &= ~(1ULL << bit);
  } else {
    res.mask_ext[bit / 64 - 1] &= ~(1ULL << (bit % 64));
  }
  res.epoch = ++global_epoch_;
}

void ClusterIndex::set_alive(DeviceId dev, bool alive) {
  const auto bit = static_cast<std::size_t>(checked(dev));
  const std::uint64_t mask = 1ULL << (bit % 64);
  std::uint64_t& word = alive_mask_[bit / 64];
  const bool was_alive = (word & mask) != 0;
  if (was_alive == alive) return;
  if (alive) {
    word |= mask;
    ++num_alive_;
  } else {
    word &= ~mask;
    --num_alive_;
  }
}

}  // namespace micco
