#include "gpusim/cluster.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "mem/policy.hpp"
#include "obs/names.hpp"

namespace micco {

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(config), cost_model_(config.cost), index_(config.num_devices) {
  MICCO_EXPECTS(config_.num_devices >= 1);
  MICCO_EXPECTS(config_.device_capacity_bytes > 0);
  devices_.reserve(static_cast<std::size_t>(config_.num_devices));
  for (int i = 0; i < config_.num_devices; ++i) {
    devices_.emplace_back(config_.device_capacity_bytes);
    index_.set_memory(i, 0, config_.device_capacity_bytes);
  }
}

ClusterSimulator::DeviceState& ClusterSimulator::device(DeviceId dev) {
  MICCO_EXPECTS(dev >= 0 && dev < num_devices());
  return devices_[static_cast<std::size_t>(dev)];
}

const ClusterSimulator::DeviceState& ClusterSimulator::device(
    DeviceId dev) const {
  MICCO_EXPECTS(dev >= 0 && dev < num_devices());
  return devices_[static_cast<std::size_t>(dev)];
}

int ClusterSimulator::num_devices() const {
  return static_cast<int>(devices_.size());
}

const std::vector<DeviceId>& ClusterSimulator::devices_holding(
    TensorId id) const {
  return index_.holders(id);
}

bool ClusterSimulator::resident_on(DeviceId dev, TensorId id) const {
  // The index's membership bit is kept in lockstep with DeviceMemory (every
  // allocate/release pairs with a place/remove), so the O(1) bit test
  // answers for the hash lookup.
  return index_.holds(dev, id);
}

std::uint64_t ClusterSimulator::memory_used(DeviceId dev) const {
  return device(dev).memory.used();
}

std::uint64_t ClusterSimulator::memory_capacity(DeviceId dev) const {
  return device(dev).memory.capacity();
}

double ClusterSimulator::busy_time(DeviceId dev) const {
  const DeviceState& d = device(dev);
  return std::max(d.compute_free_s, d.copy_free_s);
}

bool ClusterSimulator::device_alive(DeviceId dev) const {
  return device(dev).alive;
}

int ClusterSimulator::num_alive_devices() const { return index_.num_alive(); }

const char* to_string(TaskOutcome outcome) {
  switch (outcome) {
    case TaskOutcome::kCompleted: return "completed";
    case TaskOutcome::kDeviceFailed: return "device_failed";
    case TaskOutcome::kCapacityExceeded: return "capacity_exceeded";
  }
  return "?";
}

int ClusterSimulator::node_of(DeviceId dev) const {
  MICCO_EXPECTS(dev >= 0 && dev < num_devices());
  if (config_.devices_per_node <= 0) return 0;
  return dev / config_.devices_per_node;
}

const DeviceMemory& ClusterSimulator::device_memory(DeviceId dev) const {
  MICCO_EXPECTS(dev >= 0 && dev < num_devices());
  return devices_[static_cast<std::size_t>(dev)].memory;
}

bool ClusterSimulator::resident_anywhere(TensorId id) const {
  return index_.resident_anywhere(id);
}

bool ClusterSimulator::host_resident(TensorId id) const {
  // Originals are staged in host memory by the frontend; intermediates
  // gain a host copy only via eviction write-back.
  if (!produced_.contains(id)) return true;
  return host_copies_.contains(id);
}

void ClusterSimulator::index_add(TensorId id, DeviceId dev) {
  index_.place(id, dev);
  if (epoch_bumps_counter_ != nullptr) epoch_bumps_counter_->add();
}

void ClusterSimulator::index_remove(TensorId id, DeviceId dev) {
  index_.remove(id, dev);
  if (epoch_bumps_counter_ != nullptr) epoch_bumps_counter_->add();
}

void ClusterSimulator::sync_device_mirror(DeviceId dev) {
  const DeviceState& d = device(dev);
  index_.set_busy(dev, std::max(d.compute_free_s, d.copy_free_s));
  index_.set_memory(dev, d.memory.used(), d.memory.capacity());
  index_.set_alive(dev, d.alive);
}

void ClusterSimulator::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    fetch_bytes_hist_ = nullptr;
    victim_age_hist_ = nullptr;
    barrier_idle_hist_ = nullptr;
    epoch_bumps_counter_ = nullptr;
    return;
  }
  obs::MetricsRegistry& reg = telemetry_->registry;
  epoch_bumps_counter_ = &reg.counter(obs::names::kClusterEpochBumps);
  // Bucket bounds span hadron-node payloads (KiB..GiB) and simulated times
  // (us..minutes) on a log scale; the overflow bucket catches the rest.
  fetch_bytes_hist_ = &reg.histogram(
      obs::names::kClusterFetchBytes,
      {1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 4e9});
  victim_age_hist_ = &reg.histogram(
      obs::names::kClusterEvictionVictimAgeS,
      {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0});
  barrier_idle_hist_ = &reg.histogram(
      obs::names::kClusterBarrierIdleS,
      {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0});
  resolve_mem_instruments();
}

void ClusterSimulator::set_eviction_policy(const mem::EvictionPolicy* policy) {
  evict_policy_ = policy;
  metrics_.evict_policy = policy != nullptr ? policy->name() : "";
  resolve_mem_instruments();
}

void ClusterSimulator::resolve_mem_instruments() {
  mem_evictions_counter_ = nullptr;
  mem_evicted_bytes_counter_ = nullptr;
  mem_reuse_distance_hist_ = nullptr;
  // Registered only when BOTH a policy and telemetry are attached: the
  // policy-free default must leave registry snapshots untouched (the
  // byte-identity contract), and without a registry there is nowhere to
  // count into.
  if (telemetry_ == nullptr || evict_policy_ == nullptr) return;
  obs::MetricsRegistry& reg = telemetry_->registry;
  mem_evictions_counter_ = &reg.counter(obs::names::mem_policy_metric(
      obs::names::kMemEvictionsPrefix, evict_policy_->name()));
  mem_evicted_bytes_counter_ = &reg.counter(obs::names::mem_policy_metric(
      obs::names::kMemEvictedBytesPrefix, evict_policy_->name()));
  // Reuse distances exist only where future uses are tracked; the LRU
  // policy would observe nothing, so it gets no histogram either.
  if (evict_policy_->kind() != mem::EvictPolicyKind::kLru) {
    mem_reuse_distance_hist_ = &reg.histogram(
        obs::names::kMemReuseDistance, obs::names::reuse_distance_bounds());
  }
}

std::optional<double> ClusterSimulator::make_room(DeviceId dev,
                                                  std::uint64_t bytes,
                                                  EvictionCause cause) {
  DeviceState& d = device(dev);
  // A single tensor larger than the whole device can never fit; likewise a
  // request that outlives every unpinned victim. Both are recoverable
  // (kCapacityExceeded), reachable from user-supplied workloads.
  if (bytes > d.memory.capacity()) return std::nullopt;
  double cost = 0.0;
  while (!d.memory.fits(bytes)) {
    // Victim selection: the attached policy's pick, or — on the policy-free
    // default path — the legacy hard-coded LRU, untouched so default runs
    // stay byte-identical to pre-policy builds.
    std::optional<Eviction> ev;
    std::uint64_t reuse_distance = mem::kNoFutureUse;
    if (evict_policy_ != nullptr) {
      const std::optional<mem::VictimChoice> victim =
          evict_policy_->pick_victim(d.memory);
      if (!victim.has_value()) return std::nullopt;
      reuse_distance = victim->reuse_distance;
      ev = d.memory.evict(victim->id);
    } else {
      ev = d.memory.evict_lru();
      if (!ev.has_value()) return std::nullopt;
    }
    index_remove(ev->id, dev);
    ++metrics_.evictions;
    if (evict_policy_ != nullptr) {
      d.evicted_ever.insert(ev->id);
      if (mem_evictions_counter_ != nullptr) mem_evictions_counter_->add();
      if (mem_evicted_bytes_counter_ != nullptr) {
        mem_evicted_bytes_counter_->add(ev->bytes);
      }
      if (mem_reuse_distance_hist_ != nullptr &&
          reuse_distance != mem::kNoFutureUse) {
        mem_reuse_distance_hist_->observe(
            static_cast<double>(reuse_distance));
      }
    }
    cost += cost_model_.free_time();
    // Oversubscribed executions run UVM-style: an evicted frame migrates to
    // host memory whether or not it is dirty (pages move, they are not
    // dropped), which is what makes evictions the dominant cost of Fig. 11.
    const double eviction_cost =
        cost_model_.free_time() + cost_model_.d2h_time(ev->bytes);
    metrics_.writeback_bytes += ev->bytes;
    cost += cost_model_.d2h_time(ev->bytes);
    if (ev->dirty) ++metrics_.dirty_evictions;
    if (produced_.contains(ev->id)) host_copies_.insert(ev->id);
    if (observing()) {
      double age = 0.0;
      if (telemetry_ != nullptr) {
        const auto it = d.alloc_time.find(ev->id);
        if (it != d.alloc_time.end()) {
          age = std::max(0.0, busy_time(dev) - it->second);
          d.alloc_time.erase(it);
        }
      }
      pending_ops_.push_back(PendingOp{TraceEventKind::kEviction, ev->id,
                                       eviction_cost, ev->bytes, cause, age});
    }
  }
  return cost;
}

ClusterSimulator::FetchResult ClusterSimulator::fetch_operand(
    const TensorDesc& desc, DeviceId dev) {
  DeviceState& d = device(dev);
  FetchResult result;
  if (d.memory.resident(desc.id)) {
    d.memory.touch(desc.id);
    d.memory.pin(desc.id);
    ++metrics_.reused_operands;
    return result;
  }

  // Dataflow invariant: the payload must exist SOMEWHERE to be fetched.
  MICCO_ASSERT_MSG(host_resident(desc.id) || resident_anywhere(desc.id),
                   "fetch of a lost intermediate (no host or device copy)");

  const std::uint64_t bytes = desc.bytes();
  const std::optional<double> room =
      make_room(dev, bytes, EvictionCause::kOperandFetch);
  if (!room.has_value()) {
    result.status = FetchStatus::kCapacity;
    return result;
  }
  double cost = *room;
  cost += cost_model_.alloc_time();
  ++metrics_.allocations;

  // Prefer a peer copy over the host link when a replica exists and P2P is
  // enabled; the source device's timeline is not charged (DMA engines).
  // Reference stays valid: index_add for this fetch runs after the last read.
  const std::vector<DeviceId>& holders = devices_holding(desc.id);
  TraceEventKind fetch_kind;
  double transfer_cost = 0.0;
  if (config_.p2p_enabled && !holders.empty()) {
    // Prefer an intra-node replica; fall back to the inter-node link.
    const bool same_node = std::any_of(
        holders.begin(), holders.end(),
        [&](DeviceId holder) { return node_of(holder) == node_of(dev); });
    if (same_node) {
      transfer_cost = cost_model_.p2p_time(bytes);
      ++metrics_.p2p_transfers;
      metrics_.p2p_bytes += bytes;
    } else {
      transfer_cost = cost_model_.internode_time(bytes);
      ++metrics_.internode_transfers;
      metrics_.internode_bytes += bytes;
    }
    fetch_kind = TraceEventKind::kFetchP2P;
  } else {
    transfer_cost = cost_model_.h2d_time(bytes);
    ++metrics_.h2d_transfers;
    metrics_.h2d_bytes += bytes;
    fetch_kind = TraceEventKind::kFetchH2D;
  }

  // Transient transfer faults: each failed attempt wastes one full transfer
  // plus the policy's backoff (in simulated time). Exhausting the retry
  // budget is treated as the link being down — the caller escalates it to a
  // permanent device failure. The injector draws no randomness when the
  // fault probability is zero, keeping fault-free runs byte-identical.
  if (injector_ != nullptr && injector_->active()) {
    const RetryPolicy& policy = injector_->retry();
    for (int attempt = 1;; ++attempt) {
      if (!injector_->transfer_attempt_fails()) break;  // attempt succeeded
      ++metrics_.transfer_faults;
      if (attempt >= policy.max_attempts) {
        result.status = FetchStatus::kTransferGaveUp;
        result.cost_s = cost;
        return result;
      }
      const double backoff = policy.backoff(attempt);
      metrics_.retry_backoff_s += backoff;
      const double wasted = transfer_cost + backoff;
      cost += wasted;
      ++result.retries;
      if (observing()) {
        pending_ops_.push_back(PendingOp{TraceEventKind::kTransferRetry,
                                         desc.id, wasted, bytes});
      }
    }
  }
  cost += transfer_cost;

  if (observing()) {
    // fetch = alloc + the one successful transfer (wasted attempts were
    // already recorded as kTransferRetry ops above).
    pending_ops_.push_back(PendingOp{
        fetch_kind, desc.id, cost_model_.alloc_time() + transfer_cost, bytes});
  }

  d.memory.allocate(desc.id, bytes, /*dirty=*/false);
  d.memory.pin(desc.id);
  index_add(desc.id, dev);
  if (telemetry_ != nullptr) d.alloc_time[desc.id] = busy_time(dev);
  // Re-fetch of a tensor this run already evicted from this device: the
  // avoidable half of the eviction-caused transfer bill (policy runs only;
  // evicted_ever is not maintained on the legacy path).
  if (evict_policy_ != nullptr && d.evicted_ever.contains(desc.id)) {
    metrics_.eviction_refetch_bytes += bytes;
  }
  ++metrics_.fetched_operands;
  result.cost_s = cost;
  return result;
}

std::optional<double> ClusterSimulator::apply_capacity_faults(DeviceId dev,
                                                              double now_s) {
  const std::uint64_t lost = injector_->take_capacity_loss(dev, now_s);
  if (lost == 0) return 0.0;
  DeviceState& d = device(dev);
  ++metrics_.capacity_faults;
  d.capacity_faulted = true;
  const std::uint64_t old_cap = d.memory.capacity();
  // Clamp at one byte: a device that "lost" its whole memory fails on the
  // next allocation attempt (escalated to a device failure by execute()).
  const std::uint64_t new_cap = old_cap > lost ? old_cap - lost : 1;
  if (observing()) {
    pending_ops_.push_back(PendingOp{TraceEventKind::kCapacityLoss,
                                     kInvalidTensor, 0.0, old_cap - new_cap});
  }
  // Squeeze out whatever no longer fits (nothing is pinned at task start,
  // so this can only fail if the shrink itself is unsatisfiable).
  return shrink_to_capacity(dev, new_cap);
}

std::optional<double> ClusterSimulator::shrink_to_capacity(
    DeviceId dev, std::uint64_t new_capacity) {
  DeviceState& d = device(dev);
  // set_capacity tolerates growth with live residents (a healed fault);
  // make_room(0) is then a no-op and the extra bytes simply become
  // allocatable again.
  d.memory.set_capacity(new_capacity);
  const std::optional<double> cost =
      make_room(dev, 0, EvictionCause::kCapacityLoss);
  sync_device_mirror(dev);
  return cost;
}

ExecuteResult ClusterSimulator::execute(const ContractionTask& task,
                                        DeviceId dev) {
  ExecuteResult result = execute_impl(task, dev);
  sync_device_mirror(dev);
  return result;
}

ExecuteResult ClusterSimulator::execute_impl(const ContractionTask& task,
                                             DeviceId dev) {
  MICCO_EXPECTS(task.a.valid() && task.b.valid() && task.out.valid());
  DeviceState& d = device(dev);
  ExecuteResult result;

  pending_ops_.clear();
  double copy_cost = 0.0;
  const double projected_start = busy_time(dev);

  if (injector_ != nullptr) {
    // Defensive: schedulers must filter dead devices; if one slips through,
    // report the failure again instead of executing on a ghost.
    if (!d.alive) {
      result.outcome = TaskOutcome::kDeviceFailed;
      return result;
    }
    // Fail-on-next-use: a planned failure due at or before this task's
    // start fires now, before any work is charged.
    const std::optional<double> planned = injector_->failure_time(dev);
    if (planned.has_value() && *planned <= projected_start) {
      result.outcome = TaskOutcome::kDeviceFailed;
      result.lost_tensors = fail_device(dev, *planned);
      return result;
    }
    const std::optional<double> cap_cost =
        apply_capacity_faults(dev, projected_start);
    if (!cap_cost.has_value()) {
      result.outcome = TaskOutcome::kDeviceFailed;
      result.lost_tensors = fail_device(dev, projected_start);
      return result;
    }
    copy_cost += *cap_cost;
  }

  // Pin operands that are already resident before any eviction can run, so
  // making room for one operand never evicts the other. A task may use the
  // same tensor for both operands (self-contraction); pin it once.
  const bool same_operand = task.a.id == task.b.id;
  bool a_pinned = false;
  bool b_pinned = false;
  const auto unpin_held = [&] {
    if (a_pinned) d.memory.unpin(task.a.id);
    if (b_pinned && !same_operand) d.memory.unpin(task.b.id);
  };
  // Shared failure tail: a memory-exhaustion on a capacity-faulted device
  // and a retry-exhausted transfer both condemn the device (the hardware or
  // its link is gone); a plain capacity overflow is a structured error.
  const auto resolve_fetch_failure = [&](FetchStatus status) {
    unpin_held();
    if (status == FetchStatus::kCapacity && !d.capacity_faulted) {
      result.outcome = TaskOutcome::kCapacityExceeded;
      return;
    }
    ++metrics_.tasks_lost;
    result.outcome = TaskOutcome::kDeviceFailed;
    result.lost_tensors = fail_device(dev, projected_start);
  };

  const FetchResult fetch_a = fetch_operand(task.a, dev);
  result.transfer_retries += fetch_a.retries;
  copy_cost += fetch_a.cost_s;
  if (fetch_a.status != FetchStatus::kOk) {
    resolve_fetch_failure(fetch_a.status);
    return result;
  }
  a_pinned = true;
  if (!same_operand) {
    const FetchResult fetch_b = fetch_operand(task.b, dev);
    result.transfer_retries += fetch_b.retries;
    copy_cost += fetch_b.cost_s;
    if (fetch_b.status != FetchStatus::kOk) {
      resolve_fetch_failure(fetch_b.status);
      return result;
    }
    b_pinned = true;
  }

  // Output allocation (kernels never run in place).
  MICCO_EXPECTS_MSG(!d.memory.resident(task.out.id),
                    "output tensor already resident on target device");
  const std::uint64_t out_bytes = task.out.bytes();
  const std::optional<double> out_room =
      make_room(dev, out_bytes, EvictionCause::kOutputAlloc);
  if (!out_room.has_value()) {
    resolve_fetch_failure(FetchStatus::kCapacity);
    return result;
  }
  copy_cost += *out_room;
  copy_cost += cost_model_.alloc_time();
  if (observing()) {
    pending_ops_.push_back(PendingOp{TraceEventKind::kOutputAlloc,
                                     task.out.id, cost_model_.alloc_time(),
                                     out_bytes});
  }
  d.memory.allocate(task.out.id, out_bytes, /*dirty=*/true);
  index_add(task.out.id, dev);
  if (telemetry_ != nullptr) d.alloc_time[task.out.id] = busy_time(dev);
  ++metrics_.allocations;

  double kernel_cost = cost_model_.kernel_time(task);

  // Straggler injection: stretch this task's copy and kernel work by the
  // configured factor (pending-op durations too, so traces stay consistent).
  if (injector_ != nullptr) {
    const double factor = injector_->slowdown(dev, projected_start);
    if (factor != 1.0) {
      copy_cost *= factor;
      kernel_cost *= factor;
      for (PendingOp& op : pending_ops_) op.duration_s *= factor;
    }
  }

  double copy_window_start = 0.0;
  double kernel_start = 0.0;
  double copy_done = 0.0;
  double compute_done = 0.0;
  if (config_.overlap_transfers) {
    // Dual-engine model: the copy engine streams operands while the compute
    // engine may still be working on the previous kernel.
    copy_window_start = d.copy_free_s;
    copy_done = d.copy_free_s + copy_cost;
    kernel_start = std::max(d.compute_free_s, copy_done);
    compute_done = kernel_start + kernel_cost;
  } else {
    // The evaluated system issues copies and kernels on one stream.
    const double start = std::max(d.compute_free_s, d.copy_free_s);
    copy_window_start = start;
    kernel_start = start + copy_cost;
    compute_done = start + copy_cost + kernel_cost;
    copy_done = compute_done;
  }

  // Mid-task failure: the planned loss strikes while this task is in
  // flight. Nothing is committed — the attempt is lost and the device dies
  // at its planned instant.
  if (injector_ != nullptr) {
    const std::optional<double> planned = injector_->failure_time(dev);
    if (planned.has_value() && *planned < compute_done) {
      ++metrics_.tasks_lost;
      unpin_held();
      result.outcome = TaskOutcome::kDeviceFailed;
      result.lost_tensors = fail_device(dev, *planned);
      return result;
    }
  }

  d.copy_free_s = copy_done;
  d.compute_free_s = compute_done;

  if (observing()) {
    emit_task_events(dev, task, copy_window_start, kernel_start, kernel_cost);
  }

  unpin_held();
  produced_.insert(task.out.id);

  d.work_s += copy_cost + kernel_cost;
  metrics_.total_flops += task.flops();
  metrics_.kernel_time_s += kernel_cost;
  metrics_.transfer_time_s += copy_cost;
  metrics_.makespan_s = std::max(metrics_.makespan_s, busy_time(dev));
  return result;
}

std::vector<TensorId> ClusterSimulator::fail_device(DeviceId dev,
                                                    double at_s) {
  DeviceState& d = device(dev);
  if (!d.alive) return {};
  d.alive = false;
  // Freeze the timelines at the failure instant; the device contributes no
  // further simulated time (never advance them past work already booked).
  d.compute_free_s = std::min(d.compute_free_s, at_s);
  d.copy_free_s = std::min(d.copy_free_s, at_s);

  const std::vector<TensorId> resident = d.memory.resident_ids();
  for (const TensorId id : resident) {
    d.memory.release(id);
    index_remove(id, dev);
  }
  d.alloc_time.clear();

  // A produced tensor with no host copy and no surviving replica died with
  // the device; its producer must be re-executed (lineage recovery).
  // `resident` comes back sorted from resident_ids(), so `lost` is built in
  // ascending id order; the sort stays as a cheap belt-and-braces guarantee
  // for the recovery path's determinism contract.
  std::vector<TensorId> lost;
  for (const TensorId id : resident) {
    if (produced_.contains(id) && !host_copies_.contains(id) &&
        !resident_anywhere(id)) {
      lost.push_back(id);
    }
  }
  std::sort(lost.begin(), lost.end());

  ++metrics_.devices_lost;
  sync_device_mirror(dev);
  if (injector_ != nullptr) injector_->mark_failed(dev);
  if (trace_ != nullptr) {
    trace_->record(
        TraceEvent{TraceEventKind::kDeviceFailure, dev, kInvalidTensor, at_s,
                   0.0});
  }
  if (telemetry_ != nullptr) {
    obs::ClusterEvent ev;
    ev.kind = obs::ClusterEventKind::kDeviceFailure;
    ev.device = dev;
    ev.time_s = at_s;
    ev.count = static_cast<std::int64_t>(lost.size());
    telemetry_->emit(ev);
  }
  return lost;
}

BarrierFailures ClusterSimulator::take_barrier_failures() {
  BarrierFailures out = std::move(barrier_failures_);
  barrier_failures_ = BarrierFailures{};
  return out;
}

void ClusterSimulator::emit_task_events(DeviceId dev,
                                        const ContractionTask& task,
                                        double copy_window_start,
                                        double kernel_start,
                                        double kernel_cost) {
  // Memory operations run back-to-back in the copy window; the kernel
  // follows (or overlaps, in dual-engine mode).
  double cursor = copy_window_start;
  for (const PendingOp& op : pending_ops_) {
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{op.kind, dev, op.tensor, cursor,
                                op.duration_s, op.bytes, op.cause});
    }
    if (telemetry_ != nullptr &&
        op.kind != TraceEventKind::kOutputAlloc) {  // allocs stay trace-only
      obs::ClusterEvent ev;
      ev.device = dev;
      ev.tensor = op.tensor;
      ev.bytes = op.bytes;
      ev.time_s = cursor + op.duration_s;
      ev.duration_s = op.duration_s;
      if (op.kind == TraceEventKind::kEviction) {
        victim_age_hist_->observe(op.victim_age_s);
        ev.kind = obs::ClusterEventKind::kEviction;
        // With a policy attached, the event detail carries "<cause>/<policy>"
        // so traces attribute every eviction to the policy that chose the
        // victim; the policy-free default keeps the bare cause (byte-identity).
        ev.detail = to_string(op.cause);
        if (evict_policy_ != nullptr) {
          ev.detail += std::string("/") + evict_policy_->name();
        }
        ev.victim_age_s = op.victim_age_s;
      } else if (op.kind == TraceEventKind::kTransferRetry) {
        ev.kind = obs::ClusterEventKind::kTransferRetry;
        ev.detail = "transient";
      } else if (op.kind == TraceEventKind::kCapacityLoss) {
        ev.kind = obs::ClusterEventKind::kCapacityLoss;
      } else {
        fetch_bytes_hist_->observe(static_cast<double>(op.bytes));
        ev.kind = obs::ClusterEventKind::kFetch;
        ev.detail = op.kind == TraceEventKind::kFetchH2D ? "h2d" : "p2p";
      }
      telemetry_->emit(ev);
    }
    cursor += op.duration_s;
  }
  if (trace_ != nullptr) {
    trace_->record(TraceEvent{TraceEventKind::kKernel, dev, task.out.id,
                              kernel_start, kernel_cost, task.kernel_bytes()});
  }
}

void ClusterSimulator::barrier() {
  // Proactive failure sweep: a device whose planned failure time falls
  // inside the stage that just ended is declared dead here even if no task
  // touched it after the fault (fail-on-next-use would otherwise let it
  // linger). The pipeline drains take_barrier_failures() for recovery.
  if (injector_ != nullptr) {
    double t_due = 0.0;
    for (int dev = 0; dev < num_devices(); ++dev) {
      if (device(dev).alive) t_due = std::max(t_due, busy_time(dev));
    }
    for (int dev = 0; dev < num_devices(); ++dev) {
      if (!device(dev).alive) continue;
      const std::optional<double> planned = injector_->failure_time(dev);
      if (planned.has_value() && *planned <= t_due) {
        std::vector<TensorId> lost = fail_device(dev, *planned);
        barrier_failures_.devices.push_back(dev);
        barrier_failures_.lost_tensors.insert(
            barrier_failures_.lost_tensors.end(), lost.begin(), lost.end());
      }
    }
  }

  double t_max = 0.0;
  for (int dev = 0; dev < num_devices(); ++dev) {
    if (!device(dev).alive) continue;
    t_max = std::max(t_max, busy_time(dev));
  }
  for (int dev = 0; dev < num_devices(); ++dev) {
    DeviceState& d = devices_[static_cast<std::size_t>(dev)];
    if (!d.alive) continue;  // dead devices neither sync nor count as idle
    const double busy = std::max(d.compute_free_s, d.copy_free_s);
    metrics_.barrier_idle_s += t_max - busy;
    if (trace_ != nullptr && t_max > busy) {
      trace_->record(TraceEvent{TraceEventKind::kBarrier, dev,
                                kInvalidTensor, busy, t_max - busy});
    }
    if (telemetry_ != nullptr) {
      barrier_idle_hist_->observe(t_max - busy);
      if (t_max > busy) {
        obs::ClusterEvent idle;
        idle.kind = obs::ClusterEventKind::kBarrier;
        idle.device = dev;
        idle.time_s = t_max;
        idle.duration_s = t_max - busy;
        telemetry_->emit(idle);
      }
    }
    d.compute_free_s = t_max;
    d.copy_free_s = t_max;
    sync_device_mirror(dev);
  }
  metrics_.makespan_s = std::max(metrics_.makespan_s, t_max);
}

void ClusterSimulator::discard(TensorId id) {
  // Copy: index_remove below edits the very entry the reference aliases.
  const std::vector<DeviceId> holders = devices_holding(id);
  for (const DeviceId dev : holders) {
    DeviceState& d = device(dev);
    d.memory.release(id);
    d.alloc_time.erase(id);
    index_remove(id, dev);
    const double start = std::max(d.compute_free_s, d.copy_free_s);
    d.compute_free_s = start + cost_model_.free_time();
    d.copy_free_s = d.compute_free_s;
    sync_device_mirror(dev);
  }
}

obs::JsonValue to_json(const ExecutionMetrics& m) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("makespan_s", m.makespan_s);
  out.set("total_flops", m.total_flops);
  out.set("h2d_transfers", m.h2d_transfers);
  out.set("h2d_bytes", m.h2d_bytes);
  out.set("p2p_transfers", m.p2p_transfers);
  out.set("p2p_bytes", m.p2p_bytes);
  out.set("internode_transfers", m.internode_transfers);
  out.set("internode_bytes", m.internode_bytes);
  out.set("writeback_bytes", m.writeback_bytes);
  out.set("allocations", m.allocations);
  out.set("evictions", m.evictions);
  out.set("dirty_evictions", m.dirty_evictions);
  out.set("reused_operands", m.reused_operands);
  out.set("fetched_operands", m.fetched_operands);
  out.set("barrier_idle_s", m.barrier_idle_s);
  out.set("kernel_time_s", m.kernel_time_s);
  out.set("transfer_time_s", m.transfer_time_s);
  // Eviction-policy fields appear only when a policy was attached: the
  // policy-free default must serialise byte-identically to reports from
  // before the mem/ subsystem existed.
  if (!m.evict_policy.empty()) {
    out.set("evict_policy", m.evict_policy);
    out.set("eviction_refetch_bytes", m.eviction_refetch_bytes);
  }
  // Fault counters appear only when a fault actually fired: fault-free runs
  // must serialise byte-identically to reports from before the fault model.
  if (m.any_faults()) {
    out.set("transfer_faults", m.transfer_faults);
    out.set("retry_backoff_s", m.retry_backoff_s);
    out.set("devices_lost", m.devices_lost);
    out.set("tasks_lost", m.tasks_lost);
    out.set("capacity_faults", m.capacity_faults);
  }
  return out;
}

std::vector<double> ClusterSimulator::utilization() const {
  std::vector<double> result;
  result.reserve(devices_.size());
  const double makespan = metrics_.makespan_s;
  for (const DeviceState& d : devices_) {
    result.push_back(makespan > 0.0 ? d.work_s / makespan : 0.0);
  }
  return result;
}

}  // namespace micco
