// Execution tracing.
//
// Optionally attached to the cluster simulator, the recorder captures every
// priced event (operand fetches, output allocations, eviction write-backs,
// kernels, barriers) with its device and simulated time interval. Traces
// export to the Chrome trace-event JSON format (chrome://tracing, Perfetto)
// so a schedule's timeline — the load imbalance and transfer storms the
// paper's figures aggregate — can be inspected visually.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace micco {

enum class TraceEventKind : std::uint8_t {
  kFetchH2D,
  kFetchP2P,
  kOutputAlloc,
  kEviction,
  kKernel,
  kBarrier,
  kTransferRetry,   ///< wasted transfer attempt + backoff (fault injection)
  kDeviceFailure,   ///< permanent device loss detected (zero duration)
  kCapacityLoss,    ///< spurious capacity shrink applied to a device
};

const char* to_string(TraceEventKind kind);

/// What forced an eviction (carried as Perfetto `args.cause`).
enum class EvictionCause : std::uint8_t {
  kNone,         ///< not an eviction event
  kOperandFetch, ///< making room for an incoming operand
  kOutputAlloc,  ///< making room for the kernel's output
  kCapacityLoss, ///< usage squeezed out by a spurious capacity-loss fault
};

const char* to_string(EvictionCause cause);

struct TraceEvent {
  TraceEventKind kind;
  int device = -1;
  TensorId tensor = kInvalidTensor;  ///< operand/output/victim; unused: barrier
  double start_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t bytes = 0;           ///< payload moved/freed (0: none)
  EvictionCause cause = EvictionCause::kNone;  ///< eviction events only
};

/// Per-kind aggregate used by trace summaries and tests.
struct TraceSummary {
  std::size_t count = 0;
  double total_s = 0.0;
};

class TraceRecorder {
 public:
  void record(TraceEvent event) { events_.push_back(event); }
  void clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Aggregate duration/count for one event kind.
  TraceSummary summarize(TraceEventKind kind) const;

  /// Events overlapping [from_s, to_s), preserving order.
  std::vector<TraceEvent> window(double from_s, double to_s) const;

  /// Chrome trace-event JSON ("traceEvents" array of X-phase events, one
  /// track per device). Times are emitted in microseconds as the format
  /// requires.
  void write_chrome_json(std::ostream& out) const;

  /// Convenience: writes the JSON to a file; aborts on I/O failure.
  void write_chrome_json_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace micco
