#include "gpusim/memory.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace micco {

DeviceMemory::DeviceMemory(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  MICCO_EXPECTS(capacity_bytes > 0);
}

DeviceMemory::DeviceMemory(const DeviceMemory& other)
    : capacity_(other.capacity_), used_(other.used_), lru_(other.lru_) {
  // Entries must point into OUR list, not the source's.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Entry entry = other.entries_.at(*it);
    entry.lru_pos = it;
    entries_.emplace(*it, entry);
  }
}

DeviceMemory& DeviceMemory::operator=(const DeviceMemory& other) {
  if (this == &other) return *this;
  DeviceMemory copy(other);
  capacity_ = copy.capacity_;
  used_ = copy.used_;
  lru_ = std::move(copy.lru_);
  entries_ = std::move(copy.entries_);
  return *this;
}

void DeviceMemory::allocate(TensorId id, std::uint64_t bytes, bool dirty) {
  MICCO_EXPECTS_MSG(!resident(id), "double allocation of a tensor");
  MICCO_EXPECTS_MSG(fits(bytes), "allocate() requires prior eviction");
  lru_.push_back(id);
  Entry entry;
  entry.bytes = bytes;
  entry.dirty = dirty;
  entry.pinned = false;
  entry.lru_pos = std::prev(lru_.end());
  entries_.emplace(id, entry);
  used_ += bytes;
}

void DeviceMemory::release(TensorId id) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS_MSG(it != entries_.end(), "release of a non-resident tensor");
  used_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void DeviceMemory::touch(TensorId id) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS_MSG(it != entries_.end(), "touch of a non-resident tensor");
  lru_.erase(it->second.lru_pos);
  lru_.push_back(id);
  it->second.lru_pos = std::prev(lru_.end());
}

void DeviceMemory::set_dirty(TensorId id, bool dirty) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS(it != entries_.end());
  it->second.dirty = dirty;
}

bool DeviceMemory::is_dirty(TensorId id) const {
  const auto it = entries_.find(id);
  MICCO_EXPECTS(it != entries_.end());
  return it->second.dirty;
}

void DeviceMemory::pin(TensorId id) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS(it != entries_.end());
  it->second.pinned = true;
}

void DeviceMemory::unpin(TensorId id) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS(it != entries_.end());
  it->second.pinned = false;
}

std::optional<Eviction> DeviceMemory::evict_lru() {
  for (const TensorId id : lru_) {
    const Entry& entry = entries_.at(id);
    if (entry.pinned) continue;
    Eviction ev{id, entry.bytes, entry.dirty};
    release(id);
    return ev;
  }
  return std::nullopt;
}

Eviction DeviceMemory::evict(TensorId id) {
  const auto it = entries_.find(id);
  MICCO_EXPECTS_MSG(it != entries_.end(), "eviction of a non-resident tensor");
  MICCO_EXPECTS_MSG(!it->second.pinned, "eviction of a pinned tensor");
  Eviction ev{id, it->second.bytes, it->second.dirty};
  release(id);
  return ev;
}

std::vector<TensorId> DeviceMemory::resident_ids() const {
  std::vector<TensorId> ids;
  ids.reserve(entries_.size());
  // entries_ is a hash map; its iteration order is unspecified and must not
  // escape this class (determinism gate, DESIGN.md §5e). Sorting here, at
  // the emission point, keeps every consumer — failure-path lost-tensor
  // accounting, residency rebuilds, tests — independent of hash layout.
  for (const auto& [id, entry] : entries_) {
    (void)entry;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace micco
