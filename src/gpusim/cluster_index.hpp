// Incremental cluster-state index (DESIGN.md §9).
//
// The scheduler hot path used to re-derive residency, load and headroom from
// the simulator's hash maps for every tensor pair. ClusterIndex keeps that
// state as O(1)-updated flat structures maintained *as deltas* by the
// cluster's own mutation points (place on fetch/alloc, remove on
// evict/failure/discard, device mirrors re-synced after every execute,
// barrier, failure and discard):
//
//   * Per-tensor residency: the holder list in insertion order (candidate
//     enumeration order is part of the decision-log byte-identity contract)
//     plus a device bitmask for O(1) membership tests, and a **residency
//     epoch** stamped from a global monotonic counter on every place and
//     remove. Anything derived from a tensor's holder set (the reuse-pattern
//     cache) is valid exactly as long as the tensor's epoch is unchanged —
//     evictions, device failures and discards all bump it, which is the
//     whole invalidation protocol.
//   * Per-device SoA mirrors: busy time, memory used/capacity and an alive
//     bitmask in parallel flat arrays, so candidate selection runs
//     branch-light over contiguous doubles instead of virtual calls.
//
// The index stores ids densely (TensorIds are assigned sequentially from 0
// by every generator) with a hash-map spill for pathological ids, and is
// plain-copyable: the oracle clones whole simulators per candidate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "workload/task.hpp"

namespace micco {

using DeviceId = int;
constexpr DeviceId kNoDevice = -1;

class ClusterIndex {
 public:
  /// Residency record of one tensor. Entries persist after the last replica
  /// is removed (empty holders) so the epoch keeps counting across
  /// re-placements — a cache keyed on (id, epoch) must never see an epoch
  /// reset to a previously issued value.
  struct Residency {
    /// Holder devices in insertion (placement) order; schedulers enumerate
    /// candidates in exactly this order.
    std::vector<DeviceId> holders;
    /// Value of the global epoch counter at this tensor's last residency
    /// change; 0 only for tensors never placed.
    std::uint64_t epoch = 0;
    /// Membership bitmask over device ids: word 0 inline (the common
    /// numGPU <= 64 case stays allocation-free), further words spilled.
    std::uint64_t mask0 = 0;
    std::vector<std::uint64_t> mask_ext;

    bool holds(DeviceId dev) const {
      const auto bit = static_cast<std::size_t>(dev);
      if (bit < 64) return ((mask0 >> bit) & 1ULL) != 0;
      const std::size_t word = bit / 64 - 1;
      return word < mask_ext.size() &&
             ((mask_ext[word] >> (bit % 64)) & 1ULL) != 0;
    }
  };

  explicit ClusterIndex(int num_devices);

  int num_devices() const { return num_devices_; }

  // -- Residency deltas --------------------------------------------------
  /// Records a new replica of `id` on `dev` (must not already hold it) and
  /// bumps the tensor's epoch.
  void place(TensorId id, DeviceId dev);

  /// Drops the replica of `id` on `dev` (must hold it) and bumps the
  /// tensor's epoch. The entry survives with an empty holder list.
  void remove(TensorId id, DeviceId dev);

  /// The tensor's residency record, or nullptr when it was never placed.
  const Residency* find(TensorId id) const;

  /// Holder list (empty static vector when never placed / not resident).
  const std::vector<DeviceId>& holders(TensorId id) const;

  bool holds(DeviceId dev, TensorId id) const {
    MICCO_EXPECTS(dev >= 0 && dev < num_devices_);
    const Residency* res = find(id);
    return res != nullptr && res->holds(dev);
  }

  bool resident_anywhere(TensorId id) const {
    const Residency* res = find(id);
    return res != nullptr && !res->holders.empty();
  }

  /// Epoch of the tensor's last residency change (0: never placed). The
  /// pattern cache keys on this.
  std::uint64_t tensor_epoch(TensorId id) const {
    const Residency* res = find(id);
    return res == nullptr ? 0 : res->epoch;
  }

  /// Total residency changes ever applied; also the largest epoch issued.
  /// Exported as the cluster.index.epoch_bumps counter.
  std::uint64_t epoch_bumps() const { return global_epoch_; }

  // -- Per-device mirrors (synced by the owning cluster) ------------------
  void set_busy(DeviceId dev, double busy_s) {
    busy_[checked(dev)] = busy_s;
  }
  void set_memory(DeviceId dev, std::uint64_t used, std::uint64_t capacity) {
    mem_used_[checked(dev)] = used;
    mem_capacity_[checked(dev)] = capacity;
  }
  void set_alive(DeviceId dev, bool alive);

  double busy(DeviceId dev) const { return busy_[checked(dev)]; }
  std::uint64_t memory_used(DeviceId dev) const {
    return mem_used_[checked(dev)];
  }
  std::uint64_t memory_capacity(DeviceId dev) const {
    return mem_capacity_[checked(dev)];
  }
  bool alive(DeviceId dev) const {
    const auto bit = static_cast<std::size_t>(checked(dev));
    return ((alive_mask_[bit / 64] >> (bit % 64)) & 1ULL) != 0;
  }
  int num_alive() const { return num_alive_; }

  /// Raw flat arrays for the scheduler's SoA selection scan.
  const double* busy_data() const { return busy_.data(); }
  const std::uint64_t* memory_used_data() const { return mem_used_.data(); }
  const std::uint64_t* memory_capacity_data() const {
    return mem_capacity_.data();
  }
  /// Alive devices as bitmask words (bit d%64 of word d/64); iterating set
  /// bits yields devices in ascending id order, matching the reference
  /// path's `for (dev = 0; ...)` enumeration.
  const std::vector<std::uint64_t>& alive_mask() const { return alive_mask_; }

 private:
  /// Ids below this are stored in the dense table (generators assign ids
  /// sequentially from 0, so in practice everything lands here).
  static constexpr std::uint64_t kDenseLimit = 1ULL << 20;

  std::size_t checked(DeviceId dev) const {
    MICCO_EXPECTS(dev >= 0 && dev < num_devices_);
    return static_cast<std::size_t>(dev);
  }

  Residency& entry(TensorId id);

  int num_devices_ = 0;
  std::uint64_t global_epoch_ = 0;
  std::vector<Residency> dense_;                    ///< ids < kDenseLimit
  std::unordered_map<TensorId, Residency> sparse_;  ///< spill for huge ids
  std::vector<double> busy_;
  std::vector<std::uint64_t> mem_used_;
  std::vector<std::uint64_t> mem_capacity_;
  std::vector<std::uint64_t> alive_mask_;
  int num_alive_ = 0;
};

}  // namespace micco
