// Per-device memory manager.
//
// Tracks which tensors are resident in one simulated device memory, with
// capacity accounting, pinning (current kernel operands must not be evicted
// from under the kernel) and LRU victim selection for the oversubscription
// experiments (Fig. 11). Dirty tensors (kernel outputs not yet on the host)
// must be written back on eviction; clean cached inputs can be dropped.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "workload/task.hpp"

namespace micco {

/// Outcome of one eviction: what was removed and whether write-back applies.
struct Eviction {
  TensorId id = kInvalidTensor;
  std::uint64_t bytes = 0;
  bool dirty = false;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes);

  // Deep copies rebuild the LRU iterators held inside entries (the oracle
  // search clones whole simulators per candidate assignment).
  DeviceMemory(const DeviceMemory& other);
  DeviceMemory& operator=(const DeviceMemory& other);
  DeviceMemory(DeviceMemory&&) = default;
  DeviceMemory& operator=(DeviceMemory&&) = default;
  ~DeviceMemory() = default;

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  /// Zero while the device is over-committed (a capacity fault can shrink
  /// capacity below the current usage until evictions catch up).
  std::uint64_t free_bytes() const {
    return capacity_ > used_ ? capacity_ - used_ : 0;
  }

  /// Resizes usable capacity in either direction. Shrinking (spurious
  /// capacity-loss faults) may leave usage transiently above the new
  /// capacity; the owner must evict until fits() holds again before
  /// allocating. Growing (a healed fault restoring memory) is always legal,
  /// even with live residents from the shrunken era — residency, LRU order
  /// and pins are untouched, the extra bytes simply become allocatable.
  void set_capacity(std::uint64_t capacity_bytes) {
    MICCO_EXPECTS(capacity_bytes > 0);
    capacity_ = capacity_bytes;
  }

  bool resident(TensorId id) const { return entries_.contains(id); }
  std::size_t resident_count() const { return entries_.size(); }

  /// True when `bytes` more can be allocated without eviction.
  bool fits(std::uint64_t bytes) const { return used_ + bytes <= capacity_; }

  /// Allocates a tensor (must not already be resident, must fit). Newly
  /// allocated tensors are the most recently used.
  void allocate(TensorId id, std::uint64_t bytes, bool dirty);

  /// Releases a resident tensor.
  void release(TensorId id);

  /// Marks a resident tensor as most recently used (a kernel touched it).
  void touch(TensorId id);

  /// Marks a resident tensor dirty (it became a kernel output) or clean
  /// (it was written back to the host).
  void set_dirty(TensorId id, bool dirty);
  bool is_dirty(TensorId id) const;

  /// Pins/unpins a tensor against eviction for the duration of a kernel.
  void pin(TensorId id);
  void unpin(TensorId id);

  /// Evicts the least-recently-used unpinned tensor. Returns nullopt when
  /// every resident tensor is pinned (caller must treat this as a scheduling
  /// bug: a single task's working set exceeded device capacity).
  std::optional<Eviction> evict_lru();

  /// Evicts a specific resident tensor — the victim an eviction policy
  /// (src/mem/) selected. The tensor must be resident and unpinned.
  Eviction evict(TensorId id);

  // -- read-only views for eviction policies (src/mem/) -------------------
  /// Residents in recency order, least recently used at the front. The
  /// reference stays valid until the next mutation; policies read it within
  /// one pick_victim() call. Iteration order is deterministic (a list
  /// maintained by touch/allocate, never a hash map).
  const std::list<TensorId>& lru_order() const { return lru_; }
  bool pinned(TensorId id) const { return entries_.at(id).pinned; }
  std::uint64_t bytes_of(TensorId id) const { return entries_.at(id).bytes; }

  /// All resident tensor ids in ascending id order (sorted at the emission
  /// point so the backing hash map's layout never leaks into lost-tensor
  /// accounting, residency rebuilds or reports); used by tests and by the
  /// cluster's failure handling.
  std::vector<TensorId> resident_ids() const;

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    bool dirty = false;
    bool pinned = false;
    std::list<TensorId>::iterator lru_pos;  // position in lru_ (front = LRU)
  };

  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::list<TensorId> lru_;  // least recently used at the front
  std::unordered_map<TensorId, Entry> entries_;
};

}  // namespace micco
