#include "gpusim/cost_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace micco {

namespace {
constexpr double kGiga = 1.0e9;
}

CostModel::CostModel(CostModelConfig config) : config_(config) {
  MICCO_EXPECTS(config_.peak_gflops > 0.0);
  MICCO_EXPECTS(config_.sustained_fraction > 0.0 &&
                config_.sustained_fraction <= 1.0);
  MICCO_EXPECTS(config_.saturating_extent >= 1);
  MICCO_EXPECTS(config_.min_occupancy > 0.0 && config_.min_occupancy <= 1.0);
  MICCO_EXPECTS(config_.hbm_bandwidth_gbs > 0.0);
  MICCO_EXPECTS(config_.h2d_bandwidth_gbs > 0.0);
  MICCO_EXPECTS(config_.d2h_bandwidth_gbs > 0.0);
  MICCO_EXPECTS(config_.p2p_bandwidth_gbs > 0.0);
  MICCO_EXPECTS(config_.internode_bandwidth_gbs > 0.0);
}

double CostModel::occupancy(std::int64_t extent) const {
  MICCO_EXPECTS(extent >= 1);
  const double ratio = static_cast<double>(extent) /
                       static_cast<double>(config_.saturating_extent);
  return std::clamp(ratio, config_.min_occupancy, 1.0);
}

double CostModel::kernel_time(const ContractionTask& task) const {
  const double flops = static_cast<double>(task.flops());
  const double bytes = static_cast<double>(task.kernel_bytes());

  const double effective_rate = config_.peak_gflops * kGiga *
                                config_.sustained_fraction *
                                occupancy(task.a.extent);
  const double compute_time = flops / effective_rate;
  const double memory_time = bytes / (config_.hbm_bandwidth_gbs * kGiga);
  return std::max(compute_time, memory_time) + config_.kernel_launch_latency_s;
}

double CostModel::h2d_time(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / (config_.h2d_bandwidth_gbs * kGiga) +
         config_.transfer_latency_s;
}

double CostModel::d2h_time(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / (config_.d2h_bandwidth_gbs * kGiga) +
         config_.transfer_latency_s;
}

double CostModel::p2p_time(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / (config_.p2p_bandwidth_gbs * kGiga) +
         config_.transfer_latency_s;
}

double CostModel::internode_time(std::uint64_t bytes) const {
  return static_cast<double>(bytes) /
             (config_.internode_bandwidth_gbs * kGiga) +
         config_.transfer_latency_s;
}

double CostModel::alloc_time() const { return config_.alloc_latency_s; }

double CostModel::free_time() const { return config_.free_latency_s; }

}  // namespace micco
