#include "graph/contraction_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/assert.hpp"

namespace micco {

// ---------------------------------------------------------- NodeRegistry --

NodeRegistry::NodeRegistry(std::int64_t extent, std::int64_t batch, int rank)
    : extent_(extent), batch_(batch), rank_(rank) {
  MICCO_EXPECTS(extent >= 1);
  MICCO_EXPECTS(batch >= 1);
  MICCO_EXPECTS(rank == 2 || rank == 3);
}

TensorDesc NodeRegistry::original(const NodeKey& key) {
  return original(key, rank_);
}

TensorDesc NodeRegistry::original(const NodeKey& key, int rank) {
  MICCO_EXPECTS(rank == 2 || rank == 3);
  const auto it = originals_.find(key);
  if (it != originals_.end()) {
    MICCO_EXPECTS_MSG(it->second.rank == rank,
                      "hadron node re-interned with a different rank");
    return it->second;
  }
  const TensorDesc desc{next_id_++, rank, extent_, batch_};
  originals_.emplace(key, desc);
  node_ranks_.emplace(desc.id, rank);
  return desc;
}

int NodeRegistry::rank_of(TensorId id) const {
  const auto it = node_ranks_.find(id);
  MICCO_EXPECTS_MSG(it != node_ranks_.end(), "rank_of: unknown tensor");
  return it->second;
}

TensorDesc NodeRegistry::intermediate(TensorId a, TensorId b) {
  const auto key = std::minmax(a, b);
  const auto it = intermediates_.find(key);
  if (it != intermediates_.end()) return it->second;
  // The result rank follows the contraction rules: meson x meson and the
  // baryon double contraction emit matrices; mixed contractions keep one
  // baryon line open.
  const int rank = contraction_result_rank(rank_of(a), rank_of(b));
  const TensorDesc desc{next_id_++, rank, extent_, batch_};
  intermediates_.emplace(key, desc);
  node_ranks_.emplace(desc.id, rank);
  return desc;
}

bool NodeRegistry::has_intermediate(TensorId a, TensorId b) const {
  return intermediates_.contains(std::minmax(a, b));
}

// ------------------------------------------------------ ContractionGraph --

std::size_t ContractionGraph::add_node(TensorDesc desc) {
  MICCO_EXPECTS(desc.valid());
  nodes_.push_back(desc);
  return nodes_.size() - 1;
}

void ContractionGraph::add_edge(std::size_t u, std::size_t v) {
  MICCO_EXPECTS(u < nodes_.size() && v < nodes_.size());
  MICCO_EXPECTS_MSG(u != v, "self-loop edges are not representable");
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool ContractionGraph::connected() const {
  if (nodes_.empty()) return false;
  if (nodes_.size() == 1) return true;
  std::vector<std::vector<std::size_t>> adj(nodes_.size());
  for (const auto& [u, v] : edges_) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (const std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == nodes_.size();
}

std::string ContractionGraph::signature() const {
  std::vector<std::pair<TensorId, TensorId>> edge_ids;
  edge_ids.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    edge_ids.push_back(std::minmax(nodes_[u].id, nodes_[v].id));
  }
  std::sort(edge_ids.begin(), edge_ids.end());

  std::vector<TensorId> node_ids;
  node_ids.reserve(nodes_.size());
  for (const TensorDesc& n : nodes_) node_ids.push_back(n.id);
  std::sort(node_ids.begin(), node_ids.end());

  std::ostringstream os;
  os << "N:";
  for (const TensorId id : node_ids) os << id << ",";
  os << "E:";
  for (const auto& [a, b] : edge_ids) os << a << "-" << b << ",";
  return os.str();
}

std::string ContractionGraph::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << "graph \"" << name << "\" {\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    os << "  n" << i << " [label=\"T" << nodes_[i].id << "\"];\n";
  }
  for (const auto& [u, v] : edges_) {
    os << "  n" << u << " -- n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

// ---------------------------------------------------- ContractionPlanner --

void ContractionPlanner::add_graph(const ContractionGraph& graph) {
  // Live reduction state: tensor + the stage from which it is usable.
  struct Live {
    TensorDesc desc;
    int usable_from = 0;
  };
  std::vector<Live> live;
  live.reserve(graph.node_count());
  for (const TensorDesc& n : graph.nodes()) {
    const auto it = ready_stage_.find(n.id);
    live.push_back(Live{n, it == ready_stage_.end() ? 0 : it->second});
    ready_stage_.try_emplace(n.id, 0);
  }
  // Edges over live-node indices; multi-edges collapse on contraction.
  std::vector<std::pair<std::size_t, std::size_t>> edges = graph.edges();

  // Reduce edges until the diagram is fully evaluated. The final
  // contraction of the last two nodes is the correlator-producing hadron
  // contraction and is planned like any other.
  while (live.size() >= 2 && !edges.empty()) {
    // Deterministic greedy pick: the edge whose contraction becomes ready
    // earliest; ties break on the smaller (then larger) operand TensorId.
    std::size_t best_edge = 0;
    auto edge_key = [&](std::size_t e) {
      const auto& [u, v] = edges[e];
      const int stage = std::max(live[u].usable_from, live[v].usable_from);
      const auto ids = std::minmax(live[u].desc.id, live[v].desc.id);
      return std::tuple<int, TensorId, TensorId>(stage, ids.first,
                                                 ids.second);
    };
    for (std::size_t e = 1; e < edges.size(); ++e) {
      if (edge_key(e) < edge_key(best_edge)) best_edge = e;
    }

    const auto [u, v] = edges[best_edge];
    const Live node_u = live[u];
    const Live node_v = live[v];
    const int task_stage = std::max(node_u.usable_from, node_v.usable_from);

    const bool duplicate =
        registry_->has_intermediate(node_u.desc.id, node_v.desc.id);
    const TensorDesc out =
        registry_->intermediate(node_u.desc.id, node_v.desc.id);

    int out_ready;
    if (duplicate) {
      // The producing task was planned by an earlier graph; reuse its
      // availability stage rather than emitting the contraction again.
      out_ready = ready_stage_.at(out.id);
      ++deduplicated_;
    } else {
      ContractionTask task;
      task.a = node_u.desc;
      task.b = node_v.desc;
      task.out = out;
      planned_.push_back(PlannedContraction{task, task_stage});
      out_ready = task_stage + 1;
      ready_stage_[out.id] = out_ready;
    }

    // Merge: the new node replaces u and v; every edge incident to either
    // re-attaches to it, and all parallel (u, v) edges vanish with the
    // contraction.
    const std::size_t merged = live.size();
    live.push_back(Live{out, out_ready});
    std::vector<std::pair<std::size_t, std::size_t>> next_edges;
    next_edges.reserve(edges.size());
    for (const auto& [a, b] : edges) {
      const bool touches_a = (a == u || a == v);
      const bool touches_b = (b == u || b == v);
      if (touches_a && touches_b) continue;  // contracted away
      const std::size_t na = touches_a ? merged : a;
      const std::size_t nb = touches_b ? merged : b;
      next_edges.emplace_back(std::min(na, nb), std::max(na, nb));
    }
    edges = std::move(next_edges);

    // Compact: drop u and v from the live set (stable order, fix indices).
    std::vector<Live> compact;
    compact.reserve(live.size() - 2);
    std::vector<std::size_t> remap(live.size(), SIZE_MAX);
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (i == u || i == v) continue;
      remap[i] = compact.size();
      compact.push_back(live[i]);
    }
    for (auto& [a, b] : edges) {
      MICCO_ASSERT(remap[a] != SIZE_MAX && remap[b] != SIZE_MAX);
      a = remap[a];
      b = remap[b];
      if (a > b) std::swap(a, b);
    }
    live = std::move(compact);
  }
}

std::vector<VectorWorkload> ContractionPlanner::stages() const {
  int max_stage = -1;
  for (const PlannedContraction& p : planned_) {
    max_stage = std::max(max_stage, p.stage);
  }
  std::vector<VectorWorkload> result(
      static_cast<std::size_t>(max_stage + 1));
  for (const PlannedContraction& p : planned_) {
    result[static_cast<std::size_t>(p.stage)].tasks.push_back(p.task);
  }
  return result;
}

}  // namespace micco
