// Workload characterisation for contraction-graph sets: the structural
// statistics (sharing factors, degree and stage-width distributions) that
// determine how much reuse a scheduler can hope to find. bench_redstar
// prints these next to Table VI, and tests use them to pin the generators'
// structural properties.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "graph/contraction_graph.hpp"
#include "workload/task.hpp"

namespace micco {

/// Statistics over a set of contraction graphs.
struct GraphSetStats {
  std::size_t graphs = 0;
  std::size_t total_nodes = 0;     ///< node slots summed over graphs
  std::size_t distinct_tensors = 0;
  std::size_t total_edges = 0;

  /// Average number of graphs each distinct tensor appears in (>= 1); the
  /// cross-graph sharing factor that creates reuse opportunities.
  double sharing_factor = 0.0;
  /// Largest number of graphs any single tensor appears in.
  std::size_t max_sharing = 0;

  double mean_nodes_per_graph = 0.0;
  double mean_edges_per_graph = 0.0;
  /// Node-degree histogram (degree -> count) over all graphs.
  std::map<std::size_t, std::size_t> degree_histogram;
};

GraphSetStats analyze_graphs(const std::vector<ContractionGraph>& graphs);

/// Statistics over a staged workload stream.
struct StreamStats {
  std::size_t stages = 0;
  std::size_t tasks = 0;
  std::size_t distinct_inputs = 0;

  /// Average times each distinct input tensor is consumed (>= 1): the
  /// intra-run reuse factor.
  double input_reuse_factor = 0.0;

  std::vector<std::size_t> stage_widths;  ///< tasks per stage, in order
  std::size_t widest_stage = 0;

  /// Fraction of operand slots whose tensor was produced by an earlier
  /// stage (intermediate reuse, as opposed to original inputs).
  double intermediate_operand_fraction = 0.0;
};

StreamStats analyze_stream(const WorkloadStream& stream);

/// Human-readable one-block summary (bench/debug output).
std::string to_string(const GraphSetStats& stats);
std::string to_string(const StreamStats& stats);

}  // namespace micco
