// Contraction graphs (Section II-B, Fig. 1).
//
// A quark propagation diagram is an undirected multigraph whose vertices are
// hadron nodes (batched tensors) and whose edges are quark propagations;
// evaluating the diagram reduces one edge after another — each reduction a
// hadron contraction — until only two nodes remain. Hadron nodes are shared
// *across* graphs through the NodeRegistry, which is what creates the data
// reuse MICCO schedules around: the same TensorId appearing in many graphs,
// and identical sub-reductions deduplicated into a single intermediate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/task.hpp"

namespace micco {

using NodeKey = std::string;

/// Interns hadron nodes and memoises intermediates so that equal content
/// receives equal TensorIds across all graphs of a correlation function.
class NodeRegistry {
 public:
  explicit NodeRegistry(std::int64_t extent, std::int64_t batch, int rank = 2);

  /// Returns the tensor for a named original hadron node (e.g.
  /// "pi(p=0,t=0)"), creating it on first use with the registry's default
  /// rank (mesons) or an explicit rank (3 for baryon nodes).
  TensorDesc original(const NodeKey& key);
  TensorDesc original(const NodeKey& key, int rank);

  /// Returns the tensor for the contraction of two nodes, creating it on
  /// first use. Commutative: (a, b) and (b, a) intern to the same tensor.
  /// The result rank follows the contraction rules (2x2 and 3x3 give rank 2,
  /// mixed 2x3 keeps rank 3).
  TensorDesc intermediate(TensorId a, TensorId b);

  /// Rank of an interned node (original or intermediate).
  int rank_of(TensorId id) const;

  /// True when `intermediate(a, b)` has been interned already (its producing
  /// task exists somewhere and need not be emitted twice).
  bool has_intermediate(TensorId a, TensorId b) const;

  std::size_t original_count() const { return originals_.size(); }
  std::size_t intermediate_count() const { return intermediates_.size(); }

  std::int64_t extent() const { return extent_; }
  std::int64_t batch() const { return batch_; }
  int rank() const { return rank_; }

 private:
  std::int64_t extent_;
  std::int64_t batch_;
  int rank_;
  TensorId next_id_ = 0;
  std::unordered_map<NodeKey, TensorDesc> originals_;
  std::map<std::pair<TensorId, TensorId>, TensorDesc> intermediates_;
  std::unordered_map<TensorId, int> node_ranks_;
};

/// One quark propagation diagram: hadron nodes plus propagation edges.
class ContractionGraph {
 public:
  /// Adds a hadron node (by its interned tensor); returns its local index.
  std::size_t add_node(TensorDesc desc);

  /// Adds a propagation edge between two local node indices (multi-edges
  /// allowed; self-loops are not, a quark cannot propagate to itself within
  /// one hadron in this representation).
  void add_edge(std::size_t u, std::size_t v);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const std::vector<TensorDesc>& nodes() const { return nodes_; }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }

  /// True when every edge references valid nodes and the graph is connected
  /// (a correlator diagram is a single connected trace).
  bool connected() const;

  /// Canonical content signature used to deduplicate isomorphic-by-content
  /// graphs produced by Wick enumeration.
  std::string signature() const;

  /// Graphviz DOT rendering for debugging and documentation.
  std::string to_dot(const std::string& name) const;

 private:
  std::vector<TensorDesc> nodes_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

/// A planned contraction: the task plus the stage (dependency level) it
/// belongs to.
struct PlannedContraction {
  ContractionTask task;
  int stage = 0;
};

/// Reduces a set of contraction graphs into a staged task plan:
///  * within each graph, edges reduce in a deterministic greedy order;
///  * the stage of a contraction is one past the deepest stage of its
///    operands (original nodes are stage 0 inputs);
///  * identical sub-reductions (same operand pair) are emitted exactly once
///    across the whole set — later graphs reuse the interned intermediate.
/// The resulting stages map one-to-one onto the scheduler's vectors.
class ContractionPlanner {
 public:
  explicit ContractionPlanner(NodeRegistry& registry) : registry_(&registry) {}

  /// Plans one graph, appending its new contractions to the plan.
  void add_graph(const ContractionGraph& graph);

  /// Stages as scheduler-ready vectors (stage i = vectors[i]).
  std::vector<VectorWorkload> stages() const;

  std::size_t task_count() const { return planned_.size(); }
  const std::vector<PlannedContraction>& planned() const { return planned_; }

  /// How many reductions were skipped because an identical intermediate
  /// already existed (cross-graph deduplication).
  std::size_t deduplicated() const { return deduplicated_; }

 private:
  NodeRegistry* registry_;
  std::vector<PlannedContraction> planned_;
  /// Stage at which each tensor becomes available (originals: 0).
  std::unordered_map<TensorId, int> ready_stage_;
  std::size_t deduplicated_ = 0;
};

}  // namespace micco
