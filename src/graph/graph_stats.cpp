#include "graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace micco {

GraphSetStats analyze_graphs(const std::vector<ContractionGraph>& graphs) {
  GraphSetStats stats;
  stats.graphs = graphs.size();

  std::unordered_map<TensorId, std::size_t> appearances;
  for (const ContractionGraph& g : graphs) {
    stats.total_nodes += g.node_count();
    stats.total_edges += g.edge_count();

    std::unordered_set<TensorId> in_this_graph;
    for (const TensorDesc& n : g.nodes()) in_this_graph.insert(n.id);
    for (const TensorId id : in_this_graph) ++appearances[id];

    std::vector<std::size_t> degree(g.node_count(), 0);
    for (const auto& [u, v] : g.edges()) {
      ++degree[u];
      ++degree[v];
    }
    for (const std::size_t d : degree) ++stats.degree_histogram[d];
  }

  stats.distinct_tensors = appearances.size();
  if (!appearances.empty()) {
    std::size_t total_appearances = 0;
    for (const auto& [id, count] : appearances) {
      (void)id;
      total_appearances += count;
      stats.max_sharing = std::max(stats.max_sharing, count);
    }
    stats.sharing_factor = static_cast<double>(total_appearances) /
                           static_cast<double>(appearances.size());
  }
  if (!graphs.empty()) {
    stats.mean_nodes_per_graph = static_cast<double>(stats.total_nodes) /
                                 static_cast<double>(graphs.size());
    stats.mean_edges_per_graph = static_cast<double>(stats.total_edges) /
                                 static_cast<double>(graphs.size());
  }
  return stats;
}

StreamStats analyze_stream(const WorkloadStream& stream) {
  StreamStats stats;
  stats.stages = stream.vectors.size();

  std::unordered_map<TensorId, std::size_t> input_uses;
  std::unordered_set<TensorId> outputs;
  std::size_t operand_slots = 0;
  std::size_t intermediate_slots = 0;

  // First pass: collect outputs so operands can be classified.
  for (const VectorWorkload& vec : stream.vectors) {
    for (const ContractionTask& t : vec.tasks) outputs.insert(t.out.id);
  }

  for (const VectorWorkload& vec : stream.vectors) {
    stats.tasks += vec.tasks.size();
    stats.stage_widths.push_back(vec.tasks.size());
    for (const ContractionTask& t : vec.tasks) {
      for (const TensorDesc* operand : {&t.a, &t.b}) {
        ++operand_slots;
        ++input_uses[operand->id];
        if (outputs.contains(operand->id)) ++intermediate_slots;
      }
    }
  }

  stats.distinct_inputs = input_uses.size();
  if (!input_uses.empty()) {
    stats.input_reuse_factor = static_cast<double>(operand_slots) /
                               static_cast<double>(input_uses.size());
  }
  if (!stats.stage_widths.empty()) {
    stats.widest_stage =
        *std::max_element(stats.stage_widths.begin(), stats.stage_widths.end());
  }
  if (operand_slots > 0) {
    stats.intermediate_operand_fraction =
        static_cast<double>(intermediate_slots) /
        static_cast<double>(operand_slots);
  }
  return stats;
}

std::string to_string(const GraphSetStats& stats) {
  std::ostringstream os;
  os << stats.graphs << " graphs, " << stats.distinct_tensors
     << " distinct hadron nodes (sharing x" << stats.sharing_factor
     << ", max x" << stats.max_sharing << "), avg "
     << stats.mean_nodes_per_graph << " nodes / "
     << stats.mean_edges_per_graph << " edges per graph";
  return os.str();
}

std::string to_string(const StreamStats& stats) {
  std::ostringstream os;
  os << stats.tasks << " contractions in " << stats.stages
     << " stages (widest " << stats.widest_stage << "), "
     << stats.distinct_inputs << " distinct inputs used x"
     << stats.input_reuse_factor << " each, "
     << stats.intermediate_operand_fraction * 100.0
     << "% intermediate operands";
  return os.str();
}

}  // namespace micco
