// Deterministic parallel execution layer.
//
// A small dependency-free worker pool behind a parallel_for / parallel_map
// API for the embarrassingly parallel offline loops (tuner sweep, Random
// Forest fitting, bench trials). The contract every caller relies on:
//
//   * Result ordering is deterministic: parallel_map's results land in index
//     order regardless of worker interleaving, so merged output is
//     bit-identical across runs and across thread counts.
//   * Randomness never crosses work items: a caller either draws all RNG
//     state serially before fanning out (the tuner and forest do this, which
//     keeps their output bit-identical to the historical serial code), or
//     gives each item its own PCG stream via item_rng().
//   * threads=1 takes a pure inline path — no pool, no queue, no atomics —
//     byte-identical in behaviour and output to a hand-written serial loop.
//   * Nested parallel_for is legal: a work item may fan out again (the tuner
//     parallelises over samples and over the bound grid within a sample).
//     Idle workers join whichever loop has unclaimed indices; a nested call
//     never deadlocks because a thread only blocks once every index of its
//     own loop has been claimed by a running thread.
//
// Pool size comes from set_threads() (benches wire --threads to it) or the
// MICCO_THREADS environment variable; the default is 1 (serial) so existing
// tools and tests behave exactly as before unless parallelism is requested.
// The pool silently caps its lane count at the hardware concurrency —
// oversubscribing cores only adds context-switch overhead for these
// CPU-bound loops (it showed up as sub-1.0 tuner speedups on small hosts).
// configured_threads() still reports the requested width, and setting
// MICCO_THREADS_OVERSUBSCRIBE=1 lifts the cap (the TSan CI stage does, to
// keep its forced 8-lane interleavings on any runner).
//
// The pool's locking (thread_pool.cpp) is written against the annotated
// micco::Mutex primitives from common/mutex.hpp, so Clang's thread-safety
// analysis (-Werror=thread-safety, DESIGN.md §5e) statically checks every
// guarded field; micco_lint additionally bans raw std::mutex and unmarked
// atomics throughout src/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace micco::parallel {

/// Sets the pool size used by subsequent parallel_for calls. 0 means "auto"
/// (hardware concurrency); any other value is the exact lane count
/// (including the calling thread). Must not race an in-flight parallel_for:
/// callers configure threading up front (CLI parse time).
void set_threads(int n);

/// The resolved lane count (>= 1). First call latches MICCO_THREADS from the
/// environment when set_threads was never called.
int configured_threads();

/// The lane count parallel_for actually runs: configured_threads() capped at
/// the hardware concurrency (unless MICCO_THREADS_OVERSUBSCRIBE=1). Callers
/// that use parallel_for as a *thread-spawn* primitive for loops that block
/// (the daemon's I/O lanes) must size against this, not the configured
/// width: lanes beyond it never run concurrently, so a blocking lane 0
/// would starve the rest forever.
int effective_threads();

/// Invokes body(i) exactly once for every i in [0, n), spread across the
/// configured lanes; returns after all n invocations completed. The first
/// exception thrown by any item is rethrown on the caller after the loop
/// drains. With threads=1 this is exactly `for (i...) body(i)`.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// parallel_for that collects return values in index order. T needs only a
/// move constructor (results are staged in optionals, then unwrapped).
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using T = decltype(fn(std::size_t{0}));
  std::vector<std::optional<T>> staged(n);
  parallel_for(n, [&](std::size_t i) { staged[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : staged) {
    MICCO_ASSERT(slot.has_value());
    out.push_back(std::move(*slot));
  }
  return out;
}

/// An independent PCG stream for work item `item`: same seed, distinct
/// stream selector. Items drawing from their own stream stay deterministic
/// under any schedule — the draw sequence is a pure function of (seed, item),
/// never of which worker ran the item or in what order.
inline Pcg32 item_rng(std::uint64_t seed, std::uint64_t item) {
  // Offset keeps item streams disjoint from the library's hand-picked
  // stream constants (0x70405, 0xf00df00d, ...).
  return Pcg32(seed, 0x9e3779b97f4a7c15ULL + item);
}

}  // namespace micco::parallel
