// Work-sharing pool behind parallel_for (see parallel.hpp for the contract).
//
// One loop = one shared index counter. The announcing thread participates;
// idle workers adopt the oldest loop with unclaimed indices. Nesting falls
// out of that rule: a worker whose item fans out announces the inner loop,
// keeps claiming its indices itself, and is joined by whoever happens to be
// idle. A thread blocks only after every index of its own loop is claimed,
// and every claimed index is being run by a thread that (inductively)
// finishes — so there is no schedule in which the pool deadlocks.
//
// Locking is expressed through the annotated micco::Mutex primitives so
// Clang's thread-safety analysis (-Werror=thread-safety in CI) proves every
// guarded field is only touched under its mutex.
#include "parallel/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <memory>
#include <thread>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"

namespace micco::parallel {

namespace {

struct Loop {
  explicit Loop(std::size_t size,
                const std::function<void(std::size_t)>& loop_body)
      : n(size), body(&loop_body) {}

  const std::size_t n;
  const std::function<void(std::size_t)>* body;
  /// Claim/progress counters are intentionally lock-free: fetch_add is the
  /// whole work-distribution protocol and the only cross-thread ordering
  /// that matters (completion) is re-checked under `mutex` by the waiter.
  /// Each sits on its own cache line: `next` is hammered by every claim and
  /// `done` by every completion, and co-locating them made each fetch_add
  /// steal the line the other counter's lanes were spinning on (the tuner
  /// sweep's fine-grained inner loops showed it as negative scaling).
  alignas(64) MICCO_LOCK_FREE std::atomic<std::size_t> next{0};
  alignas(64) MICCO_LOCK_FREE std::atomic<std::size_t> done{0};

  Mutex mutex{"Loop::mutex", kLockRankLoop};  ///< guards error + pairs completion signalling
  CondVar drained;  ///< signalled when done reaches n
  std::exception_ptr error MICCO_GUARDED_BY(mutex);  ///< first item exception

  /// Claims and runs indices until none remain. Returns true when this call
  /// completed the loop's final item.
  bool work() {
    bool finished_last = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) break;
      try {
        (*body)(i);
      } catch (...) {
        const MutexLock lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == n) finished_last = true;
    }
    if (finished_last) {
      // Lock pairs the notify with the waiter's predicate check.
      const MutexLock lock(mutex);
      drained.notify_all();
    }
    return finished_last;
  }

  bool exhausted() const { return next.load() >= n; }
  bool complete() const { return done.load() >= n; }
};

class Pool {
 public:
  explicit Pool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~Pool() {
    {
      const MutexLock lock(mutex_);
      stop_ = true;
    }
    work_available_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Announces the loop, participates until its indices run out, then —
  /// instead of sleeping while stragglers finish — adopts whatever other
  /// loops are open (typically nested loops those very stragglers
  /// announced). Blocking here wasted the announcing lane for the whole
  /// straggler tail: with nesting, the outer caller went idle exactly when
  /// the inner loops had unclaimed indices. Only when nothing is adoptable
  /// does it wait; then it rethrows the first item error.
  void run(std::size_t n, const std::function<void(std::size_t)>& body) {
    const auto loop = std::make_shared<Loop>(n, body);
    {
      const MutexLock lock(mutex_);
      open_loops_.push_back(loop);
    }
    work_available_.notify_all();

    loop->work();
    retire(loop);

    while (!loop->complete()) {
      std::shared_ptr<Loop> other;
      {
        const MutexLock lock(mutex_);
        other = adopt_locked();
      }
      if (other == nullptr) break;
      other->work();
      retire(other);
    }

    const MutexLock lock(loop->mutex);
    while (!loop->complete()) loop->drained.wait(loop->mutex);
    if (loop->error) std::rethrow_exception(loop->error);
  }

 private:
  /// Drops the loop from the open list once its indices are all claimed.
  void retire(const std::shared_ptr<Loop>& loop) {
    const MutexLock lock(mutex_);
    for (auto it = open_loops_.begin(); it != open_loops_.end(); ++it) {
      if (*it == loop) {
        open_loops_.erase(it);
        return;
      }
    }
  }

  /// Oldest loop with unclaimed indices, or nullptr. Adopting the oldest
  /// first drains outer loops before nested ones, which bounds the number of
  /// simultaneously in-flight outer items (and their memory) to the lane
  /// count. Exhausted loops encountered on the way are retired in place.
  std::shared_ptr<Loop> adopt_locked() MICCO_REQUIRES(mutex_) {
    while (!open_loops_.empty() && open_loops_.front()->exhausted()) {
      open_loops_.pop_front();
    }
    for (const std::shared_ptr<Loop>& loop : open_loops_) {
      if (!loop->exhausted()) return loop;
    }
    return nullptr;
  }

  void worker_main() {
    for (;;) {
      std::shared_ptr<Loop> loop;
      {
        const MutexLock lock(mutex_);
        // Standard wait loop (no predicate lambda: the analysis would treat
        // it as a separate function that does not hold mutex_). Stop wins
        // over adoptable work, matching shutdown semantics: the destructor
        // only runs once every announced loop has fully drained.
        for (;;) {
          if (stop_) return;
          if ((loop = adopt_locked()) != nullptr) break;
          work_available_.wait(mutex_);
        }
      }
      loop->work();
      retire(loop);
    }
  }

  Mutex mutex_{"Pool::mutex_", kLockRankPool};
  CondVar work_available_;
  std::deque<std::shared_ptr<Loop>> open_loops_ MICCO_GUARDED_BY(mutex_);
  bool stop_ MICCO_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

// -- Global pool configuration ---------------------------------------------

Mutex g_config_mutex{"parallel::g_config_mutex", kLockRankParallelConfig};
int g_threads MICCO_GUARDED_BY(g_config_mutex) = 0;  ///< 0 = not yet resolved
std::unique_ptr<Pool> g_pool MICCO_GUARDED_BY(g_config_mutex);

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Default lane count: MICCO_THREADS when set (0 = auto), else 1 (serial).
int default_threads() {
  const char* env = std::getenv("MICCO_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 0) return 1;
  return parsed == 0 ? hardware_threads() : static_cast<int>(parsed);
}

int resolved_threads_locked() MICCO_REQUIRES(g_config_mutex) {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

/// MICCO_THREADS_OVERSUBSCRIBE=1 lets the pool spawn more lanes than cores
/// (TSan CI forces 8 lanes on small runners to widen the interleaving space).
/// Latched once: flipping it mid-process would leave a stale cached pool.
bool oversubscribe_allowed() {
  static const bool allowed = [] {
    const char* env = std::getenv("MICCO_THREADS_OVERSUBSCRIBE");
    return env != nullptr && *env == '1';
  }();
  return allowed;
}

/// Lanes the pool actually runs: the configured width, capped at the core
/// count. Requesting 8 lanes on a 1-core host (common in containers) made
/// every fetch_add a context-switch lottery and the tuner sweep scaled
/// *negatively*; configured_threads() still reports the requested width so
/// callers' chunking decisions are unaffected.
int effective_lanes_locked() MICCO_REQUIRES(g_config_mutex) {
  const int threads = resolved_threads_locked();
  if (oversubscribe_allowed()) return threads;
  return threads < hardware_threads() ? threads : hardware_threads();
}

}  // namespace

void set_threads(int n) {
  MICCO_EXPECTS(n >= 0);
  const int resolved = n == 0 ? hardware_threads() : n;
  const MutexLock lock(g_config_mutex);
  if (resolved == g_threads) return;
  g_pool.reset();  // joins workers; callers never reconfigure mid-loop
  g_threads = resolved;
}

int configured_threads() {
  const MutexLock lock(g_config_mutex);
  return resolved_threads_locked();
}

int effective_threads() {
  const MutexLock lock(g_config_mutex);
  return effective_lanes_locked();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  Pool* pool = nullptr;
  {
    const MutexLock lock(g_config_mutex);
    const int lanes = effective_lanes_locked();
    if (lanes > 1 && n > 1) {
      if (g_pool == nullptr) g_pool = std::make_unique<Pool>(lanes - 1);
      pool = g_pool.get();
    }
  }
  if (pool == nullptr) {
    // Serial path: byte-identical to a plain loop (threads=1 contract).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->run(n, body);
}

}  // namespace micco::parallel
