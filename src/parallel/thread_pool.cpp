// Work-sharing pool behind parallel_for (see parallel.hpp for the contract).
//
// One loop = one shared index counter. The announcing thread participates;
// idle workers adopt the oldest loop with unclaimed indices. Nesting falls
// out of that rule: a worker whose item fans out announces the inner loop,
// keeps claiming its indices itself, and is joined by whoever happens to be
// idle. A thread blocks only after every index of its own loop is claimed,
// and every claimed index is being run by a thread that (inductively)
// finishes — so there is no schedule in which the pool deadlocks.
#include "parallel/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace micco::parallel {

namespace {

struct Loop {
  explicit Loop(std::size_t size,
                const std::function<void(std::size_t)>& loop_body)
      : n(size), body(&loop_body) {}

  const std::size_t n;
  const std::function<void(std::size_t)>* body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mutex;                ///< guards error + completion signalling
  std::condition_variable drained; ///< signalled when done reaches n
  std::exception_ptr error;        ///< first exception thrown by any item

  /// Claims and runs indices until none remain. Returns true when this call
  /// completed the loop's final item.
  bool work() {
    bool finished_last = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) break;
      try {
        (*body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == n) finished_last = true;
    }
    if (finished_last) {
      // Lock pairs the notify with the waiter's predicate check.
      const std::lock_guard<std::mutex> lock(mutex);
      drained.notify_all();
    }
    return finished_last;
  }

  bool exhausted() const { return next.load() >= n; }
  bool complete() const { return done.load() >= n; }
};

class Pool {
 public:
  explicit Pool(int workers) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_available_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Announces the loop, participates until its indices run out, then waits
  /// for stragglers on other threads and rethrows the first item error.
  void run(std::size_t n, const std::function<void(std::size_t)>& body) {
    const auto loop = std::make_shared<Loop>(n, body);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_loops_.push_back(loop);
    }
    work_available_.notify_all();

    loop->work();
    retire(loop);

    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->drained.wait(lock, [&] { return loop->complete(); });
    if (loop->error) std::rethrow_exception(loop->error);
  }

 private:
  /// Drops the loop from the open list once its indices are all claimed.
  void retire(const std::shared_ptr<Loop>& loop) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = open_loops_.begin(); it != open_loops_.end(); ++it) {
      if (*it == loop) {
        open_loops_.erase(it);
        return;
      }
    }
  }

  /// Oldest loop with unclaimed indices, or nullptr. Adopting the oldest
  /// first drains outer loops before nested ones, which bounds the number of
  /// simultaneously in-flight outer items (and their memory) to the lane
  /// count. Exhausted loops encountered on the way are retired in place.
  std::shared_ptr<Loop> adopt_locked() {
    while (!open_loops_.empty() && open_loops_.front()->exhausted()) {
      open_loops_.pop_front();
    }
    for (const std::shared_ptr<Loop>& loop : open_loops_) {
      if (!loop->exhausted()) return loop;
    }
    return nullptr;
  }

  void worker_main() {
    for (;;) {
      std::shared_ptr<Loop> loop;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(
            lock, [&] { return stop_ || (loop = adopt_locked()) != nullptr; });
        if (loop == nullptr) return;  // stop_ with nothing left to adopt
      }
      loop->work();
      retire(loop);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Loop>> open_loops_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// -- Global pool configuration ---------------------------------------------

std::mutex g_config_mutex;
int g_threads = 0;  ///< 0 = not yet resolved
std::unique_ptr<Pool> g_pool;

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Default lane count: MICCO_THREADS when set (0 = auto), else 1 (serial).
int default_threads() {
  const char* env = std::getenv("MICCO_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 0) return 1;
  return parsed == 0 ? hardware_threads() : static_cast<int>(parsed);
}

int resolved_threads_locked() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

}  // namespace

void set_threads(int n) {
  MICCO_EXPECTS(n >= 0);
  const int resolved = n == 0 ? hardware_threads() : n;
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  if (resolved == g_threads) return;
  g_pool.reset();  // joins workers; callers never reconfigure mid-loop
  g_threads = resolved;
}

int configured_threads() {
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  return resolved_threads_locked();
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  Pool* pool = nullptr;
  {
    const std::lock_guard<std::mutex> lock(g_config_mutex);
    const int threads = resolved_threads_locked();
    if (threads > 1 && n > 1) {
      if (g_pool == nullptr) g_pool = std::make_unique<Pool>(threads - 1);
      pool = g_pool.get();
    }
  }
  if (pool == nullptr) {
    // Serial path: byte-identical to a plain loop (threads=1 contract).
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->run(n, body);
}

}  // namespace micco::parallel
