// Wick contraction enumeration (Section II-A).
//
// Expanding <sink(t) | source(0)> pairs every quark field with an antiquark
// field of the same flavor; each complete pairing is one quark propagation
// diagram, drawn as a contraction graph whose vertices are the hadron nodes
// and whose edges are the propagators. The number of diagrams grows
// factorially with the quark count, which is why correlation functions reach
// thousands of graphs; enumeration here is exhaustive up to a configurable
// cap, with duplicate (content-identical) graphs removed.
#pragma once

#include <vector>

#include "graph/contraction_graph.hpp"
#include "redstar/operators.hpp"

namespace micco::redstar {

/// All distinct Wick diagrams for one (source construction, sink
/// construction) pair at a given sink time slice. Hadron-node tensors are
/// interned through `registry`, so identical operators at identical times
/// share TensorIds across diagrams and across calls. Returns an empty set
/// when the flavors cannot balance. Pairings internal to one hadron
/// (tadpole self-loops) are skipped.
std::vector<ContractionGraph> enumerate_diagrams(
    const Construction& source, const Construction& sink, int sink_time,
    NodeRegistry& registry, std::size_t max_diagrams);

/// Diagram count without materialising graphs (for tests on factorial
/// growth): the permanent of the flavor-compatibility matrix minus
/// self-loop-only terms is expensive, so this simply runs the enumeration
/// counting instead of building.
std::size_t count_diagrams(const Construction& source,
                           const Construction& sink,
                           std::size_t max_diagrams);

}  // namespace micco::redstar
