// Correlator -> staged workload translation: the Redstar pipeline of Fig. 1.
//
// For every sink time slice and every (source construction, sink
// construction) pair, Wick enumeration produces contraction graphs; the
// planner reduces them into dependency stages, deduplicating shared
// sub-reductions through the node registry. Source hadron nodes are shared
// by every time slice — the dominant cross-graph reuse in real correlators.
#pragma once

#include <cstdint>
#include <string>

#include "graph/contraction_graph.hpp"
#include "redstar/operators.hpp"
#include "redstar/wick.hpp"
#include "workload/task.hpp"

namespace micco::redstar {

/// Build statistics reported alongside Table VI.
struct CorrelatorStats {
  std::size_t diagrams = 0;        ///< unique contraction graphs
  std::size_t contractions = 0;    ///< hadron contractions emitted
  std::size_t deduplicated = 0;    ///< sub-reductions shared across graphs
  std::size_t original_nodes = 0;  ///< distinct original hadron tensors
  std::size_t intermediate_nodes = 0;
  std::size_t stages = 0;
  std::uint64_t total_bytes = 0;  ///< distinct input+intermediate footprint
};

struct CorrelatorWorkload {
  WorkloadStream stream;
  CorrelatorStats stats;
};

/// Translates a correlation-function specification into a staged workload.
CorrelatorWorkload build_workload(const CorrelatorSpec& spec);

/// The three real-world correlation functions of Table VI, sized to match
/// the paper's reported tensor sizes (a1_rhopi: 128; f0d2/f0d4: 256) and to
/// land in the reported total-device-memory regime.
CorrelatorSpec make_a1_rhopi();
CorrelatorSpec make_f0d2();
CorrelatorSpec make_f0d4();

/// Baryon-system demonstrators (the paper's "batched tensor contractions
/// for a baryon system"; not part of Table VI): a nucleon two-point
/// function (direct + exchange diagrams over rank-3 nodes) and a
/// two-nucleon system whose diagram count shows the factorial growth.
CorrelatorSpec make_nucleon_2pt();
CorrelatorSpec make_nn_system();

/// Looks a spec up by name ("a1_rhopi", "f0d2", "f0d4", "nucleon_2pt",
/// "nn_system"); aborts on unknown names.
CorrelatorSpec real_function(const std::string& name);

}  // namespace micco::redstar
