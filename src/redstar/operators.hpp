// Hadron operator descriptions for the mini-Redstar frontend.
//
// A meson operator interpolates a quark-antiquark pair with definite flavor
// content and momentum. Correlation functions are built from operator
// constructions (single-particle, or multi-particle products of mesons) at a
// source time slice and a range of sink time slices; Wick's theorem then
// expands <sink | source> into quark propagation diagrams (see wick.hpp).
//
// Simplifications vs. full Redstar, documented in DESIGN.md: spin/colour
// structure is folded into the batched tensor; self-contractions within one
// hadron (tadpoles) are dropped. Mesons carry rank-2 hadron nodes; baryons
// (three quark lines) carry rank-3 nodes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace micco::redstar {

enum class Flavor : std::uint8_t { kUp, kDown, kStrange, kCharm };

const char* to_string(Flavor f);

/// One interpolating meson field: quark content q qbar' at momentum p.
struct MesonOp {
  std::string name;   ///< e.g. "pi+", "rho0", "f0"
  Flavor quark;       ///< the quark line
  Flavor antiquark;   ///< the antiquark line
  int momentum = 0;   ///< 1-D momentum label (distinguishes tensors)

  /// Unique key for tensor interning: same operator at the same time slice
  /// is the same hadron node.
  std::string key(int time_slice) const;
};

/// One interpolating baryon field: three quark lines (e.g. proton = uud).
/// Baryon hadron nodes carry rank-3 tensors; at the source the operator is
/// conjugated into an antibaryon (three antiquark lines).
struct BaryonOp {
  std::string name;  ///< e.g. "N+", "Delta++"
  std::array<Flavor, 3> quarks;
  int momentum = 0;

  std::string key(int time_slice) const;
};

/// One term of an operator basis: a product of meson and/or baryon fields
/// created or annihilated together (single-particle: one hadron;
/// multi-particle: several).
struct Construction {
  std::vector<MesonOp> hadrons;   ///< meson fields (historical name)
  std::vector<BaryonOp> baryons;  ///< baryon fields

  std::size_t hadron_count() const {
    return hadrons.size() + baryons.size();
  }
  std::size_t quark_count() const {
    return hadrons.size() + 3 * baryons.size();
  }
};

/// An operator basis at one end of the correlator (several constructions,
/// e.g. { a1 } and { rho(p) pi(-p) } variants).
struct OperatorBasis {
  std::vector<Construction> constructions;
};

/// A full correlation-function specification.
struct CorrelatorSpec {
  std::string name;
  OperatorBasis source;    ///< creation operators at t = 0
  OperatorBasis sink;      ///< annihilation operators at t = 1..time_slices
  int time_slices = 16;    ///< Table VI: "sum of sixteen time slices"
  std::int64_t extent = 256;  ///< tensor size of every hadron node
  std::int64_t batch = 64;    ///< batched-kernel width per node
  /// Cap on Wick diagrams per (source construction, sink construction,
  /// time slice) triple, guarding the factorial blow-up.
  std::size_t max_diagrams_per_pair = 256;
};

/// Flavor balance check: a construction pair can contract only when, jointly,
/// every flavor has as many quarks as antiquarks.
bool flavor_balanced(const Construction& a, const Construction& b);

}  // namespace micco::redstar
