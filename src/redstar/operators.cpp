#include "redstar/operators.hpp"

#include <array>
#include <sstream>

namespace micco::redstar {

const char* to_string(Flavor f) {
  switch (f) {
    case Flavor::kUp: return "u";
    case Flavor::kDown: return "d";
    case Flavor::kStrange: return "s";
    case Flavor::kCharm: return "c";
  }
  return "?";
}

std::string MesonOp::key(int time_slice) const {
  std::ostringstream os;
  os << name << "(" << to_string(quark) << to_string(antiquark)
     << ",p=" << momentum << ",t=" << time_slice << ")";
  return os.str();
}

std::string BaryonOp::key(int time_slice) const {
  std::ostringstream os;
  os << name << "(";
  for (const Flavor f : quarks) os << to_string(f);
  os << ",p=" << momentum << ",t=" << time_slice << ")";
  return os.str();
}

bool flavor_balanced(const Construction& source, const Construction& sink) {
  // The source enters the correlator as a creation operator (conjugated), so
  // its quark content flips: <sink(t) source^dagger(0)>.
  std::array<int, 4> balance{0, 0, 0, 0};
  for (const MesonOp& op : source.hadrons) {
    --balance[static_cast<std::size_t>(op.quark)];
    ++balance[static_cast<std::size_t>(op.antiquark)];
  }
  for (const BaryonOp& op : source.baryons) {
    for (const Flavor f : op.quarks) --balance[static_cast<std::size_t>(f)];
  }
  for (const MesonOp& op : sink.hadrons) {
    ++balance[static_cast<std::size_t>(op.quark)];
    --balance[static_cast<std::size_t>(op.antiquark)];
  }
  for (const BaryonOp& op : sink.baryons) {
    for (const Flavor f : op.quarks) ++balance[static_cast<std::size_t>(f)];
  }
  for (const int v : balance) {
    if (v != 0) return false;
  }
  return true;
}

}  // namespace micco::redstar
