#include "redstar/wick.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <string>

#include "common/assert.hpp"

namespace micco::redstar {

namespace {

struct QuarkSlot {
  Flavor flavor;
  std::size_t hadron;  // index into the combined hadron list
};

struct Hadrons {
  // Interning keys and ranks per hadron node (mesons: rank 2, baryons: 3).
  std::vector<std::string> keys;
  std::vector<int> ranks;
  std::vector<QuarkSlot> quarks;
  std::vector<QuarkSlot> antiquarks;
};

Hadrons collect(const Construction& source, const Construction& sink,
                int sink_time) {
  Hadrons h;
  const auto add_meson = [&](const MesonOp& op, int t, bool conjugate) {
    const std::size_t idx = h.keys.size();
    h.keys.push_back(op.key(t));
    h.ranks.push_back(2);
    // Source operators enter as creation operators (conjugated), flipping
    // their quark content: <sink(t) source^dagger(0)>.
    h.quarks.push_back(QuarkSlot{conjugate ? op.antiquark : op.quark, idx});
    h.antiquarks.push_back(
        QuarkSlot{conjugate ? op.quark : op.antiquark, idx});
  };
  const auto add_baryon = [&](const BaryonOp& op, int t, bool conjugate) {
    const std::size_t idx = h.keys.size();
    h.keys.push_back(op.key(t));
    h.ranks.push_back(3);
    // A conjugated baryon (antibaryon) contributes three antiquark lines.
    for (const Flavor f : op.quarks) {
      (conjugate ? h.antiquarks : h.quarks).push_back(QuarkSlot{f, idx});
    }
  };
  for (const MesonOp& op : source.hadrons) {
    add_meson(op, 0, /*conjugate=*/true);
  }
  for (const BaryonOp& op : source.baryons) {
    add_baryon(op, 0, /*conjugate=*/true);
  }
  for (const MesonOp& op : sink.hadrons) {
    add_meson(op, sink_time, /*conjugate=*/false);
  }
  for (const BaryonOp& op : sink.baryons) {
    add_baryon(op, sink_time, /*conjugate=*/false);
  }
  return h;
}

/// Enumerates flavor-respecting, tadpole-free perfect matchings between
/// quarks and antiquarks, invoking `emit` with the pairing (quark i ->
/// antiquark assignment[i]). Returns the number of matchings emitted, at
/// most `cap`.
std::size_t for_each_matching(
    const Hadrons& h, std::size_t cap,
    const std::function<void(const std::vector<std::size_t>&)>& emit) {
  const std::size_t n = h.quarks.size();
  if (h.antiquarks.size() != n) return 0;  // cannot balance: no matchings
  std::vector<std::size_t> assignment(n, SIZE_MAX);
  std::vector<bool> used(n, false);
  std::size_t emitted = 0;

  const std::function<void(std::size_t)> recurse = [&](std::size_t qi) {
    if (emitted >= cap) return;
    if (qi == n) {
      emit(assignment);
      ++emitted;
      return;
    }
    for (std::size_t ai = 0; ai < n; ++ai) {
      if (used[ai]) continue;
      if (h.antiquarks[ai].flavor != h.quarks[qi].flavor) continue;
      if (h.antiquarks[ai].hadron == h.quarks[qi].hadron) continue;  // tadpole
      used[ai] = true;
      assignment[qi] = ai;
      recurse(qi + 1);
      used[ai] = false;
      assignment[qi] = SIZE_MAX;
      if (emitted >= cap) return;
    }
  };
  recurse(0);
  return emitted;
}

/// Content key of a matching: the sorted multiset of hadron-index edges.
std::string matching_signature(const Hadrons& h,
                               const std::vector<std::size_t>& assignment) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(assignment.size());
  for (std::size_t qi = 0; qi < assignment.size(); ++qi) {
    const std::size_t hu = h.quarks[qi].hadron;
    const std::size_t hv = h.antiquarks[assignment[qi]].hadron;
    edges.emplace_back(std::min(hu, hv), std::max(hu, hv));
  }
  std::sort(edges.begin(), edges.end());
  std::string sig;
  for (const auto& [u, v] : edges) {
    sig += std::to_string(u) + "-" + std::to_string(v) + ";";
  }
  return sig;
}

}  // namespace

std::vector<ContractionGraph> enumerate_diagrams(const Construction& source,
                                                 const Construction& sink,
                                                 int sink_time,
                                                 NodeRegistry& registry,
                                                 std::size_t max_diagrams) {
  MICCO_EXPECTS(sink_time >= 1);
  std::vector<ContractionGraph> result;
  if (!flavor_balanced(source, sink)) return result;
  if (source.hadron_count() == 0 && sink.hadron_count() == 0) return result;

  const Hadrons h = collect(source, sink, sink_time);
  std::set<std::string> seen;

  for_each_matching(h, max_diagrams,
                    [&](const std::vector<std::size_t>& assignment) {
    // Drop content-duplicates: distinct pairings of identical quark lines
    // produce the same propagator multiset.
    if (!seen.insert(matching_signature(h, assignment)).second) return;

    ContractionGraph graph;
    std::vector<std::size_t> node_index(h.keys.size());
    for (std::size_t i = 0; i < h.keys.size(); ++i) {
      node_index[i] =
          graph.add_node(registry.original(h.keys[i], h.ranks[i]));
    }
    for (std::size_t qi = 0; qi < assignment.size(); ++qi) {
      const std::size_t hu = h.quarks[qi].hadron;
      const std::size_t hv = h.antiquarks[assignment[qi]].hadron;
      graph.add_edge(node_index[hu], node_index[hv]);
    }
    result.push_back(std::move(graph));
  });
  return result;
}

std::size_t count_diagrams(const Construction& source,
                           const Construction& sink,
                           std::size_t max_diagrams) {
  if (!flavor_balanced(source, sink)) return 0;
  if (source.hadron_count() == 0 && sink.hadron_count() == 0) return 0;
  const Hadrons h = collect(source, sink, /*sink_time=*/1);
  std::set<std::string> seen;
  for_each_matching(h, max_diagrams,
                    [&](const std::vector<std::size_t>& assignment) {
                      seen.insert(matching_signature(h, assignment));
                    });
  return seen.size();
}

}  // namespace micco::redstar
