#include "redstar/correlator.hpp"

#include <set>

#include "common/assert.hpp"

namespace micco::redstar {

CorrelatorWorkload build_workload(const CorrelatorSpec& spec) {
  MICCO_EXPECTS(spec.time_slices >= 1);
  MICCO_EXPECTS(!spec.source.constructions.empty());
  MICCO_EXPECTS(!spec.sink.constructions.empty());

  NodeRegistry registry(spec.extent, spec.batch);
  ContractionPlanner planner(registry);

  std::set<std::string> seen_graphs;
  std::size_t diagrams = 0;

  for (int t = 1; t <= spec.time_slices; ++t) {
    for (const Construction& src : spec.source.constructions) {
      for (const Construction& snk : spec.sink.constructions) {
        const std::vector<ContractionGraph> graphs = enumerate_diagrams(
            src, snk, t, registry, spec.max_diagrams_per_pair);
        for (const ContractionGraph& g : graphs) {
          // Distinct (source, sink) pairs can reach identical propagator
          // graphs (shared hadron content); plan each unique graph once.
          if (!seen_graphs.insert(g.signature()).second) continue;
          ++diagrams;
          planner.add_graph(g);
        }
      }
    }
  }

  CorrelatorWorkload out;
  out.stream.vectors = planner.stages();
  out.stream.tensor_extent = spec.extent;
  out.stream.batch = spec.batch;
  // Real correlators have no single generator-level vector size or repeated
  // rate; record the widest stage for reference. The online pipeline
  // re-derives per-vector characteristics anyway.
  for (const VectorWorkload& v : out.stream.vectors) {
    out.stream.vector_size =
        std::max(out.stream.vector_size, v.tensor_count());
  }

  out.stats.diagrams = diagrams;
  out.stats.contractions = planner.task_count();
  out.stats.deduplicated = planner.deduplicated();
  out.stats.original_nodes = registry.original_count();
  out.stats.intermediate_nodes = registry.intermediate_count();
  out.stats.stages = out.stream.vectors.size();
  out.stats.total_bytes = out.stream.total_distinct_bytes();
  return out;
}

namespace {

MesonOp meson(std::string name, Flavor q, Flavor qbar, int p) {
  return MesonOp{std::move(name), q, qbar, p};
}

/// Two-particle construction m1(p) m2(-p).
Construction pair_construction(const MesonOp& m1, const MesonOp& m2, int p) {
  Construction c;
  MesonOp a = m1;
  a.momentum = p;
  MesonOp b = m2;
  b.momentum = -p;
  c.hadrons = {a, b};
  return c;
}

Construction single_construction(const MesonOp& m) {
  Construction c;
  c.hadrons = {m};
  return c;
}

/// Shared builder: one single-particle operator plus `momenta` two-particle
/// variants, identical basis at source and sink (the usual symmetric
/// correlation matrix).
CorrelatorSpec make_meson_system(std::string name, const MesonOp& single,
                                 const MesonOp& two_a, const MesonOp& two_b,
                                 int momenta, std::int64_t extent,
                                 std::int64_t batch) {
  CorrelatorSpec spec;
  spec.name = std::move(name);
  spec.extent = extent;
  spec.batch = batch;
  spec.time_slices = 16;

  OperatorBasis basis;
  basis.constructions.push_back(single_construction(single));
  for (int p = 0; p < momenta; ++p) {
    basis.constructions.push_back(pair_construction(two_a, two_b, p + 1));
  }
  spec.source = basis;
  spec.sink = basis;
  return spec;
}

}  // namespace

CorrelatorSpec make_a1_rhopi() {
  // a1+ -> rho+ pi0 in the a1 system: one single-particle a1 operator and
  // two rho-pi momentum constructions. Tensor size 128 (Table VI); batch
  // sized so the distinct input+intermediate footprint lands in the ~56 GB
  // regime the paper reports.
  return make_meson_system(
      "a1_rhopi", meson("a1+", Flavor::kUp, Flavor::kDown, 0),
      meson("rho+", Flavor::kUp, Flavor::kDown, 0),
      meson("pi0", Flavor::kUp, Flavor::kUp, 0),
      /*momenta=*/2, /*extent=*/128, /*batch=*/160);
}

CorrelatorSpec make_f0d2() {
  // f0 system with two pi+ pi- momentum constructions. Tensor size 256;
  // batch sized to push the footprint into the multi-TB oversubscription
  // regime of Table VI.
  return make_meson_system(
      "f0d2", meson("f0", Flavor::kUp, Flavor::kUp, 0),
      meson("pi+", Flavor::kUp, Flavor::kDown, 0),
      meson("pi-", Flavor::kDown, Flavor::kUp, 0),
      /*momenta=*/2, /*extent=*/256, /*batch=*/2400);
}

CorrelatorSpec make_f0d4() {
  // Same system with four two-particle momentum variants: more diagrams,
  // slightly smaller per-tensor batch.
  return make_meson_system(
      "f0d4", meson("f0", Flavor::kUp, Flavor::kUp, 0),
      meson("pi+", Flavor::kUp, Flavor::kDown, 0),
      meson("pi-", Flavor::kDown, Flavor::kUp, 0),
      /*momenta=*/4, /*extent=*/256, /*batch=*/1000);
}

namespace {

BaryonOp nucleon(int momentum) {
  return BaryonOp{"N+", {Flavor::kUp, Flavor::kUp, Flavor::kDown}, momentum};
}

}  // namespace

CorrelatorSpec make_nucleon_2pt() {
  CorrelatorSpec spec;
  spec.name = "nucleon_2pt";
  spec.extent = 96;  // rank-3 nodes are extent^3: keep the footprint sane
  spec.batch = 8;
  spec.time_slices = 16;
  // Three momentum variants give the scheduler a real correlation matrix
  // (9 source-sink pairs per time slice) rather than a single diagram.
  for (int p = 0; p <= 2; ++p) {
    Construction single;
    single.baryons = {nucleon(p)};
    spec.source.constructions.push_back(single);
    spec.sink.constructions.push_back(single);
  }
  return spec;
}

CorrelatorSpec make_nn_system() {
  CorrelatorSpec spec;
  spec.name = "nn_system";
  spec.extent = 64;
  spec.batch = 4;
  spec.time_slices = 8;
  for (int p = 1; p <= 2; ++p) {
    Construction two;
    two.baryons = {nucleon(p), nucleon(-p)};
    spec.source.constructions.push_back(two);
    spec.sink.constructions.push_back(two);
  }
  spec.max_diagrams_per_pair = 128;
  return spec;
}

CorrelatorSpec real_function(const std::string& name) {
  if (name == "a1_rhopi") return make_a1_rhopi();
  if (name == "f0d2") return make_f0d2();
  if (name == "f0d4") return make_f0d4();
  if (name == "nucleon_2pt") return make_nucleon_2pt();
  if (name == "nn_system") return make_nn_system();
  MICCO_EXPECTS_MSG(false, "unknown real correlation function");
  return {};
}

}  // namespace micco::redstar
