// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the aggregate half of the observability layer (the event
// sink is the per-decision half). Instrumentation points resolve a metric
// once — counter()/gauge()/histogram() return references that stay valid for
// the registry's lifetime — and then update it with a single add/set/observe,
// so a hot loop never does a name lookup. Everything snapshots to JSON with
// deterministic (sorted-name) ordering for golden tests and run reports.
//
// Concurrency: resolved Counter/Gauge updates are relaxed atomics (the
// daemon's I/O lanes snapshot the registry live while the dispatcher
// writes), and each Histogram carries its own annotated mutex so concurrent
// observation keeps exact counts. Hot paths that cannot afford a lock per
// observation batch into an unsynchronised HistogramScratch and flush once
// per vector.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"

namespace micco::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  /// MICCO_LOCK_FREE: monotone event count; relaxed is enough because no
  /// other state is published through it.
  std::atomic<std::uint64_t> value_ MICCO_LOCK_FREE{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  /// MICCO_LOCK_FREE: last-writer-wins sample; readers need no ordering.
  std::atomic<double> value_ MICCO_LOCK_FREE{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set at creation and
/// immutable afterwards (re-requesting the histogram ignores the bounds
/// argument), so concurrent instrumentation points cannot disagree. All
/// mutation and reads go through the internal mutex — counts are exact even
/// under concurrent recording.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  /// Move is needed for registry storage; the source must be quiescent
  /// except for this move (registry creation happens under its lock).
  Histogram(Histogram&& other);

  void observe(double value);

  /// Adds `other`'s observations to this histogram. Bucket bounds must be
  /// identical; merging is associative and commutative (exact integer
  /// counts, one float sum).
  void merge_from(const Histogram& other);
  /// Raw merge used by HistogramScratch::flush_into.
  void absorb(const std::vector<std::uint64_t>& bucket_counts,
              std::uint64_t count, double sum);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  double mean() const;

  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (Prometheus semantics): the first bucket interpolates from
  /// min(0, bounds[0]), the overflow bucket reports the largest finite
  /// bound. q is clamped to [0, 1]; an empty histogram reports 0.0. Exact
  /// recomputation from a snapshot of the same counts yields the same
  /// double.
  double quantile(double q) const;

  /// Interpolation core shared with offline recomputation (trace summary).
  static double quantile_from(const std::vector<double>& bounds,
                              const std::vector<std::uint64_t>& counts,
                              std::uint64_t total, double q);

 private:
  std::vector<double> bounds_;
  mutable Mutex mutex_{"Histogram::mutex_", kLockRankHistogram};
  std::vector<std::uint64_t> counts_ MICCO_GUARDED_BY(mutex_);
  std::uint64_t count_ MICCO_GUARDED_BY(mutex_) = 0;
  double sum_ MICCO_GUARDED_BY(mutex_) = 0.0;
};

/// Unsynchronised observation buffer with Histogram semantics, for hot
/// loops owned by one thread (the per-decision latency meter). Accumulate
/// with observe(), then flush_into() the shared locked Histogram once per
/// batch — one lock acquisition amortised over the whole vector.
class HistogramScratch {
 public:
  explicit HistogramScratch(std::vector<double> upper_bounds);

  /// Header-inline on purpose: this runs once per scheduler decision on the
  /// dispatcher's hot path, where an out-of-line call was a measurable
  /// share of the tracing-overhead budget (bench_overhead --gate).
  void observe(double value) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += value;
  }
  /// Adds the buffered observations to `h` (bounds must match) and resets.
  void flush_into(Histogram& h);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The registry's name→metric maps are mutex-protected so instrumentation
/// points may resolve metrics from parallel setup code (sweep lanes attach
/// telemetry concurrently). Updating a *resolved* metric is safe from any
/// thread: counters and gauges are relaxed atomics, histograms lock
/// internally, and the references stay valid for the registry's lifetime
/// (node-based map storage).
class MetricsRegistry {
 public:
  /// Finds or creates the named metric. References remain valid until the
  /// registry is destroyed (node-based map storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    const MutexLock lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"upper_bounds": [...], "counts": [...], "count": n, "sum": s}}} with
  /// names in sorted order.
  JsonValue snapshot() const;

  /// Live-exposition summary: counters and gauges as in snapshot(), each
  /// histogram reduced to {count, sum, mean, p50, p90, p99}.
  JsonValue quantile_summary() const;

  /// Prometheus text exposition: names prefixed "micco_" with dots mapped
  /// to underscores, counters/gauges one sample each, histograms as
  /// cumulative le-labelled buckets plus _sum and _count.
  std::string prometheus_text() const;

 private:
  mutable Mutex mutex_{"MetricsRegistry::mutex_", kLockRankMetrics};
  std::map<std::string, Counter> counters_ MICCO_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ MICCO_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ MICCO_GUARDED_BY(mutex_);
};

}  // namespace micco::obs
