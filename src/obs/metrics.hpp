// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the aggregate half of the observability layer (the event
// sink is the per-decision half). Instrumentation points resolve a metric
// once — counter()/gauge()/histogram() return references that stay valid for
// the registry's lifetime — and then update it with a single add/set/observe,
// so a hot loop never does a name lookup. Everything snapshots to JSON with
// deterministic (sorted-name) ordering for golden tests and run reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "obs/json.hpp"

namespace micco::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set at creation and
/// immutable afterwards (re-requesting the histogram ignores the bounds
/// argument), so concurrent instrumentation points cannot disagree.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The registry's name→metric maps are mutex-protected so instrumentation
/// points may resolve metrics from parallel setup code (sweep lanes attach
/// telemetry concurrently). Updating a *resolved* Counter/Gauge/Histogram
/// is deliberately unsynchronised — hot paths are single-threaded per run
/// and the references stay valid for the registry's lifetime (node-based
/// map storage), so the lock is only ever on the name lookup.
class MetricsRegistry {
 public:
  /// Finds or creates the named metric. References remain valid until the
  /// registry is destroyed (node-based map storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    const MutexLock lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"upper_bounds": [...], "counts": [...], "count": n, "sum": s}}} with
  /// names in sorted order.
  JsonValue snapshot() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, Counter> counters_ MICCO_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ MICCO_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ MICCO_GUARDED_BY(mutex_);
};

}  // namespace micco::obs
