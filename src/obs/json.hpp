// Minimal JSON document model for the observability layer.
//
// Everything the telemetry stack emits — JSONL decision-log lines, registry
// snapshots, run reports — is built as a JsonValue and serialized through one
// writer, so output is deterministic (object keys keep insertion order, no
// locale-dependent number formatting) and round-trippable via parse(). This
// is intentionally not a general-purpose JSON library: numbers are doubles
// or int64, strings are assumed UTF-8, and duplicate keys are not rejected.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace micco::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}          // NOLINT
  JsonValue(std::uint64_t u)                                         // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}                   // NOLINT
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}          // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}     // NOLINT

  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  // Typed accessors abort (contract violation) on kind mismatch, except
  // as_double which accepts both number kinds.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<Member>& members() const;

  /// Array append (value must be an array, or null — which becomes one).
  JsonValue& push_back(JsonValue v);

  /// Object insert/overwrite, preserving first-insertion order (value must
  /// be an object, or null — which becomes one). Returns the stored value.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Object lookup that aborts when the key is absent.
  const JsonValue& at(const std::string& key) const;

  bool operator==(const JsonValue& other) const;

  /// Compact single-line serialization (the JSONL / golden-test format).
  std::string dump() const;

  /// Indented serialization for human consumption (--pretty).
  std::string dump_pretty(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Serializes a double the way the writer does (shortest round-trip form,
/// locale-independent); exposed for tests.
std::string json_number(double value);

/// Escapes a string body (no surrounding quotes); exposed for tests.
std::string json_escape(const std::string& raw);

/// Parses one JSON document. Returns nullopt and fills `error` (when given)
/// on malformed input or trailing garbage.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace micco::obs
