// Telemetry bundle: the one handle instrumented components share.
//
// A Telemetry object pairs the metrics registry (aggregates) with an
// optional event sink (per-occurrence records) plus the decision-log cursor
// the driver maintains (vector/pair position, monotone sequence number).
// Components hold a `Telemetry*` that is nullptr by default; every
// instrumentation point is guarded by that single pointer test, so a run
// without telemetry pays one predictable branch per site and nothing else.
#pragma once

#include <cstdint>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace micco::obs {

struct Telemetry {
  MetricsRegistry registry;
  /// Optional per-event sink; not owned, may be nullptr (registry-only).
  EventSink* sink = nullptr;

  // -- Decision-log cursor, advanced by the pipeline driver --------------
  std::uint64_t next_seq = 0;
  std::int64_t vector_index = -1;
  std::int64_t pair_index = -1;

  bool has_sink() const { return sink != nullptr; }

  void emit(const DecisionEvent& event) {
    if (sink != nullptr) sink->decision(event);
  }
  void emit(const ClusterEvent& event) {
    if (sink != nullptr) sink->cluster(event);
  }
};

}  // namespace micco::obs
