// Request tracing: trace contexts, span events and span sinks (DESIGN.md §7).
//
// Every job the daemon admits yields one span tree — a root "job" span with
// "queue" and "dispatch" children, per-vector "sched"/"exec" spans and
// "recovery" spans under dispatch — written as JSONL, one compact object
// per line, and summarizable offline by `micco report --spans`.
//
// Determinism contract (same as the decision log): span records carry NO
// wall-clock values. Ids are allocated from a per-job counter (root = 1),
// the trace id is minted deterministically by the client, durations are
// simulated time, and ordering comes from the sink's monotone sequence
// number — so a `--threads=1` session's trace file is byte-identical across
// identical runs and diffable like any other log.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"

namespace micco::obs {

/// Identity and id allocator for one job's span tree. Minted by the client
/// (trace_id), completed by the server (job_id/tenant); lower layers emit
/// spans parented at `parent_span` and allocate child ids with alloc().
/// Allocation is eager — a parent's id is always smaller than its
/// children's — so trees reassemble regardless of emission order.
struct TraceContext {
  std::string trace_id;
  std::uint64_t job_id = 0;
  std::string tenant;
  /// Next span id to hand out; ids are per-job, starting at 1 (the root).
  std::uint64_t next_span = 1;
  /// Parent for spans emitted by the current layer (the server points this
  /// at the dispatch span before entering run_stream).
  std::uint64_t parent_span = 0;

  std::uint64_t alloc() { return next_span++; }
};

/// One span record. Optional fields (tenant, vector_index, sim_time_s,
/// duration_ms) are omitted from the serialized form when unset so records
/// stay compact and byte-stable.
struct SpanEvent {
  std::string trace_id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;             ///< one of names::kSpan* constants
  std::uint64_t job_id = 0;
  std::string tenant;
  std::int64_t vector_index = -1;
  /// Simulated cluster time when the span closed (seconds); < 0: omitted.
  double sim_time_s = -1.0;
  /// Deterministic duration (simulated ms); < 0: omitted.
  double duration_ms = -1.0;
  /// Extra attributes, serialized in insertion order.
  std::vector<std::pair<std::string, std::int64_t>> attrs_int;
  std::vector<std::pair<std::string, double>> attrs_num;
  std::vector<std::pair<std::string, std::string>> attrs_str;

  /// Serializes with the sink-assigned sequence number leading.
  JsonValue to_json(std::uint64_t seq) const;
};

class SpanSink {
 public:
  virtual ~SpanSink() = default;
  /// By value so emitters hand their event over with a move — buffering
  /// sinks keep the strings and attribute vectors without a deep copy,
  /// which matters under the tracing-overhead budget (bench_overhead).
  virtual void span(SpanEvent event) = 0;
  virtual void flush() {}
};

/// Writes one compact JSON object per span per line to a borrowed stream.
/// The internal mutex makes concurrent emission safe (whole lines, never
/// interleaved bytes) and owns the monotone `seq` stamp; a deterministic
/// line *order* additionally requires emitting from one thread, which the
/// daemon's dispatcher does.
class JsonlSpanSink final : public SpanSink {
 public:
  explicit JsonlSpanSink(std::ostream& out) : out_(out) {}

  void span(SpanEvent event) override;
  void flush() override;

 private:
  std::ostream& out_;
  Mutex mutex_{"JsonlSpanSink::mutex_", kLockRankSpanSink};
  std::uint64_t seq_ MICCO_GUARDED_BY(mutex_) = 0;
};

/// Buffers spans in memory; tests and the trace summarizer use it.
class MemorySpanSink final : public SpanSink {
 public:
  void span(SpanEvent event) override { spans_.push_back(std::move(event)); }
  const std::vector<SpanEvent>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

 private:
  std::vector<SpanEvent> spans_;
};

}  // namespace micco::obs
