// The injectable clock behind every timestamp the daemon takes.
//
// Two faces, deliberately separate: monotonic_ms() is the only source for
// durations (queue wait, end-to-end latency, uptime — never subject to NTP
// steps), and wall_time_utc() is the one sanctioned wall-clock read, taken
// once per serving session to stamp the run report. Nothing else in src/
// may touch wall time — micco-lint's det-rng rule enforces that — so all
// logs, traces and labels stay a pure function of the inputs while reports
// still say when they were generated.
//
// Tests inject a ManualClock to script latencies; production code uses the
// process-wide SystemClock from default_clock().
#pragma once

#include <string>

namespace micco::obs {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds on a monotonic timeline. The zero point is unspecified
  /// (per-clock); only differences are meaningful.
  virtual double monotonic_ms() = 0;

  /// Current wall time formatted "YYYY-MM-DDTHH:MM:SSZ" (UTC, second
  /// resolution). The one wall-clock capture per run goes through here.
  virtual std::string wall_time_utc() = 0;
};

/// Real time: steady_clock for durations, UTC wall time for the stamp.
class SystemClock final : public Clock {
 public:
  double monotonic_ms() override;
  std::string wall_time_utc() override;
};

/// Scripted time for tests: both faces advance only when told to.
class ManualClock final : public Clock {
 public:
  double monotonic_ms() override { return now_ms_; }
  std::string wall_time_utc() override { return wall_; }

  void advance_ms(double delta) { now_ms_ += delta; }
  void set_wall(std::string stamp) { wall_ = std::move(stamp); }

 private:
  double now_ms_ = 0.0;
  std::string wall_ = "1970-01-01T00:00:00Z";
};

/// The process-wide SystemClock (lazily constructed, never destroyed before
/// exit). Components take a Clock* defaulting to this.
Clock* default_clock();

}  // namespace micco::obs
