#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace micco::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  MICCO_EXPECTS_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  MICCO_EXPECTS_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

JsonValue MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  JsonValue out = JsonValue::object();
  JsonValue& counters = out.set("counters", JsonValue::object());
  for (const auto& [name, c] : counters_) {
    counters.set(name, c.value());
  }
  JsonValue& gauges = out.set("gauges", JsonValue::object());
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, g.value());
  }
  JsonValue& histograms = out.set("histograms", JsonValue::object());
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : h.upper_bounds()) bounds.push_back(b);
    entry.set("upper_bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (const std::uint64_t c : h.bucket_counts()) counts.push_back(c);
    entry.set("counts", std::move(counts));
    entry.set("count", h.count());
    entry.set("sum", h.sum());
    histograms.set(name, std::move(entry));
  }
  return out;
}

}  // namespace micco::obs
