#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace micco::obs {

namespace {

std::size_t bucket_index(const std::vector<double>& bounds, double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

void check_bounds(const std::vector<double>& bounds) {
  MICCO_EXPECTS_MSG(!bounds.empty(), "histogram needs at least one bucket");
  MICCO_EXPECTS_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                    "histogram bounds must be ascending");
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  check_bounds(bounds_);
}

Histogram::Histogram(Histogram&& other) : bounds_(std::move(other.bounds_)) {
  const MutexLock lock(other.mutex_);
  counts_ = std::move(other.counts_);
  count_ = other.count_;
  sum_ = other.sum_;
}

void Histogram::observe(double value) {
  const std::size_t idx = bucket_index(bounds_, value);
  const MutexLock lock(mutex_);
  ++counts_[idx];
  ++count_;
  sum_ += value;
}

void Histogram::absorb(const std::vector<std::uint64_t>& bucket_counts,
                       std::uint64_t count, double sum) {
  MICCO_EXPECTS_MSG(bucket_counts.size() == bounds_.size() + 1,
                    "histogram absorb: bucket shape mismatch");
  const MutexLock lock(mutex_);
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    counts_[i] += bucket_counts[i];
  }
  count_ += count;
  sum_ += sum;
}

void Histogram::merge_from(const Histogram& other) {
  MICCO_EXPECTS_MSG(bounds_ == other.bounds_,
                    "histogram merge: bucket bounds differ");
  // Copy out under the source lock, apply under our own; the two scopes
  // never nest, so self-merge and cross-merge from any thread are safe.
  absorb(other.bucket_counts(), other.count(), other.sum());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  const MutexLock lock(mutex_);
  return counts_;
}

std::uint64_t Histogram::count() const {
  const MutexLock lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const MutexLock lock(mutex_);
  return sum_;
}

double Histogram::mean() const {
  const MutexLock lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  const MutexLock lock(mutex_);
  return quantile_from(bounds_, counts_, count_, q);
}

double Histogram::quantile_from(const std::vector<double>& bounds,
                                const std::vector<std::uint64_t>& counts,
                                std::uint64_t total, double q) {
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    cum += counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // overflow bucket
    const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double into =
        rank - static_cast<double>(cum - counts[i]);
    double fraction = into / static_cast<double>(counts[i]);
    fraction = std::min(1.0, std::max(0.0, fraction));
    return lower + fraction * (bounds[i] - lower);
  }
  return bounds.back();
}

HistogramScratch::HistogramScratch(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  check_bounds(bounds_);
}

void HistogramScratch::flush_into(Histogram& h) {
  MICCO_EXPECTS_MSG(h.upper_bounds() == bounds_,
                    "histogram flush: bucket bounds differ");
  if (count_ == 0) return;
  h.absorb(counts_, count_, sum_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

JsonValue MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  JsonValue out = JsonValue::object();
  JsonValue& counters = out.set("counters", JsonValue::object());
  for (const auto& [name, c] : counters_) {
    counters.set(name, c.value());
  }
  JsonValue& gauges = out.set("gauges", JsonValue::object());
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, g.value());
  }
  JsonValue& histograms = out.set("histograms", JsonValue::object());
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : h.upper_bounds()) bounds.push_back(b);
    entry.set("upper_bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (const std::uint64_t c : h.bucket_counts()) counts.push_back(c);
    entry.set("counts", std::move(counts));
    entry.set("count", h.count());
    entry.set("sum", h.sum());
    histograms.set(name, std::move(entry));
  }
  return out;
}

JsonValue MetricsRegistry::quantile_summary() const {
  const MutexLock lock(mutex_);
  JsonValue out = JsonValue::object();
  JsonValue& counters = out.set("counters", JsonValue::object());
  for (const auto& [name, c] : counters_) {
    counters.set(name, c.value());
  }
  JsonValue& gauges = out.set("gauges", JsonValue::object());
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, g.value());
  }
  JsonValue& histograms = out.set("histograms", JsonValue::object());
  for (const auto& [name, h] : histograms_) {
    // One consistent capture per histogram so count/sum/quantiles agree
    // even while another thread records.
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    JsonValue entry = JsonValue::object();
    entry.set("count", total);
    entry.set("sum", h.sum());
    entry.set("mean",
              total == 0 ? 0.0 : h.sum() / static_cast<double>(total));
    entry.set("p50",
              Histogram::quantile_from(h.upper_bounds(), counts, total, 0.5));
    entry.set("p90",
              Histogram::quantile_from(h.upper_bounds(), counts, total, 0.9));
    entry.set("p99",
              Histogram::quantile_from(h.upper_bounds(), counts, total, 0.99));
    histograms.set(name, std::move(entry));
  }
  return out;
}

namespace {

std::string prometheus_name(const std::string& dotted) {
  std::string out = "micco_";
  for (const char c : dotted) {
    out += c == '.' ? '_' : c;
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  const MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + json_number(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = prometheus_name(name);
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cum += counts[i];
      out += pname + "_bucket{le=\"" + json_number(h.upper_bounds()[i]) +
             "\"} " + std::to_string(cum) + "\n";
    }
    cum += counts.back();
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += pname + "_sum " + json_number(h.sum()) + "\n";
    out += pname + "_count " + std::to_string(cum) + "\n";
  }
  return out;
}

}  // namespace micco::obs
