#include "obs/events.hpp"

#include <ostream>

namespace micco::obs {

const char* to_string(ClusterEventKind kind) {
  switch (kind) {
    case ClusterEventKind::kFetch: return "fetch";
    case ClusterEventKind::kEviction: return "eviction";
    case ClusterEventKind::kBarrier: return "barrier";
    case ClusterEventKind::kTransferRetry: return "transfer-retry";
    case ClusterEventKind::kDeviceFailure: return "device-failure";
    case ClusterEventKind::kCapacityLoss: return "capacity-loss";
    case ClusterEventKind::kRecovery: return "recovery";
  }
  return "?";
}

JsonValue DecisionEvent::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("event", "decision");
  out.set("seq", seq);
  out.set("vector", vector_index);
  out.set("pair", pair_index);
  out.set("scheduler", scheduler);
  out.set("a", tensor_a);
  out.set("b", tensor_b);
  out.set("out", tensor_out);
  out.set("pattern", pattern);
  JsonValue cands = JsonValue::array();
  for (const int dev : candidates) cands.push_back(dev);
  out.set("candidates", std::move(cands));
  out.set("chosen", chosen);
  out.set("mapping", mapping);
  out.set("bound_tier", bound_tier);
  out.set("bound_value", bound_value);
  out.set("balance_num", balance_num);
  out.set("fallback", fallback);
  out.set("evict_risk", evict_risk);
  return out;
}

JsonValue ClusterEvent::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("event", to_string(kind));
  out.set("device", device);
  // Barrier, device-failure and recovery records carry no tensor payload.
  const bool payload = kind == ClusterEventKind::kFetch ||
                       kind == ClusterEventKind::kEviction ||
                       kind == ClusterEventKind::kTransferRetry ||
                       kind == ClusterEventKind::kCapacityLoss;
  if (payload) {
    out.set("tensor", tensor);
    out.set("bytes", bytes);
  }
  out.set("t_s", time_s);
  out.set("dur_s", duration_s);
  if (!detail.empty()) out.set("detail", detail);
  if (kind == ClusterEventKind::kEviction) {
    out.set("victim_age_s", victim_age_s);
  }
  if (count >= 0) out.set("count", count);
  return out;
}

void JsonlEventSink::decision(const DecisionEvent& event) {
  out_ << event.to_json().dump() << '\n';
}

void JsonlEventSink::cluster(const ClusterEvent& event) {
  out_ << event.to_json().dump() << '\n';
}

void BufferedJsonlEventSink::append(const JsonValue& json, bool urgent) {
  const MutexLock lock(mutex_);
  buffer_ += json.dump();
  buffer_ += '\n';
  if (urgent || buffer_.size() >= flush_bytes_) flush_locked();
}

void BufferedJsonlEventSink::decision(const DecisionEvent& event) {
  append(event.to_json(), /*urgent=*/false);
}

void BufferedJsonlEventSink::cluster(const ClusterEvent& event) {
  // Fault records must not sit in a process-local buffer: if the run dies
  // right after the fault, the log still has to show it.
  const bool urgent = event.kind == ClusterEventKind::kDeviceFailure ||
                      event.kind == ClusterEventKind::kCapacityLoss;
  append(event.to_json(), urgent);
}

void BufferedJsonlEventSink::flush() {
  const MutexLock lock(mutex_);
  flush_locked();
}

void BufferedJsonlEventSink::flush_locked() {
  if (!buffer_.empty()) {
    out_.write(buffer_.data(),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_.flush();
}

}  // namespace micco::obs
