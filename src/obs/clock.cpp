#include "obs/clock.hpp"

#include <chrono>
#include <ctime>

namespace micco::obs {

double SystemClock::monotonic_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

std::string SystemClock::wall_time_utc() {
  // micco-lint: allow(det-rng) the one sanctioned wall-clock read (report stamp)
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  ::gmtime_r(&now, &utc);
  char buf[32];
  const std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ",
                                      &utc);
  return std::string(buf, n);
}

Clock* default_clock() {
  static SystemClock clock;
  return &clock;
}

}  // namespace micco::obs
