#include "obs/span.hpp"

#include <ostream>

namespace micco::obs {

JsonValue SpanEvent::to_json(std::uint64_t seq) const {
  JsonValue doc = JsonValue::object();
  doc.set("seq", seq);
  doc.set("trace", trace_id);
  doc.set("span", span_id);
  doc.set("parent", parent_id);
  doc.set("name", name);
  doc.set("job", job_id);
  if (!tenant.empty()) doc.set("tenant", tenant);
  if (vector_index >= 0) doc.set("vector", vector_index);
  if (sim_time_s >= 0.0) doc.set("sim_time_s", sim_time_s);
  if (duration_ms >= 0.0) doc.set("duration_ms", duration_ms);
  for (const auto& [key, value] : attrs_int) doc.set(key, value);
  for (const auto& [key, value] : attrs_num) doc.set(key, value);
  for (const auto& [key, value] : attrs_str) doc.set(key, value);
  return doc;
}

void JsonlSpanSink::span(SpanEvent event) {
  const MutexLock lock(mutex_);
  out_ << event.to_json(seq_++).dump() << '\n';
}

void JsonlSpanSink::flush() {
  const MutexLock lock(mutex_);
  out_.flush();
}

}  // namespace micco::obs
