#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace micco::obs {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  MICCO_EXPECTS(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  MICCO_EXPECTS(kind_ == Kind::kInt);
  return int_;
}

double JsonValue::as_double() const {
  MICCO_EXPECTS(is_number());
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  MICCO_EXPECTS(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  MICCO_EXPECTS(kind_ == Kind::kArray);
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  MICCO_EXPECTS(kind_ == Kind::kObject);
  return object_;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  MICCO_EXPECTS(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
  return array_.back();
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  MICCO_EXPECTS(kind_ == Kind::kObject);
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  MICCO_EXPECTS_MSG(v != nullptr, "missing JSON object key");
  return *v;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) {
    // Int/double compare by numeric value so parse(dump(x)) == x even when
    // the parser picked the other representation.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kDouble: return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

std::string json_number(double value) {
  MICCO_EXPECTS_MSG(std::isfinite(value),
                    "JSON cannot represent NaN/Inf numbers");
  // Integral doubles print without an exponent or trailing ".0"; everything
  // else uses the shortest form that round-trips exactly.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  MICCO_ASSERT(ec == std::errc{});
  return std::string(buf, ptr);
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: out += json_number(double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += "\":";
        if (pretty) out += ' ';
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::dump_pretty(int indent) const {
  std::string out;
  write(out, indent, /*depth=*/0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    skip_ws();
    if (value && pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      value.reset();
    }
    if (!value && error != nullptr) *error = error_;
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (consume_word("null")) return JsonValue();
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    return parse_number();
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a JSON value");
      return std::nullopt;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.find_first_of(".eE") == std::string::npos) {
      std::int64_t i = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return JsonValue(i);
      }
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      fail("malformed number '" + token + "'");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || ptr != text_.data() + pos_ + 4) {
            fail("malformed \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // The writer only emits \u00xx for control bytes; decode the
          // basic-latin range and pass anything else through as '?' rather
          // than implementing full UTF-16 surrogate handling.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape sequence");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      std::optional<JsonValue> item = parse_value();
      if (!item) return std::nullopt;
      out.push_back(std::move(*item));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> value = parse_value();
      if (!value) return std::nullopt;
      out.set(*key, std::move(*value));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace micco::obs
