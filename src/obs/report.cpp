#include "obs/report.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace micco::obs {

JsonValue build_report(const ReportInputs& inputs,
                       const MetricsRegistry& registry) {
  JsonValue report = JsonValue::object();
  report.set("schema_version", kReportSchemaVersion);
  if (!inputs.generated_at.empty()) {
    report.set("generated_at", inputs.generated_at);
  }
  report.set("scheduler", inputs.scheduler);

  JsonValue cluster = JsonValue::object();
  cluster.set("num_devices", inputs.num_devices);
  report.set("cluster", std::move(cluster));

  report.set("metrics", inputs.metrics);

  JsonValue derived = JsonValue::object();
  derived.set("makespan_s", inputs.makespan_s);
  derived.set("gflops", inputs.gflops);
  derived.set("scheduling_overhead_ms", inputs.scheduling_overhead_ms);
  derived.set("reuse_rate", inputs.reuse_rate);
  derived.set("imbalance_ratio", inputs.imbalance_ratio);
  report.set("derived", std::move(derived));

  JsonValue devices = JsonValue::array();
  for (const DeviceRollup& d : inputs.devices) {
    JsonValue entry = JsonValue::object();
    entry.set("device", d.device);
    entry.set("busy_s", d.busy_s);
    entry.set("utilization", d.utilization);
    devices.push_back(std::move(entry));
  }
  report.set("devices", std::move(devices));

  report.set("registry", registry.snapshot());
  return report;
}

std::string validate_report(const JsonValue& report) {
  if (report.kind() != JsonValue::Kind::kObject) {
    return "report is not a JSON object";
  }
  const JsonValue* version = report.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return "missing schema_version";
  }
  if (version->as_int() != kReportSchemaVersion) {
    return "unsupported schema_version " + std::to_string(version->as_int());
  }
  for (const char* key :
       {"scheduler", "cluster", "metrics", "derived", "devices", "registry"}) {
    if (report.find(key) == nullptr) {
      return std::string("missing field '") + key + "'";
    }
  }
  const JsonValue& devices = report.at("devices");
  if (devices.kind() != JsonValue::Kind::kArray) {
    return "'devices' is not an array";
  }
  for (const JsonValue& d : devices.items()) {
    if (d.find("utilization") == nullptr) {
      return "device entry missing 'utilization'";
    }
  }
  const JsonValue& registry = report.at("registry");
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (registry.find(key) == nullptr) {
      return std::string("registry snapshot missing '") + key + "'";
    }
  }
  return "";
}

void write_report_file(const JsonValue& report, const std::string& path) {
  std::ofstream out(path);
  MICCO_EXPECTS_MSG(out.good(), "cannot open report file for writing");
  out << report.dump_pretty() << '\n';
  out.flush();
  MICCO_EXPECTS_MSG(out.good(), "report file write failed");
}

}  // namespace micco::obs
