// Structured telemetry events and sinks.
//
// The event half of the observability layer records *why* the system did
// what it did, one record per occurrence: every scheduler decision (which
// reuse pattern the pair classified as, which devices were considered, which
// reuse-bound tier admitted the winner, whether the fallback fired) and
// every notable cluster event (operand fetch, eviction with victim and
// cause, stage barrier). Sinks are pluggable; the JSONL sink writes one
// compact JSON object per line so logs diff, grep and replay deterministically
// — no wall-clock timestamps, only simulated time and sequence numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/lock_ranks.hpp"
#include "common/mutex.hpp"
#include "obs/json.hpp"

namespace micco::obs {

/// One scheduler decision (Alg. 1 + Alg. 2 outcome for one tensor pair).
struct DecisionEvent {
  std::uint64_t seq = 0;          ///< global decision number within the run
  std::int64_t vector_index = -1; ///< vector ordinal in the stream
  std::int64_t pair_index = -1;   ///< pair ordinal within the vector
  std::uint64_t tensor_a = 0;
  std::uint64_t tensor_b = 0;
  std::uint64_t tensor_out = 0;
  std::string scheduler;          ///< scheduler name ("MICCO", "Groute", ...)
  std::string pattern;            ///< local reuse pattern ("TwoRepeatedSame"…)
  std::vector<int> candidates;    ///< devices that survived the tier filters
  int chosen = -1;
  std::string mapping;            ///< Fig. 4 mapping class of the final choice
  /// Reuse-bound tier that produced the candidate set: 0 = TwoRepeatedSame
  /// bound, 1 = one-reused bound, 2 = TwoNew bound, -1 = scheduler has no
  /// tiers (baselines).
  int bound_tier = -1;
  std::int64_t bound_value = -1;  ///< the gating bound's value (-1: none)
  std::int64_t balance_num = -1;  ///< balanceNum in force (-1: none)
  bool fallback = false;          ///< every tier was exhausted (implicit rule)
  bool evict_risk = false;        ///< memory-eviction-sensitive policy fired

  JsonValue to_json() const;
};

/// Kinds of cluster-side events worth a log record.
enum class ClusterEventKind : std::uint8_t {
  kFetch,          ///< operand materialised on a device (H2D or P2P)
  kEviction,       ///< LRU victim pushed out under capacity pressure
  kBarrier,        ///< stage barrier; one record per idle device
  kTransferRetry,  ///< transient transfer fault: wasted attempt + backoff
  kDeviceFailure,  ///< permanent device loss detected
  kCapacityLoss,   ///< spurious capacity shrink applied
  kRecovery,       ///< pipeline re-enqueued work after a device loss
};

const char* to_string(ClusterEventKind kind);

struct ClusterEvent {
  ClusterEventKind kind = ClusterEventKind::kFetch;
  int device = -1;
  std::uint64_t tensor = 0;  ///< fetched operand / eviction victim; 0: barrier
  std::uint64_t bytes = 0;
  double time_s = 0.0;       ///< simulated time the event completed
  double duration_s = 0.0;   ///< priced duration (barrier: idle gap)
  std::string detail;        ///< fetch: "h2d"/"p2p"; eviction: cause
  double victim_age_s = 0.0; ///< eviction only: residency age of the victim
  /// Fault events only: lost tensors (device failure) or re-enqueued tasks
  /// (recovery); emitted when >= 0.
  std::int64_t count = -1;

  JsonValue to_json() const;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void decision(const DecisionEvent& event) = 0;
  virtual void cluster(const ClusterEvent& event) = 0;
};

/// Swallows everything (telemetry attached for the registry alone).
class NullEventSink final : public EventSink {
 public:
  void decision(const DecisionEvent&) override {}
  void cluster(const ClusterEvent&) override {}
};

/// Writes one compact JSON object per event per line ("JSON Lines"). The
/// stream is borrowed and must outlive the sink.
class JsonlEventSink final : public EventSink {
 public:
  explicit JsonlEventSink(std::ostream& out) : out_(out) {}
  void decision(const DecisionEvent& event) override;
  void cluster(const ClusterEvent& event) override;

 private:
  std::ostream& out_;
};

/// JSONL sink that batches serialized lines in a string and flushes the
/// batch to the borrowed stream once it crosses `flush_bytes`, amortising
/// stream-formatting overhead on decision-heavy runs. Output is line-
/// identical to JsonlEventSink. The buffer drains on destruction, on an
/// explicit flush(), and *immediately* after fault events (device failure,
/// capacity loss) so a crash right after a fault still leaves the fault on
/// disk. The stream is borrowed and must outlive the sink.
///
/// The batch buffer (and the borrowed stream, while draining) sit behind an
/// internal annotated mutex: a sink shared across parallel sweep lanes
/// appends whole lines atomically instead of interleaving bytes. Callers
/// that need a *deterministic line order* must still emit from one thread
/// (the run_stream hot path does) — the lock makes concurrent emission
/// safe, not ordered.
class BufferedJsonlEventSink final : public EventSink {
 public:
  static constexpr std::size_t kDefaultFlushBytes = 64 * 1024;

  explicit BufferedJsonlEventSink(std::ostream& out,
                                  std::size_t flush_bytes = kDefaultFlushBytes)
      : out_(out), flush_bytes_(flush_bytes) {
    buffer_.reserve(flush_bytes_ + 4096);
  }
  ~BufferedJsonlEventSink() override { flush(); }

  BufferedJsonlEventSink(const BufferedJsonlEventSink&) = delete;
  BufferedJsonlEventSink& operator=(const BufferedJsonlEventSink&) = delete;

  void decision(const DecisionEvent& event) override;
  void cluster(const ClusterEvent& event) override;

  /// Writes any buffered lines to the stream and flushes the stream itself.
  void flush();

 private:
  void append(const JsonValue& json, bool urgent);
  void flush_locked() MICCO_REQUIRES(mutex_);

  std::ostream& out_;
  std::size_t flush_bytes_;
  Mutex mutex_{"BufferedJsonlEventSink::mutex_", kLockRankEventSink};
  std::string buffer_ MICCO_GUARDED_BY(mutex_);
};

/// Buffers events in memory; used by tests and the CLI's pretty printer.
class MemoryEventSink final : public EventSink {
 public:
  void decision(const DecisionEvent& event) override {
    decisions_.push_back(event);
  }
  void cluster(const ClusterEvent& event) override {
    cluster_events_.push_back(event);
  }

  const std::vector<DecisionEvent>& decisions() const { return decisions_; }
  const std::vector<ClusterEvent>& cluster_events() const {
    return cluster_events_;
  }
  void clear() {
    decisions_.clear();
    cluster_events_.clear();
  }

 private:
  std::vector<DecisionEvent> decisions_;
  std::vector<ClusterEvent> cluster_events_;
};

}  // namespace micco::obs
