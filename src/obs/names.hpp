// The one home of every metric and span name (DESIGN.md §7c).
//
// Instrumentation sites across sched/, gpusim/, core/ and service/ refer to
// these constants instead of spelling dotted name literals inline, so the
// whole telemetry vocabulary is greppable in one place and a renamed metric
// cannot silently fork into two series. micco-lint's `metric-name-literal`
// rule enforces this: a string literal that looks like a dotted metric name
// ("sched.…", "cluster.…", "service.…") anywhere outside this header is a
// lint finding.
//
// Naming conventions:
//   sched.*            scheduler decisions and their classification
//   cluster.*          simulated-cluster events (fetches, evictions, barriers)
//   cluster.device.N.* per-device rollups
//   mem.*              eviction-policy and memory-arbiter accounting
//   mem.tenant.T.*     per-tenant modeled residency gauges
//   service.*          daemon lifecycle counters and queue gauges
//   service.tenant.T.* per-tenant latency histograms and SLO counters
// Histogram names carry their unit as the last suffix segment (_ms, _us,
// _bytes, _s); counters are unsuffixed event counts.
#pragma once

#include <string>
#include <vector>

namespace micco::obs::names {

// -- sched.* ---------------------------------------------------------------
inline constexpr const char* kSchedDecisions = "sched.decisions";
inline constexpr const char* kSchedFallback = "sched.fallback";
inline constexpr const char* kSchedEvictRisk = "sched.evict_risk";
inline constexpr const char* kSchedBoundSlack = "sched.bound_slack";
/// Wall-clock per-decision latency on the hot path, recorded only when a
/// HistogramScratch is attached (the daemon does; batch runs stay
/// byte-identical without it).
inline constexpr const char* kSchedDecisionLatencyUs =
    "sched.decision_latency_us";

/// Indexed by LocalReusePattern / MappingClass−1 / reuse-bound tier.
inline constexpr const char* kSchedPattern[4] = {
    "sched.pattern.two_repeated_same", "sched.pattern.two_repeated_diff",
    "sched.pattern.one_repeated", "sched.pattern.two_new"};
inline constexpr const char* kSchedMapping[4] = {
    "sched.mapping.both_reused", "sched.mapping.first_reused",
    "sched.mapping.second_reused", "sched.mapping.none_reused"};
inline constexpr const char* kSchedTier[3] = {
    "sched.tier.two_repeated_same", "sched.tier.one_reused",
    "sched.tier.two_new"};

/// Epoch-keyed reuse-pattern cache (incremental scheduler core): a hit
/// answers classification from the cached (pair, epochs) entry, a miss
/// recomputes it against the residency index. Registered only while the
/// incremental path is active — the --sched-incremental=off escape hatch
/// has no cache, and these two counters are the single intentional report
/// difference between the two modes.
inline constexpr const char* kSchedPatternCacheHits =
    "sched.pattern_cache.hits";
inline constexpr const char* kSchedPatternCacheMisses =
    "sched.pattern_cache.misses";

// -- cluster.* -------------------------------------------------------------
inline constexpr const char* kClusterFetchBytes = "cluster.fetch.bytes";
inline constexpr const char* kClusterEvictionVictimAgeS =
    "cluster.eviction.victim_age_s";
inline constexpr const char* kClusterBarrierIdleS = "cluster.barrier.idle_s";
/// Residency-epoch bumps in the incremental cluster index: one per tensor
/// placement or removal (fetch, output alloc, eviction, discard, device
/// failure). The pattern cache invalidates on these.
inline constexpr const char* kClusterEpochBumps = "cluster.index.epoch_bumps";
/// Per-device gauge prefix: "cluster.device.<N>." + {utilization, busy_s}.
inline constexpr const char* kClusterDevicePrefix = "cluster.device.";
inline constexpr const char* kDeviceUtilizationSuffix = "utilization";
inline constexpr const char* kDeviceBusySSuffix = "busy_s";

// -- mem.* (memory co-design subsystem, DESIGN.md §11) ---------------------
/// Per-policy eviction counters: "mem.evictions.<policy>" /
/// "mem.evicted_bytes.<policy>" with the policy's metric-safe name ("lru",
/// "reuse_distance", "pin_until_last_use") appended via mem_policy_metric().
/// Registered only while an eviction policy is attached — the policy-free
/// default path keeps registry snapshots byte-identical to pre-policy runs.
inline constexpr const char* kMemEvictionsPrefix = "mem.evictions.";
inline constexpr const char* kMemEvictedBytesPrefix = "mem.evicted_bytes.";
/// Victim next-use distance (pairs until reuse) observed at each eviction by
/// the future-use-aware policies; victims with no known future use are not
/// observed (they are the free wins, not part of the tradeoff).
inline constexpr const char* kMemReuseDistance = "mem.reuse_distance";
/// Cold cross-tenant bytes the arbiter pre-evicted at job admissions.
inline constexpr const char* kMemArbiterPreevictedBytes =
    "mem.arbiter.preevicted_bytes";
/// Admissions the arbiter arbitrated (with or without pre-eviction).
inline constexpr const char* kMemArbiterAdmissions = "mem.arbiter.admissions";
/// Per-tenant modeled residency gauge: "mem.tenant.<T>." + suffix.
inline constexpr const char* kMemTenantPrefix = "mem.tenant.";
inline constexpr const char* kMemTenantResidentBytesSuffix = "resident_bytes";

inline std::string mem_policy_metric(const char* prefix,
                                     const char* policy_name) {
  return std::string(prefix) + policy_name;
}

inline std::string mem_tenant_metric(const std::string& tenant,
                                     const char* suffix) {
  return std::string(kMemTenantPrefix) + tenant + "." + suffix;
}

// -- service.* -------------------------------------------------------------
inline constexpr const char* kServiceQueued = "service.queued";
inline constexpr const char* kServiceRunning = "service.running";
inline constexpr const char* kServiceQueueDepthPrefix = "service.queue_depth.";
inline constexpr const char* kServiceSubmitted = "service.submitted";
inline constexpr const char* kServiceAdmitted = "service.admitted";
inline constexpr const char* kServiceRejected = "service.rejected";
inline constexpr const char* kServiceDispatched = "service.dispatched";
inline constexpr const char* kServiceCompleted = "service.completed";
inline constexpr const char* kServiceFailed = "service.failed";
inline constexpr const char* kServiceCancelled = "service.cancelled";
/// Submit → dispatch wall time across all tenants.
inline constexpr const char* kServiceQueueLatencyMs =
    "service.queue_latency_ms";
/// A submit carrying an already-journaled (tenant, idempotency token) pair
/// answered from the dedup table instead of admitting a second run.
inline constexpr const char* kServiceDuplicateSubmits =
    "service.duplicate_submits";

// -- service.journal.* / service.recovery.* --------------------------------
inline constexpr const char* kServiceJournalRecords = "service.journal.records";
inline constexpr const char* kServiceJournalBytes = "service.journal.bytes";
/// Wall latency of each policy-required fsync on the journal append path.
inline constexpr const char* kServiceJournalFsyncMs =
    "service.journal.fsync_ms";
/// Jobs whose finished record replayed from the journal at startup (they
/// answer status/result without re-running).
inline constexpr const char* kServiceReplayedFinished =
    "service.recovery.replayed_finished";
/// Jobs re-admitted at startup because they were QUEUED or RUNNING at crash
/// time.
inline constexpr const char* kServiceRequeued = "service.recovery.requeued";
/// Journal recoveries that dropped a torn or corrupt tail before replay.
inline constexpr const char* kServiceTornTail = "service.recovery.torn_tail";

// -- service.tenant.<T>.* --------------------------------------------------
inline constexpr const char* kTenantPrefix = "service.tenant.";
/// Per-tenant metric suffixes (appended as kTenantPrefix + tenant + "." +
/// suffix via tenant_metric()).
inline constexpr const char* kTenantQueueLatencyMs = "queue_latency_ms";
inline constexpr const char* kTenantE2eLatencyMs = "e2e_latency_ms";
/// Simulated job makespan (deterministic; cross-checkable against the root
/// job span's duration_ms in the trace file).
inline constexpr const char* kTenantJobSimMs = "job_sim_ms";
inline constexpr const char* kTenantSloOk = "slo_ok";
inline constexpr const char* kTenantSloMiss = "slo_miss";

inline std::string tenant_metric(const std::string& tenant,
                                 const char* suffix) {
  return std::string(kTenantPrefix) + tenant + "." + suffix;
}

// -- span names (trace model, DESIGN.md §7a) -------------------------------
inline constexpr const char* kSpanJob = "job";          ///< root, one per job
inline constexpr const char* kSpanQueue = "queue";      ///< admission → dispatch
inline constexpr const char* kSpanDispatch = "dispatch";///< execution container
inline constexpr const char* kSpanSched = "sched";      ///< one vector's decisions
inline constexpr const char* kSpanExec = "exec";        ///< one vector's execution
inline constexpr const char* kSpanRecovery = "recovery";///< re-enqueue after loss
/// Root span (own trace "journal-replay") a recovering daemon emits once,
/// after the re-run jobs' trees, summarizing the startup journal replay.
inline constexpr const char* kSpanJournalReplay = "journal_replay";

// -- shared histogram bounds ----------------------------------------------
/// Wall-latency bounds (ms) for queue/e2e histograms: 1ms … 10s, log decades.
inline std::vector<double> wall_latency_bounds_ms() {
  return {1.0, 10.0, 100.0, 1000.0, 10000.0};
}

/// Simulated-makespan bounds (ms). Shared between the daemon's per-tenant
/// job_sim_ms histograms and the offline trace summarizer so quantiles
/// recomputed from a trace file match the served values exactly.
inline std::vector<double> job_sim_ms_bounds() {
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0};
}

/// Per-decision latency bounds (µs) for the hot-path scratch histogram.
inline std::vector<double> decision_latency_bounds_us() {
  return {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0};
}

/// Journal fsync latency bounds (ms): SSDs land around 0.1–1 ms, spinning
/// disks and contended CI machines in the upper decades.
inline std::vector<double> journal_fsync_bounds_ms() {
  return {0.01, 0.1, 1.0, 10.0, 100.0};
}

/// Victim next-use distance bounds (pairs until reuse) for the
/// mem.reuse_distance histogram: vectors run tens to a few thousand pairs,
/// power-of-two decades.
inline std::vector<double> reuse_distance_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0};
}

}  // namespace micco::obs::names
