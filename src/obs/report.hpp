// Machine-readable run reports.
//
// A run report is the versioned JSON document every experiment emits: the
// simulator's ExecutionMetrics (flattened by the caller — this module does
// not depend on gpusim), the registry snapshot, per-device rollups and the
// derived ratios the paper's tables aggregate (reuse rate, imbalance,
// scheduling overhead). Perf PRs diff these documents before/after; the
// schema_version field is bumped whenever a field changes meaning so stale
// tooling fails loudly instead of misreading.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace micco::obs {

inline constexpr std::int64_t kReportSchemaVersion = 1;

/// Per-device rollup for the report's "devices" array.
struct DeviceRollup {
  int device = 0;
  double busy_s = 0.0;       ///< accumulated non-idle time
  double utilization = 0.0;  ///< busy_s / makespan
};

/// Everything the builder needs besides the registry. The caller (core's
/// pipeline, the CLI, benches) flattens its ExecutionMetrics into `metrics`.
struct ReportInputs {
  std::string scheduler;
  int num_devices = 0;
  JsonValue metrics = JsonValue::object();  ///< flat name -> number object
  std::vector<DeviceRollup> devices;
  double makespan_s = 0.0;
  double gflops = 0.0;
  double scheduling_overhead_ms = 0.0;
  double reuse_rate = 0.0;        ///< reused / (reused + fetched) operands
  double imbalance_ratio = 0.0;   ///< max device busy / mean device busy
  /// Wall-clock stamp ("YYYY-MM-DDTHH:MM:SSZ") captured once per serving
  /// session via obs::Clock. Empty (the batch-path default) omits the field
  /// entirely so byte-compared batch reports stay deterministic.
  std::string generated_at;
};

/// Assembles the versioned report document.
JsonValue build_report(const ReportInputs& inputs,
                       const MetricsRegistry& registry);

/// Structural validation of a (possibly parsed-back) report. Returns the
/// empty string when the document has the required fields of this schema
/// version, else a human-readable complaint.
std::string validate_report(const JsonValue& report);

/// Convenience: writes `report` (pretty) to `path`; aborts on I/O failure.
void write_report_file(const JsonValue& report, const std::string& path);

}  // namespace micco::obs
