// Clang thread-safety analysis annotations.
//
// Static half of the determinism & concurrency gate (DESIGN.md §5e): every
// lock-protected field in the tree carries MICCO_GUARDED_BY, every function
// with a locking precondition carries MICCO_REQUIRES, and CI compiles the
// tree with `-Wthread-safety -Werror=thread-safety` under Clang so a missed
// lock is a build error, not a TSan flake. Under GCC (or any non-Clang
// compiler) every macro expands to nothing, so the annotations are free.
//
// The macros mirror the capability-based vocabulary of Clang's analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Raw std::mutex
// cannot carry these attributes on libstdc++, so annotated code uses the
// micco::Mutex / micco::MutexLock / micco::CondVar wrappers from
// common/mutex.hpp; micco_lint's `thread-annotation` rule enforces that.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MICCO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MICCO_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a capability (a lock). The string names the
/// capability kind in diagnostics ("mutex").
#define MICCO_CAPABILITY(x) MICCO_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define MICCO_SCOPED_CAPABILITY MICCO_THREAD_ANNOTATION_(scoped_lockable)

/// The field or global is protected by the given capability: reads require
/// the capability held shared or exclusive, writes require it exclusive.
#define MICCO_GUARDED_BY(x) MICCO_THREAD_ANNOTATION_(guarded_by(x))

/// Like MICCO_GUARDED_BY, but protects the data a pointer points at.
#define MICCO_PT_GUARDED_BY(x) MICCO_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function must be called with the given capabilities already held
/// (and does not release them).
#define MICCO_REQUIRES(...) \
  MICCO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function acquires the given capabilities and holds them on return.
#define MICCO_ACQUIRE(...) \
  MICCO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the given capabilities (held on entry).
#define MICCO_RELEASE(...) \
  MICCO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define MICCO_TRY_ACQUIRE(...) \
  MICCO_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the given capabilities held
/// (deadlock prevention for self-locking functions).
#define MICCO_EXCLUDES(...) MICCO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define MICCO_RETURN_CAPABILITY(x) MICCO_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis. Use only with
/// a comment explaining why the analysis cannot see the invariant.
#define MICCO_NO_THREAD_SAFETY_ANALYSIS \
  MICCO_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentation marker (expands to nothing on every compiler) for a
/// std::atomic member that is intentionally lock-free: it records that the
/// author considered the synchronisation story, and it satisfies
/// micco_lint's `thread-annotation` rule, which requires every atomic in
/// src/ to carry either a MICCO_* annotation or a justified suppression.
#define MICCO_LOCK_FREE
