#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace micco {

double Pcg32::gaussian(double mean, double stddev) {
  MICCO_EXPECTS(stddev >= 0.0);
  // Box-Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  return mean + stddev * radius * std::cos(theta);
}

std::vector<std::size_t> Pcg32::sample_without_replacement(std::size_t n,
                                                           std::size_t k) {
  MICCO_EXPECTS(k <= n);
  // Partial Fisher-Yates over an index array: O(n) setup, O(k) draws.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + uniform_below(static_cast<std::uint32_t>(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace micco
