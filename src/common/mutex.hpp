// Annotated mutex primitives for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so code locking through them is invisible to `-Wthread-safety` — every
// MICCO_GUARDED_BY access would be diagnosed as unlocked. These thin
// wrappers put the attributes on the locking surface itself; they compile
// to exactly the std:: primitives underneath (the methods are trivial
// forwarders) and work identically under GCC, where the annotations expand
// to nothing. micco_lint's `thread-annotation` rule bans raw std::mutex /
// std::condition_variable in src/ outside this header so new code cannot
// dodge the analysis by accident.
//
// Runtime lock-rank enforcement (DESIGN.md §10.4): a Mutex constructed with
// a name and a rank participates in a strictly-decreasing-rank discipline —
// a thread may only acquire a ranked mutex whose rank is lower than every
// ranked mutex it already holds. Inversions abort immediately with both
// lock names, turning a some-schedules deadlock into an every-schedule
// crash. Checks are on in debug builds (!NDEBUG) by default; define
// MICCO_MUTEX_RANKS to 1/0 to force them on/off regardless of build type.
// Default-constructed (unranked) mutexes are exempt and pay nothing.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/thread_annotations.hpp"

#if defined(MICCO_MUTEX_RANKS)
#if MICCO_MUTEX_RANKS
#define MICCO_MUTEX_RANK_CHECKS 1
#else
#define MICCO_MUTEX_RANK_CHECKS 0
#endif
#elif !defined(NDEBUG)
#define MICCO_MUTEX_RANK_CHECKS 1
#else
#define MICCO_MUTEX_RANK_CHECKS 0
#endif

namespace micco {

#if MICCO_MUTEX_RANK_CHECKS
namespace detail {

/// Per-thread stack of ranked locks currently held, newest last. Fixed
/// capacity: a thread holding this many locks at once is a bug in itself.
struct LockRankStack {
  static constexpr int kCapacity = 32;
  struct Entry {
    const void* mutex;
    const char* name;
    int rank;
  };
  Entry held[kCapacity];
  int count = 0;
};

inline thread_local LockRankStack t_lock_ranks;

/// Abort (before deadlocking) if acquiring `rank` would violate the
/// strictly-decreasing discipline against any ranked lock already held.
inline void lock_rank_check(const char* name, int rank) {
  const LockRankStack& stack = t_lock_ranks;
  for (int i = stack.count - 1; i >= 0; --i) {
    if (stack.held[i].rank <= rank) {
      std::fprintf(stderr,
                   "micco: lock-rank inversion: acquiring '%s' (rank %d) "
                   "while holding '%s' (rank %d); ranks must strictly "
                   "decrease along every acquisition chain (DESIGN.md "
                   "\xc2\xa7"
                   "10.4)\n",
                   name, rank, stack.held[i].name, stack.held[i].rank);
      std::abort();
    }
  }
}

inline void lock_rank_push(const void* mutex, const char* name, int rank) {
  LockRankStack& stack = t_lock_ranks;
  if (stack.count >= LockRankStack::kCapacity) {
    std::fprintf(stderr, "micco: lock-rank stack overflow acquiring '%s'\n",
                 name);
    std::abort();
  }
  stack.held[stack.count++] = {mutex, name, rank};
}

/// Drop `mutex` from the held stack. Searches from the top: releases are
/// almost always LIFO (MutexLock), but manual unlock order is legal.
inline void lock_rank_pop(const void* mutex) {
  LockRankStack& stack = t_lock_ranks;
  for (int i = stack.count - 1; i >= 0; --i) {
    if (stack.held[i].mutex == mutex) {
      for (int j = i; j + 1 < stack.count; ++j) {
        stack.held[j] = stack.held[j + 1];
      }
      --stack.count;
      return;
    }
  }
}

}  // namespace detail
#endif  // MICCO_MUTEX_RANK_CHECKS

/// std::mutex with Clang capability annotations. Lock it through MutexLock
/// (RAII) wherever possible; lock()/unlock() exist for the rare manual
/// sites and for CondVar's adopt/release dance.
class MICCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Ranked mutex (see header comment). `name` must outlive the mutex —
  /// pass a string literal; the rank table lives in common/lock_ranks.hpp.
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MICCO_ACQUIRE() {
#if MICCO_MUTEX_RANK_CHECKS
    // Check before blocking on m_: in a real inversion schedule the
    // acquisition may deadlock, and an abort after it would never run.
    if (rank_ >= 0) detail::lock_rank_check(name_, rank_);
#endif
    m_.lock();
#if MICCO_MUTEX_RANK_CHECKS
    if (rank_ >= 0) detail::lock_rank_push(this, name_, rank_);
#endif
  }

  void unlock() MICCO_RELEASE() {
#if MICCO_MUTEX_RANK_CHECKS
    if (rank_ >= 0) detail::lock_rank_pop(this);
#endif
    m_.unlock();
  }

  bool try_lock() MICCO_TRY_ACQUIRE(true) {
    // try_lock cannot deadlock, so it skips the rank check — but a success
    // still pushes, so later blocking acquisitions see the full held set.
    const bool acquired = m_.try_lock();
#if MICCO_MUTEX_RANK_CHECKS
    if (acquired && rank_ >= 0) detail::lock_rank_push(this, name_, rank_);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex m_;  // micco-lint: allow(thread-annotation) the one wrapped std::mutex
  const char* name_ = nullptr;
  int rank_ = -1;  ///< < 0 = unranked (exempt from rank checking)
};

/// RAII exclusive lock over a micco::Mutex (std::lock_guard shaped, but
/// visible to the analysis as a scoped capability).
class MICCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MICCO_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MICCO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waitable on a micco::Mutex. wait() requires the mutex
/// held (enforced by the analysis); it atomically releases the mutex while
/// blocked and reacquires it before returning, so from the caller's point
/// of view — and the analysis's — the capability is held across the call.
/// There is no predicate overload on purpose: Clang analyses a predicate
/// lambda as a separate unlocked function, so callers write the standard
/// `while (!cond) cv.wait(mutex);` loop, which the analysis understands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mutex) MICCO_REQUIRES(mutex) {
    // Adopt the caller's ownership for the duration of the wait, then hand
    // it back: the unique_lock must not unlock in its destructor because
    // the caller's MutexLock still owns the mutex.
    // micco-lint: allow(thread-annotation) adopt/release dance on the wrapped mutex
    std::unique_lock<std::mutex> adopted(mutex.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

 private:
  std::condition_variable cv_;  // micco-lint: allow(thread-annotation) wrapper implementation detail
};

}  // namespace micco
