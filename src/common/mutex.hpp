// Annotated mutex primitives for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so code locking through them is invisible to `-Wthread-safety` — every
// MICCO_GUARDED_BY access would be diagnosed as unlocked. These thin
// wrappers put the attributes on the locking surface itself; they compile
// to exactly the std:: primitives underneath (the methods are trivial
// forwarders) and work identically under GCC, where the annotations expand
// to nothing. micco_lint's `thread-annotation` rule bans raw std::mutex /
// std::condition_variable in src/ outside this header so new code cannot
// dodge the analysis by accident.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace micco {

/// std::mutex with Clang capability annotations. Lock it through MutexLock
/// (RAII) wherever possible; lock()/unlock() exist for the rare manual
/// sites and for CondVar's adopt/release dance.
class MICCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MICCO_ACQUIRE() { m_.lock(); }
  void unlock() MICCO_RELEASE() { m_.unlock(); }
  bool try_lock() MICCO_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;  // micco-lint: allow(thread-annotation) the one wrapped std::mutex
};

/// RAII exclusive lock over a micco::Mutex (std::lock_guard shaped, but
/// visible to the analysis as a scoped capability).
class MICCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MICCO_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MICCO_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waitable on a micco::Mutex. wait() requires the mutex
/// held (enforced by the analysis); it atomically releases the mutex while
/// blocked and reacquires it before returning, so from the caller's point
/// of view — and the analysis's — the capability is held across the call.
/// There is no predicate overload on purpose: Clang analyses a predicate
/// lambda as a separate unlocked function, so callers write the standard
/// `while (!cond) cv.wait(mutex);` loop, which the analysis understands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mutex) MICCO_REQUIRES(mutex) {
    // Adopt the caller's ownership for the duration of the wait, then hand
    // it back: the unique_lock must not unlock in its destructor because
    // the caller's MutexLock still owns the mutex.
    // micco-lint: allow(thread-annotation) adopt/release dance on the wrapped mutex
    std::unique_lock<std::mutex> adopted(mutex.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

 private:
  std::condition_variable cv_;  // micco-lint: allow(thread-annotation) wrapper implementation detail
};

}  // namespace micco
