// Contract-checking macros in the style of the C++ Core Guidelines (I.6/I.8).
//
// MICCO_EXPECTS checks preconditions, MICCO_ENSURES postconditions and
// MICCO_ASSERT internal invariants. All three abort with a source location
// and message on violation; they stay enabled in release builds because the
// scheduler and simulator are deterministic and cheap to check relative to
// the simulated work.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace micco::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line,
                                            const char* msg) {
  std::fprintf(stderr, "micco: %s violation: (%s) at %s:%d%s%s\n", kind, expr,
               file, line, msg[0] != '\0' ? " - " : "", msg);
  std::abort();
}

}  // namespace micco::detail

#define MICCO_CONTRACT_IMPL(kind, cond, msg)                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::micco::detail::contract_violation(kind, #cond, __FILE__, __LINE__,  \
                                          msg);                             \
    }                                                                       \
  } while (false)

#define MICCO_EXPECTS(cond) MICCO_CONTRACT_IMPL("precondition", cond, "")
#define MICCO_EXPECTS_MSG(cond, msg) MICCO_CONTRACT_IMPL("precondition", cond, msg)
#define MICCO_ENSURES(cond) MICCO_CONTRACT_IMPL("postcondition", cond, "")
#define MICCO_ASSERT(cond) MICCO_CONTRACT_IMPL("invariant", cond, "")
#define MICCO_ASSERT_MSG(cond, msg) MICCO_CONTRACT_IMPL("invariant", cond, msg)
