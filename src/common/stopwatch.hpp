// Wall-clock stopwatch used to measure the *scheduler's own* overhead
// (Table V separates scheduling time from simulated execution time).
#pragma once

#include <chrono>

namespace micco {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace micco
