#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/assert.hpp"

namespace micco::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return kahan_sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_acc = 0.0;
  for (const double x : xs) {
    MICCO_EXPECTS_MSG(x > 0.0, "geomean requires positive values");
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double min(std::span<const double> xs) {
  MICCO_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  MICCO_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double kahan_sum(std::span<const double> xs) {
  double sum = 0.0;
  double carry = 0.0;
  for (const double x : xs) {
    const double y = x - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> result(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    // Extend over the tie group [i, j) and assign the average rank.
    std::size_t j = i + 1;
    while (j < n && xs[order[j]] == xs[order[i]]) ++j;
    const double avg_rank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) result[order[k]] = avg_rank;
    i = j;
  }
  return result;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  MICCO_EXPECTS(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  MICCO_EXPECTS(xs.size() == ys.size());
  const std::vector<double> rx = ranks(xs);
  const std::vector<double> ry = ranks(ys);
  return pearson(rx, ry);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min(xs);
  s.median = median(xs);
  s.max = max(xs);
  return s;
}

std::string format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace micco::stats
