// Small descriptive-statistics helpers shared by the benches and the ML
// module: means, geometric means, variance, median, min/max summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace micco::stats {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance (divides by N); 0 for fewer than one element.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Geometric mean; requires all elements > 0. Used for the paper's
/// "geometric mean speedup" summaries.
double geomean(std::span<const double> xs);

/// Median (average of the two central elements for even sizes).
double median(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Sum with Kahan compensation, so long metric accumulations stay exact
/// enough to compare across schedulers.
double kahan_sum(std::span<const double> xs);

/// Ranks for Spearman correlation: average ranks for ties, 1-based.
std::vector<double> ranks(std::span<const double> xs);

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman's rank correlation coefficient (used for Fig. 5's heatmap).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Five-number-style summary used in bench logs.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Formats a double with fixed precision (bench table cells).
std::string format(double value, int precision = 2);

}  // namespace micco::stats
