// ASCII table rendering for the benchmark harnesses: every figure/table in
// the paper is regenerated as a set of aligned rows so the output can be
// compared against the publication side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace micco {

/// Column alignment inside a rendered table cell.
enum class Align { kLeft, kRight };

/// A simple fixed-schema text table. Columns are declared up front; rows are
/// appended as pre-formatted strings (use stats::format for numbers).
class TextTable {
 public:
  /// Declares a column. All rows added later must carry exactly one cell per
  /// declared column.
  void add_column(std::string header, Align align = Align::kRight);

  /// Appends a row; cell count must equal the declared column count.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next appended row.
  void add_rule();

  /// Renders with column auto-sizing, a header rule and outer borders.
  std::string render() const;

  /// Renders straight to a stream (bench main() convenience).
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Prints a section banner used between benchmark sub-experiments.
std::string banner(const std::string& title);

}  // namespace micco
