#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace micco {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      if (!error_) error_ = "bare '--' is not a valid flag";
      continue;
    }
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      // `--name value` when the next token is not itself a flag, else a
      // boolean `--name`.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_.insert_or_assign(body, std::string(argv[i + 1]));
        ++i;
      } else {
        flags_.insert_or_assign(body, std::string("1"));
      }
    } else if (eq == 0) {
      if (!error_) error_ = "flag with empty name: " + arg;
    } else {
      flags_.insert_or_assign(body.substr(0, eq), body.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.contains(name);
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return fallback;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!queried_.contains(name)) result.push_back(name);
  }
  return result;
}

}  // namespace micco
