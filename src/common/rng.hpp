// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every experiment in the paper reproduction is seeded explicitly, so all
// tables and figures regenerate bit-identically across runs and machines.
// The generator is PCG32 (O'Neill, 2014): small state, excellent statistical
// quality, and a stable cross-platform stream (unlike std::default_random_engine,
// whose mapping through std::*_distribution is implementation-defined --
// which is why the distributions below are hand-rolled too).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace micco {

/// 32-bit permuted congruential generator with a 64-bit state and a
/// selectable stream. Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. Distinct (seed, stream) pairs yield independent
  /// sequences; the default stream matches the PCG reference implementation.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1U) | 1U;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffU; }

  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Uses Lemire-style rejection to avoid
  /// modulo bias.
  std::uint32_t uniform_below(std::uint32_t bound) {
    MICCO_EXPECTS(bound > 0);
    // Rejection threshold: multiples of bound fitting in 2^32.
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MICCO_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1U;
    if (span == 0U) {  // full 64-bit span is not needed by any caller
      return lo + static_cast<std::int64_t>(next64());
    }
    if (span <= 0xffffffffULL) {
      return lo + static_cast<std::int64_t>(
                      uniform_below(static_cast<std::uint32_t>(span)));
    }
    // Wide span: rejection on 64 bits.
    const std::uint64_t threshold = (-span) % span;
    for (;;) {
      const std::uint64_t r = next64();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
    }
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>(next64() >> 11U) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    MICCO_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal deviate via Box-Muller (no cached spare: keeps the
  /// stream position a pure function of the number of calls made).
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = uniform_below(static_cast<std::uint32_t>(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  std::uint64_t next64() {
    return (static_cast<std::uint64_t>(next()) << 32U) | next();
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace micco
