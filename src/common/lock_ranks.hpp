// The global lock-rank table (DESIGN.md §10.4).
//
// Every long-lived micco::Mutex is constructed with a name and one of these
// ranks; the runtime discipline (common/mutex.hpp) requires ranks to
// strictly decrease along every acquisition chain, which makes any cycle —
// including ones the static lock-order analysis cannot see, like the
// g_config_mutex -> Pool::mutex_ edge hidden inside ~Pool — abort loudly in
// debug builds instead of deadlocking on an unlucky schedule.
//
// Placement rule: a mutex's rank must be strictly greater than the rank of
// every mutex that can be acquired while it is held. Leave gaps (the table
// steps by 5–10) so a new lock slots in without renumbering the world.
// micco-lint's lock-order-cycle rule cross-checks the statically visible
// edges; keep the two in sync when adding a lock.
#pragma once

namespace micco {

// parallel/: pool configuration serializes pool construction/teardown,
// which joins workers that hold the pool and loop locks.
inline constexpr int kLockRankParallelConfig = 90;  ///< g_config_mutex
inline constexpr int kLockRankPool = 80;            ///< Pool::mutex_
inline constexpr int kLockRankLoop = 70;            ///< Loop::mutex

// service/: the server state lock fans out to the job table and journal;
// the job table updates metrics; the journal observes fsync latency.
inline constexpr int kLockRankServerState = 60;  ///< Server::state_mutex_
inline constexpr int kLockRankJobManager = 50;   ///< JobManager::mutex_
inline constexpr int kLockRankJournal = 45;      ///< JournalWriter::mutex_

// mem/: the cross-tenant memory arbiter is consulted from the submit path
// (under no server lock) and from the dispatcher after a job finishes; it
// only records metrics below it, never calls back into service locks.
inline constexpr int kLockRankMemArbiter = 40;   ///< mem::MemoryArbiter::mutex_

// obs/: sinks and metrics are leaves — everything may log or record a
// metric, so nothing below them may acquire anything above.
inline constexpr int kLockRankEventSink = 30;  ///< BufferedJsonlEventSink
inline constexpr int kLockRankSpanSink = 25;   ///< JsonlSpanSink
inline constexpr int kLockRankMetrics = 20;    ///< MetricsRegistry::mutex_
inline constexpr int kLockRankHistogram = 10;  ///< Histogram::mutex_

}  // namespace micco
