// Minimal command-line flag parsing for the bench/example binaries.
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--name=off` forms; unknown flags are reported, not silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace micco {

class CliArgs {
 public:
  /// Parses argv. On malformed input, records an error retrievable via
  /// error(); callers decide whether to abort.
  CliArgs(int argc, const char* const* argv);

  /// True when `--name` appeared in any form.
  bool has(const std::string& name) const;

  /// Returns the flag value, or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Boolean flags: bare `--name` and values 1/true/on/yes are true;
  /// 0/false/off/no are false.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// First parse error, if any (e.g. `--=x`).
  const std::optional<std::string>& error() const { return error_; }

  /// Flags that were present but never queried; used by binaries to warn
  /// about typos before running a long experiment.
  std::vector<std::string> unused() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
  std::optional<std::string> error_;
};

}  // namespace micco
