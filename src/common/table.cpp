#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace micco {

void TextTable::add_column(std::string header, Align align) {
  MICCO_EXPECTS_MSG(rows_.empty(), "declare all columns before adding rows");
  headers_.push_back(std::move(header));
  aligns_.push_back(align);
}

void TextTable::add_row(std::vector<std::string> cells) {
  MICCO_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

namespace {

void append_cell(std::string& out, const std::string& text, std::size_t width,
                 Align align) {
  const std::size_t pad = width - std::min(width, text.size());
  if (align == Align::kRight) out.append(pad, ' ');
  out += text;
  if (align == Align::kLeft) out.append(pad, ' ');
}

std::string horizontal_rule(const std::vector<std::size_t>& widths) {
  std::string line = "+";
  for (const std::size_t w : widths) {
    line.append(w + 2, '-');
    line += '+';
  }
  line += '\n';
  return line;
}

}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::string out = horizontal_rule(widths);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    append_cell(out, headers_[c], widths[c], Align::kLeft);
    out += " |";
  }
  out += '\n';
  out += horizontal_rule(widths);

  for (const Row& row : rows_) {
    if (row.rule_before) out += horizontal_rule(widths);
    out += "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out += ' ';
      append_cell(out, row.cells[c], widths[c], aligns_[c]);
      out += " |";
    }
    out += '\n';
  }
  out += horizontal_rule(widths);
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

std::string banner(const std::string& title) {
  std::ostringstream os;
  os << "\n=== " << title << " ";
  const std::size_t fill = title.size() < 70 ? 70 - title.size() : 4;
  for (std::size_t i = 0; i < fill; ++i) os << '=';
  os << '\n';
  return os.str();
}

}  // namespace micco
