// Leveled logging to stderr. The simulator and schedulers are silent by
// default; benches raise the level with --verbose for debugging runs.
#pragma once

#include <sstream>
#include <string>

namespace micco {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] message") to stderr when enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : level_(level), enabled_(level <= log_level()) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) log_message(level_, stream_.str());
  }

  // Short-circuits before formatting: a suppressed line never stringifies
  // its operands, so log_debug() in hot paths costs one level check.
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }

}  // namespace micco
