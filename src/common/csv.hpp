// Minimal CSV writing for bench output (--csv flags): quoted-when-needed
// cells, fixed schema per file, append-row interface mirroring TextTable so
// harnesses can emit both the human table and a machine-readable series for
// replotting the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace micco {

class CsvWriter {
 public:
  /// Declares the column schema; must run before the first row.
  void add_column(std::string header);

  /// Appends a row; cell count must match the declared columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  void add_row_numeric(const std::vector<double>& values, int precision = 6);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// RFC-4180-ish rendering: cells containing commas, quotes or newlines
  /// are quoted, embedded quotes doubled.
  std::string render() const;
  void write(std::ostream& out) const;

  /// Writes to a file; aborts on I/O failure.
  void write_file(const std::string& path) const;

  /// Escapes one cell (exposed for tests).
  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace micco
