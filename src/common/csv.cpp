#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace micco {

void CsvWriter::add_column(std::string header) {
  MICCO_EXPECTS_MSG(rows_.empty(), "declare all columns before adding rows");
  headers_.push_back(std::move(header));
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  MICCO_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row_numeric(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(stats::format(v, precision));
  add_row(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvWriter::write(std::ostream& out) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << ',';
    out << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  }
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  MICCO_EXPECTS_MSG(out.good(), "cannot open csv file for writing");
  write(out);
  out.flush();
  MICCO_EXPECTS_MSG(out.good(), "csv file write failed");
}

}  // namespace micco
