#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace micco {

namespace {

// micco-lint: allow(thread-annotation) lock-free level gate; a stale read only delays a verbosity change
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[micco:%s] %s\n", level_name(level), message.c_str());
}

}  // namespace micco
