// Runtime state of one fault plan during one simulated run.
//
// The injector is the mutable counterpart of the immutable FaultPlan: it
// remembers which device failures have fired, which capacity losses were
// applied, and holds the dedicated PCG32 stream that decides transient
// transfer faults. The cluster simulator consults it at well-defined points
// (task start, every transfer attempt, every stage barrier); an injector
// built from an empty plan answers every query with "no fault" without
// drawing randomness, so attaching one is observably identical to attaching
// none.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"

namespace micco {

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan, RetryPolicy retry = {});

  const RetryPolicy& retry() const { return retry_; }

  /// True when the plan can inject at least one fault.
  bool active() const { return !plan_.empty(); }

  /// Scheduled permanent-failure time of `device`, if one is pending (not
  /// yet consumed via mark_failed).
  std::optional<double> failure_time(int device) const;

  /// Consumes the pending failure of `device` (it fired).
  void mark_failed(int device);

  /// Combined slowdown multiplier for work starting on `device` at
  /// `at_time_s` (1.0 = full speed; factors of overlapping entries multiply).
  double slowdown(int device, double at_time_s) const;

  /// Total unapplied capacity loss of `device` due at or before `now_s`;
  /// consumed (subsequent calls return 0 for those entries).
  std::uint64_t take_capacity_loss(int device, double now_s);

  /// Draws one transfer-attempt outcome. Never draws when the configured
  /// probability is zero (keeps the no-fault stream untouched).
  bool transfer_attempt_fails();

 private:
  FaultPlan plan_;
  RetryPolicy retry_;
  std::vector<bool> failure_fired_;   ///< parallel to plan_.device_failures
  std::vector<bool> capacity_fired_;  ///< parallel to plan_.capacity_losses
  Pcg32 transfer_rng_;
};

}  // namespace micco
