#include "faults/injector.hpp"

namespace micco {

FaultInjector::FaultInjector(const FaultPlan& plan, RetryPolicy retry)
    : plan_(plan),
      retry_(retry),
      failure_fired_(plan.device_failures.size(), false),
      capacity_fired_(plan.capacity_losses.size(), false),
      transfer_rng_(plan.transfer.seed) {
  MICCO_EXPECTS_MSG(retry_.validate().empty(), "invalid retry policy");
}

std::optional<double> FaultInjector::failure_time(int device) const {
  for (std::size_t i = 0; i < plan_.device_failures.size(); ++i) {
    if (!failure_fired_[i] && plan_.device_failures[i].device == device) {
      return plan_.device_failures[i].time_s;
    }
  }
  return std::nullopt;
}

void FaultInjector::mark_failed(int device) {
  for (std::size_t i = 0; i < plan_.device_failures.size(); ++i) {
    if (plan_.device_failures[i].device == device) failure_fired_[i] = true;
  }
}

double FaultInjector::slowdown(int device, double at_time_s) const {
  double factor = 1.0;
  for (const DeviceSlowdown& s : plan_.slowdowns) {
    if (s.device == device && at_time_s >= s.from_time_s) factor *= s.factor;
  }
  return factor;
}

std::uint64_t FaultInjector::take_capacity_loss(int device, double now_s) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < plan_.capacity_losses.size(); ++i) {
    const CapacityLoss& c = plan_.capacity_losses[i];
    if (!capacity_fired_[i] && c.device == device && c.time_s <= now_s) {
      capacity_fired_[i] = true;
      total += c.bytes;
    }
  }
  return total;
}

bool FaultInjector::transfer_attempt_fails() {
  if (plan_.transfer.probability <= 0.0) return false;
  return transfer_rng_.uniform01() < plan_.transfer.probability;
}

}  // namespace micco
