// Retry policy for transient transfer faults.
//
// When the fault model declares a fetch attempt failed, the simulator does
// not abort: it charges the wasted transfer time plus an exponential backoff
// (all in *simulated* time) and tries again, up to `max_attempts` tries per
// transfer. A transfer that exhausts its attempts is escalated to a
// permanent device failure — the link to that device is presumed down — and
// the pipeline's recovery path takes over (see DESIGN.md §5c).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.hpp"

namespace micco {

struct RetryPolicy {
  /// Total tries per transfer (first attempt included). Must be >= 1.
  int max_attempts = 4;
  /// Backoff charged after the first failed attempt, seconds of simulated
  /// time.
  double base_backoff_s = 1e-4;
  /// Growth factor between consecutive backoffs (2.0 = classic doubling).
  double multiplier = 2.0;
  /// Ceiling on any single backoff interval.
  double max_backoff_s = 0.1;

  /// Backoff charged after the `attempt`-th failed try (1-based):
  /// min(base * multiplier^(attempt-1), max_backoff_s). Closed form, so the
  /// cost is O(1) at any attempt count, and saturating: huge exponents that
  /// overflow double (pow → inf) clamp to max_backoff_s instead of
  /// propagating inf/nan into simulated time.
  double backoff(int attempt) const {
    MICCO_EXPECTS(attempt >= 1);
    if (base_backoff_s <= 0.0) return 0.0;
    if (multiplier <= 1.0 || attempt == 1) {
      return std::min(base_backoff_s, max_backoff_s);
    }
    const double wait =
        base_backoff_s * std::pow(multiplier, static_cast<double>(attempt - 1));
    if (!std::isfinite(wait) || wait >= max_backoff_s) return max_backoff_s;
    return wait;
  }

  /// Empty string when the policy is well formed, else a complaint.
  std::string validate() const {
    if (max_attempts < 1) return "retry: max_attempts must be >= 1";
    if (base_backoff_s < 0.0) return "retry: base_backoff_s must be >= 0";
    if (multiplier < 1.0) return "retry: multiplier must be >= 1";
    if (max_backoff_s < base_backoff_s) {
      return "retry: max_backoff_s must be >= base_backoff_s";
    }
    return {};
  }
};

}  // namespace micco
