// Deterministic fault model.
//
// A FaultPlan is a seed-driven description of everything that goes wrong
// during one simulated run: permanent device failures at fixed simulated
// times, transient transfer faults with a failure probability, per-device
// slowdown (straggler) factors, and spurious capacity losses (e.g. retired
// ECC pages). Plans are plain data — the runtime state that consumes them
// lives in FaultInjector — so the same plan replayed against the same
// workload and seeds reproduces the same faults byte for byte.
//
// Plans load from a small line-based text format (`micco faults`,
// `--fault-plan=FILE`):
//
//   # comments and blank lines are ignored
//   fail <device> <time_s>
//   transfer-faults <probability> [seed]
//   slowdown <device> <factor> [from_time_s]
//   capacity-loss <device> <bytes> <time_s>
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace micco {

/// Permanent fail-stop loss of one device at a simulated time. The failure
/// is detected on the device's next use (or at the next stage barrier).
struct DeviceFailure {
  int device = -1;
  double time_s = 0.0;
};

/// Transient transfer faults: every H2D/P2P fetch attempt fails
/// independently with `probability`, drawn from a dedicated PCG32 stream so
/// fault decisions never perturb other seeded randomness.
struct TransferFaultModel {
  double probability = 0.0;
  std::uint64_t seed = 0x00f4417;
};

/// Straggler model: tasks starting on `device` at or after `from_time_s`
/// have their kernel and transfer costs multiplied by `factor`.
struct DeviceSlowdown {
  int device = -1;
  double factor = 1.0;
  double from_time_s = 0.0;
};

/// Spurious capacity loss: at `time_s` the device's usable memory shrinks by
/// `bytes` (applied on the device's next use, evicting residents as needed).
struct CapacityLoss {
  int device = -1;
  std::uint64_t bytes = 0;
  double time_s = 0.0;
};

struct FaultPlan {
  std::vector<DeviceFailure> device_failures;
  TransferFaultModel transfer;
  std::vector<DeviceSlowdown> slowdowns;
  std::vector<CapacityLoss> capacity_losses;

  /// True when the plan injects nothing (attaching it must leave every
  /// metric, report and log byte-identical to running with no plan at all).
  bool empty() const {
    return device_failures.empty() && transfer.probability <= 0.0 &&
           slowdowns.empty() && capacity_losses.empty();
  }

  /// Empty string when the plan is internally consistent for a cluster of
  /// `num_devices` devices, else a human-readable complaint.
  std::string validate(int num_devices) const;

  /// One-line-per-event human summary (the `micco faults` subcommand).
  std::string summary() const;
};

/// Parses the line format described above. Returns nullopt and fills
/// `*error` (when non-null) on malformed input.
std::optional<FaultPlan> parse_fault_plan(std::istream& in,
                                          std::string* error);

/// Loads a plan file; nullopt + `*error` on I/O or parse failure.
std::optional<FaultPlan> load_fault_plan_file(const std::string& path,
                                              std::string* error);

}  // namespace micco
