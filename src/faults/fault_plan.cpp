#include "faults/fault_plan.hpp"

#include <fstream>
#include <sstream>

namespace micco {

namespace {

std::string fail_with(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return message;
}

}  // namespace

std::string FaultPlan::validate(int num_devices) const {
  const auto device_ok = [num_devices](int dev) {
    return dev >= 0 && dev < num_devices;
  };
  for (const DeviceFailure& f : device_failures) {
    if (!device_ok(f.device)) {
      return "fail: device " + std::to_string(f.device) +
             " out of range [0, " + std::to_string(num_devices) + ")";
    }
    if (f.time_s < 0.0) return "fail: time must be >= 0";
  }
  if (transfer.probability < 0.0 || transfer.probability >= 1.0) {
    // 1.0 would mean no transfer can ever succeed, so no run can finish.
    return "transfer-faults: probability must be in [0, 1)";
  }
  for (const DeviceSlowdown& s : slowdowns) {
    if (!device_ok(s.device)) {
      return "slowdown: device " + std::to_string(s.device) + " out of range";
    }
    if (s.factor < 1.0) return "slowdown: factor must be >= 1";
    if (s.from_time_s < 0.0) return "slowdown: from_time must be >= 0";
  }
  for (const CapacityLoss& c : capacity_losses) {
    if (!device_ok(c.device)) {
      return "capacity-loss: device " + std::to_string(c.device) +
             " out of range";
    }
    if (c.bytes == 0) return "capacity-loss: bytes must be > 0";
    if (c.time_s < 0.0) return "capacity-loss: time must be >= 0";
  }
  // At most one permanent failure per device: a second one could never fire.
  for (std::size_t i = 0; i < device_failures.size(); ++i) {
    for (std::size_t j = i + 1; j < device_failures.size(); ++j) {
      if (device_failures[i].device == device_failures[j].device) {
        return "fail: duplicate failure for device " +
               std::to_string(device_failures[i].device);
      }
    }
  }
  return {};
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  for (const DeviceFailure& f : device_failures) {
    out << "fail device " << f.device << " at t=" << f.time_s << " s\n";
  }
  if (transfer.probability > 0.0) {
    out << "transfer faults: p=" << transfer.probability
        << " seed=" << transfer.seed << "\n";
  }
  for (const DeviceSlowdown& s : slowdowns) {
    out << "slowdown device " << s.device << " x" << s.factor << " from t="
        << s.from_time_s << " s\n";
  }
  for (const CapacityLoss& c : capacity_losses) {
    out << "capacity loss device " << c.device << " -" << c.bytes
        << " bytes at t=" << c.time_s << " s\n";
  }
  if (out.str().empty()) out << "empty plan (no faults)\n";
  return out.str();
}

std::optional<FaultPlan> parse_fault_plan(std::istream& in,
                                          std::string* error) {
  FaultPlan plan;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword.front() == '#') continue;

    const auto malformed = [&](const char* what) {
      fail_with(error, "fault plan line " + std::to_string(line_no) + ": " +
                           what + ": " + line);
      return std::nullopt;
    };

    if (keyword == "fail") {
      DeviceFailure f;
      if (!(fields >> f.device >> f.time_s)) {
        return malformed("expected 'fail <device> <time_s>'");
      }
      plan.device_failures.push_back(f);
    } else if (keyword == "transfer-faults") {
      if (!(fields >> plan.transfer.probability)) {
        return malformed("expected 'transfer-faults <probability> [seed]'");
      }
      fields >> plan.transfer.seed;  // optional; keeps default otherwise
    } else if (keyword == "slowdown") {
      DeviceSlowdown s;
      if (!(fields >> s.device >> s.factor)) {
        return malformed("expected 'slowdown <device> <factor> [from_time_s]'");
      }
      fields >> s.from_time_s;  // optional
      plan.slowdowns.push_back(s);
    } else if (keyword == "capacity-loss") {
      CapacityLoss c;
      if (!(fields >> c.device >> c.bytes >> c.time_s)) {
        return malformed("expected 'capacity-loss <device> <bytes> <time_s>'");
      }
      plan.capacity_losses.push_back(c);
    } else {
      return malformed("unknown directive");
    }
  }
  return plan;
}

std::optional<FaultPlan> load_fault_plan_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    fail_with(error, "cannot open fault plan " + path);
    return std::nullopt;
  }
  return parse_fault_plan(in, error);
}

}  // namespace micco
