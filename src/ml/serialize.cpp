#include "ml/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/assert.hpp"

namespace micco::ml {

namespace {

constexpr const char* kMagic = "micco-model";
constexpr const char* kVersion = "v1";

std::ostream& full_precision(std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

void write_tree_body(const RegressionTree& tree, std::ostream& out) {
  const auto nodes = tree.export_nodes();
  out << "tree " << nodes.size() << "\n";
  for (const auto& n : nodes) {
    full_precision(out) << n.feature << " " << n.threshold << " " << n.value
                        << " " << n.left << " " << n.right << "\n";
  }
}

bool read_tree_body(std::istream& in, RegressionTree* tree,
                    std::string* error) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "tree") {
    if (error) *error = "expected tree header";
    return false;
  }
  if (count == 0 || count > 10'000'000) {
    if (error) *error = "implausible tree node count";
    return false;
  }
  std::vector<RegressionTree::ExportedNode> nodes(count);
  for (auto& n : nodes) {
    if (!(in >> n.feature >> n.threshold >> n.value >> n.left >> n.right)) {
      if (error) *error = "truncated tree body";
      return false;
    }
    if (n.feature >= 0 &&
        (n.left < 0 || n.right < 0 ||
         static_cast<std::size_t>(n.left) >= count ||
         static_cast<std::size_t>(n.right) >= count)) {
      if (error) *error = "tree child index out of range";
      return false;
    }
  }
  *tree = RegressionTree::import_nodes(nodes);
  return true;
}

}  // namespace

void save_tree(const RegressionTree& tree, std::ostream& out) {
  MICCO_EXPECTS_MSG(tree.node_count() > 0, "cannot save an unfitted tree");
  out << kMagic << " " << kVersion << " tree\n";
  write_tree_body(tree, out);
}

void save_forest(const RandomForest& forest, std::ostream& out) {
  MICCO_EXPECTS_MSG(forest.tree_count() > 0,
                    "cannot save an unfitted forest");
  out << kMagic << " " << kVersion << " forest " << forest.tree_count()
      << "\n";
  for (std::size_t i = 0; i < forest.tree_count(); ++i) {
    write_tree_body(forest.tree_at(i), out);
  }
}

void save_boosting(const GradientBoosting& model, std::ostream& out) {
  MICCO_EXPECTS_MSG(model.stage_count() > 0,
                    "cannot save an unfitted boosting model");
  out << kMagic << " " << kVersion << " boosting " << model.stage_count()
      << " ";
  full_precision(out) << model.base_prediction() << " "
                      << model.learning_rate() << "\n";
  for (std::size_t i = 0; i < model.stage_count(); ++i) {
    write_tree_body(model.stage_at(i), out);
  }
}

void save_linear(const LinearRegression& model, std::ostream& out) {
  MICCO_EXPECTS_MSG(!model.weights().empty(),
                    "cannot save an unfitted linear model");
  out << kMagic << " " << kVersion << " linear " << model.weights().size()
      << "\n";
  for (const double w : model.weights()) {
    full_precision(out) << w << "\n";
  }
}

void save_regressor(const Regressor& model, std::ostream& out) {
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    save_forest(*forest, out);
  } else if (const auto* boosting =
                 dynamic_cast<const GradientBoosting*>(&model)) {
    save_boosting(*boosting, out);
  } else if (const auto* linear =
                 dynamic_cast<const LinearRegression*>(&model)) {
    save_linear(*linear, out);
  } else if (const auto* tree = dynamic_cast<const RegressionTree*>(&model)) {
    save_tree(*tree, out);
  } else {
    MICCO_EXPECTS_MSG(false, "unknown regressor type for serialization");
  }
}

std::unique_ptr<Regressor> load_regressor(std::istream& in,
                                          std::string* error) {
  std::string magic, version, type;
  if (!(in >> magic >> version >> type) || magic != kMagic) {
    if (error) *error = "not a micco model file";
    return nullptr;
  }
  if (version != kVersion) {
    if (error) *error = "unsupported model version: " + version;
    return nullptr;
  }

  if (type == "tree") {
    RegressionTree tree;
    if (!read_tree_body(in, &tree, error)) return nullptr;
    return std::make_unique<RegressionTree>(std::move(tree));
  }
  if (type == "forest") {
    std::size_t count = 0;
    if (!(in >> count) || count == 0 || count > 100'000) {
      if (error) *error = "bad forest tree count";
      return nullptr;
    }
    std::vector<RegressionTree> trees;
    trees.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      RegressionTree tree;
      if (!read_tree_body(in, &tree, error)) return nullptr;
      trees.push_back(std::move(tree));
    }
    return std::make_unique<RandomForest>(
        RandomForest::from_trees(std::move(trees)));
  }
  if (type == "boosting") {
    std::size_t count = 0;
    double base = 0.0;
    double lr = 0.0;
    if (!(in >> count >> base >> lr) || count == 0 || count > 100'000 ||
        !(lr > 0.0 && lr <= 1.0)) {
      if (error) *error = "bad boosting header";
      return nullptr;
    }
    std::vector<RegressionTree> stages;
    stages.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      RegressionTree tree;
      if (!read_tree_body(in, &tree, error)) return nullptr;
      stages.push_back(std::move(tree));
    }
    BoostingConfig config;
    config.learning_rate = lr;
    return std::make_unique<GradientBoosting>(
        GradientBoosting::from_stages(base, std::move(stages), config));
  }
  if (type == "linear") {
    std::size_t count = 0;
    if (!(in >> count) || count == 0 || count > 1'000'000) {
      if (error) *error = "bad linear weight count";
      return nullptr;
    }
    std::vector<double> weights(count);
    for (double& w : weights) {
      if (!(in >> w)) {
        if (error) *error = "truncated linear weights";
        return nullptr;
      }
    }
    return std::make_unique<LinearRegression>(
        LinearRegression::from_weights(std::move(weights)));
  }
  if (error) *error = "unknown model type: " + type;
  return nullptr;
}

void save_regressor_file(const Regressor& model, const std::string& path) {
  std::ofstream out(path);
  MICCO_EXPECTS_MSG(out.good(), "cannot open model file for writing");
  save_regressor(model, out);
  out.flush();
  MICCO_EXPECTS_MSG(out.good(), "model file write failed");
}

std::unique_ptr<Regressor> load_regressor_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error) *error = "cannot open model file: " + path;
    return nullptr;
  }
  return load_regressor(in, error);
}

}  // namespace micco::ml
