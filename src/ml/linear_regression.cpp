#include "ml/linear_regression.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace micco::ml {

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  MICCO_EXPECTS(a.size() == n * n);

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    MICCO_ASSERT_MSG(best > 0.0, "singular system in linear solve");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    const double diag = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

void LinearRegression::fit(const Dataset& data) {
  MICCO_EXPECTS(!data.empty());
  const std::size_t p = data.n_features() + 1;  // + intercept
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);

  std::vector<double> row(p, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    row[0] = 1.0;
    const auto features = data.row(i);
    for (std::size_t j = 0; j < features.size(); ++j) row[j + 1] = features[j];
    const double y = data.target(i);
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t c = 0; c < p; ++c) xtx[r * p + c] += row[r] * row[c];
      xty[r] += row[r] * y;
    }
  }
  for (std::size_t d = 0; d < p; ++d) xtx[d * p + d] += ridge_;

  weights_ = solve_linear_system(std::move(xtx), std::move(xty));
}

LinearRegression LinearRegression::from_weights(std::vector<double> weights,
                                                double ridge) {
  MICCO_EXPECTS(!weights.empty());
  LinearRegression model(ridge);
  model.weights_ = std::move(weights);
  return model;
}

double LinearRegression::predict(std::span<const double> features) const {
  MICCO_EXPECTS_MSG(!weights_.empty(), "predict before fit");
  MICCO_EXPECTS(features.size() + 1 == weights_.size());
  double acc = weights_[0];
  for (std::size_t j = 0; j < features.size(); ++j) {
    acc += weights_[j + 1] * features[j];
  }
  return acc;
}

}  // namespace micco::ml
