// Common single-output regressor interface plus the multi-output wrapper
// that predicts the three reuse bounds jointly (one underlying model per
// bound, as the paper trains "optimal reuse bound setting" labels).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace micco::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual std::string name() const = 0;

  /// Fits on the full dataset. May be called again to refit.
  virtual void fit(const Dataset& data) = 0;

  /// Predicts a single sample; requires fit() to have run.
  virtual double predict(std::span<const double> features) const = 0;

  /// Convenience batch prediction.
  std::vector<double> predict_all(const Dataset& data) const;
};

/// Factory signature so model-comparison code (Table IV) can instantiate
/// fresh regressors per output and per trial.
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// Trains one regressor per output column; targets are supplied as one
/// Dataset per output sharing the same feature rows.
class MultiOutputRegressor {
 public:
  MultiOutputRegressor(RegressorFactory factory, std::size_t n_outputs);

  void fit(std::span<const Dataset> per_output_data);
  std::vector<double> predict(std::span<const double> features) const;

  /// Assembles a multi-output model from already-fitted per-output models
  /// (deserialization path). All entries must be non-null.
  static MultiOutputRegressor from_models(
      std::vector<std::unique_ptr<Regressor>> models);

  std::size_t n_outputs() const { return models_.size(); }
  const Regressor& model(std::size_t i) const { return *models_[i]; }

 private:
  std::vector<std::unique_ptr<Regressor>> models_;
  RegressorFactory factory_;
  bool fitted_ = false;
};

}  // namespace micco::ml
