// Text serialization for trained regressors, so the offline phase (corpus
// sweep + training) runs once and ships a model file with the application —
// exactly how MICCO's "pre-trained lightweight regression model" is meant
// to be deployed.
//
// The format is a line-oriented, versioned text format:
//   micco-model v1 <type>
//   ... type-specific payload ...
// Doubles round-trip through max_digits10 so a save/load cycle reproduces
// bit-identical predictions.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/gradient_boosting.hpp"
#include "ml/linear_regression.hpp"
#include "ml/random_forest.hpp"
#include "ml/regressor.hpp"

namespace micco::ml {

/// Writes a fitted regressor to a stream. Aborts on unfitted models and
/// unknown concrete types.
void save_regressor(const Regressor& model, std::ostream& out);

/// Reads a regressor back. Returns nullptr (and sets `error`) on malformed
/// input; never aborts on bad data - model files are external input.
std::unique_ptr<Regressor> load_regressor(std::istream& in,
                                          std::string* error = nullptr);

/// File-based convenience wrappers. Save aborts on I/O failure; load
/// returns nullptr with `error` set.
void save_regressor_file(const Regressor& model, const std::string& path);
std::unique_ptr<Regressor> load_regressor_file(const std::string& path,
                                               std::string* error = nullptr);

// Type-specific hooks used by save/load (exposed for tests).
void save_tree(const RegressionTree& tree, std::ostream& out);
void save_forest(const RandomForest& forest, std::ostream& out);
void save_boosting(const GradientBoosting& model, std::ostream& out);
void save_linear(const LinearRegression& model, std::ostream& out);

}  // namespace micco::ml
