#include "ml/regressor.hpp"

#include "common/assert.hpp"

namespace micco::ml {

std::vector<double> Regressor::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

MultiOutputRegressor::MultiOutputRegressor(RegressorFactory factory,
                                           std::size_t n_outputs)
    : factory_(std::move(factory)) {
  MICCO_EXPECTS(n_outputs >= 1);
  models_.resize(n_outputs);
}

void MultiOutputRegressor::fit(std::span<const Dataset> per_output_data) {
  MICCO_EXPECTS(per_output_data.size() == models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    models_[i] = factory_();
    models_[i]->fit(per_output_data[i]);
  }
  fitted_ = true;
}

MultiOutputRegressor MultiOutputRegressor::from_models(
    std::vector<std::unique_ptr<Regressor>> models) {
  MICCO_EXPECTS(!models.empty());
  for (const auto& m : models) MICCO_EXPECTS(m != nullptr);
  MultiOutputRegressor out([]() -> std::unique_ptr<Regressor> { return nullptr; },
                           models.size());
  out.models_ = std::move(models);
  out.fitted_ = true;
  return out;
}

std::vector<double> MultiOutputRegressor::predict(
    std::span<const double> features) const {
  MICCO_EXPECTS_MSG(fitted_, "predict before fit");
  std::vector<double> out;
  out.reserve(models_.size());
  for (const auto& model : models_) out.push_back(model->predict(features));
  return out;
}

}  // namespace micco::ml
