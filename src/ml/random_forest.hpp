// Random Forest regressor: bagged CART trees with per-split feature
// subsampling. MICCO's production model (Table IV: R^2 = 0.95 with 150
// trees).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace micco::ml {

struct ForestConfig {
  int n_trees = 150;  ///< the paper's setting
  TreeConfig tree;
  /// Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 1.0;
  std::uint64_t seed = 11;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(ForestConfig config = {});

  std::string name() const override { return "RandomForest"; }
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;

  std::size_t tree_count() const { return trees_.size(); }

  /// Individual fitted trees (serialization / inspection).
  const RegressionTree& tree_at(std::size_t i) const {
    MICCO_EXPECTS(i < trees_.size());
    return trees_[i];
  }

  /// Rebuilds a forest from deserialized trees.
  static RandomForest from_trees(std::vector<RegressionTree> trees,
                                 ForestConfig config = {});

 private:
  ForestConfig config_;
  std::vector<RegressionTree> trees_;
};

}  // namespace micco::ml
