// Flat row-major dataset container and train/test splitting for the
// reuse-bound regression pipeline (Section IV-C: 300 offline samples, 20 %
// held out for the Table IV comparison).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace micco::ml {

class Dataset {
 public:
  explicit Dataset(std::size_t n_features) : n_features_(n_features) {
    MICCO_EXPECTS(n_features >= 1);
  }

  std::size_t n_features() const { return n_features_; }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  /// Appends one sample; `features.size()` must equal n_features().
  void add(std::span<const double> features, double target);

  std::span<const double> row(std::size_t i) const {
    MICCO_EXPECTS(i < size());
    return {features_.data() + i * n_features_, n_features_};
  }

  double target(std::size_t i) const {
    MICCO_EXPECTS(i < size());
    return targets_[i];
  }

  std::span<const double> targets() const { return targets_; }

  /// Subset by row indices (bootstrap samples, CV folds).
  Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t n_features_;
  std::vector<double> features_;  // row-major, size() * n_features_
  std::vector<double> targets_;
};

struct SplitResult {
  Dataset train;
  Dataset test;
};

/// Shuffled train/test split; `test_fraction` in (0, 1).
SplitResult train_test_split(const Dataset& data, double test_fraction,
                             Pcg32& rng);

/// Coefficient of determination of predictions against ground truth.
/// 1 is perfect; 0 matches always predicting the mean; negative is worse.
double r2_score(std::span<const double> truth,
                std::span<const double> predicted);

/// Mean squared error.
double mse(std::span<const double> truth, std::span<const double> predicted);

}  // namespace micco::ml
