#include "ml/decision_tree.hpp"

#include <algorithm>
#include <functional>

namespace micco::ml {

RegressionTree::RegressionTree(TreeConfig config)
    : config_(config), rng_(config.seed) {
  MICCO_EXPECTS(config.max_depth >= 1);
  MICCO_EXPECTS(config.min_samples_split >= 2);
  MICCO_EXPECTS(config.min_samples_leaf >= 1);
}

void RegressionTree::fit(const Dataset& data) {
  MICCO_EXPECTS(!data.empty());
  nodes_.clear();
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  (void)build(data, indices, 0);
}

namespace {

double mean_of(const Dataset& data, const std::vector<std::size_t>& indices) {
  double acc = 0.0;
  for (const std::size_t i : indices) acc += data.target(i);
  return acc / static_cast<double>(indices.size());
}

}  // namespace

std::optional<RegressionTree::SplitChoice> RegressionTree::best_split(
    const Dataset& data, const std::vector<std::size_t>& indices) {
  const std::size_t n = indices.size();
  const std::size_t p = data.n_features();

  // Candidate features, optionally subsampled per split (Random Forest
  // style decorrelation).
  std::vector<std::size_t> features;
  if (config_.max_features == 0 || config_.max_features >= p) {
    features.resize(p);
    for (std::size_t j = 0; j < p; ++j) features[j] = j;
  } else {
    features = rng_.sample_without_replacement(p, config_.max_features);
  }

  // Total sums for the parent impurity.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::size_t i : indices) {
    const double y = data.target(i);
    sum += y;
    sum_sq += y * y;
  }
  const double parent_sse = sum_sq - sum * sum / static_cast<double>(n);

  std::optional<SplitChoice> best;
  std::vector<std::size_t> order(indices);

  for (const std::size_t feature : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[feature] < data.row(b)[feature];
    });

    // Scan split positions; a split between order[k-1] and order[k] is only
    // valid when the feature values differ (otherwise the threshold could
    // not separate them).
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      const double y = data.target(order[k - 1]);
      left_sum += y;
      left_sq += y * y;

      const double prev = data.row(order[k - 1])[feature];
      const double curr = data.row(order[k])[feature];
      if (prev == curr) continue;
      if (k < config_.min_samples_leaf || n - k < config_.min_samples_leaf) {
        continue;
      }

      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(k);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(n - k);
      const double decrease = parent_sse - left_sse - right_sse;

      if (!best || decrease > best->score) {
        best = SplitChoice{feature, 0.5 * (prev + curr), decrease};
      }
    }
  }

  // Reject splits that do not reduce impurity (all-equal targets, ties).
  if (best && best->score <= 1e-12) return std::nullopt;
  return best;
}

std::int32_t RegressionTree::build(const Dataset& data,
                                   std::vector<std::size_t>& indices,
                                   int depth) {
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value = mean_of(data, indices);

  if (depth >= config_.max_depth ||
      indices.size() < config_.min_samples_split) {
    return node_id;
  }

  const std::optional<SplitChoice> split = best_split(data, indices);
  if (!split) return node_id;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (const std::size_t i : indices) {
    if (data.row(i)[split->feature] <= split->threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  MICCO_ASSERT(!left_idx.empty() && !right_idx.empty());

  indices.clear();
  indices.shrink_to_fit();  // free before recursing on deep trees

  const std::int32_t left = build(data, left_idx, depth + 1);
  const std::int32_t right = build(data, right_idx, depth + 1);

  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = static_cast<int>(split->feature);
  node.threshold = split->threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::predict(std::span<const double> features) const {
  MICCO_EXPECTS_MSG(!nodes_.empty(), "predict before fit");
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.value;
    MICCO_ASSERT(static_cast<std::size_t>(n.feature) < features.size());
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold
            ? n.left
            : n.right);
  }
}

std::vector<RegressionTree::ExportedNode> RegressionTree::export_nodes()
    const {
  std::vector<ExportedNode> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back(ExportedNode{n.feature, n.threshold, n.value, n.left,
                               n.right});
  }
  return out;
}

RegressionTree RegressionTree::import_nodes(
    const std::vector<ExportedNode>& nodes, TreeConfig config) {
  MICCO_EXPECTS(!nodes.empty());
  RegressionTree tree(config);
  tree.nodes_.reserve(nodes.size());
  for (const ExportedNode& n : nodes) {
    if (n.feature >= 0) {
      MICCO_EXPECTS_MSG(
          n.left >= 0 && n.right >= 0 &&
              static_cast<std::size_t>(n.left) < nodes.size() &&
              static_cast<std::size_t>(n.right) < nodes.size(),
          "tree import: child index out of range");
    }
    tree.nodes_.push_back(Node{n.feature, n.threshold, n.value, n.left,
                               n.right});
  }
  return tree;
}

int RegressionTree::depth() const {
  if (nodes_.empty()) return 0;
  const std::function<int(std::size_t)> walk = [&](std::size_t id) -> int {
    const Node& n = nodes_[id];
    if (n.feature < 0) return 1;
    return 1 + std::max(walk(static_cast<std::size_t>(n.left)),
                        walk(static_cast<std::size_t>(n.right)));
  };
  return walk(0);
}

}  // namespace micco::ml
