#include "ml/dataset.hpp"

#include "common/stats.hpp"

namespace micco::ml {

void Dataset::add(std::span<const double> features, double target) {
  MICCO_EXPECTS(features.size() == n_features_);
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(n_features_);
  for (const std::size_t i : indices) out.add(row(i), target(i));
  return out;
}

SplitResult train_test_split(const Dataset& data, double test_fraction,
                             Pcg32& rng) {
  MICCO_EXPECTS(test_fraction > 0.0 && test_fraction < 1.0);
  MICCO_EXPECTS(data.size() >= 2);

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  auto n_test = static_cast<std::size_t>(
      static_cast<double>(data.size()) * test_fraction);
  n_test = std::max<std::size_t>(1, std::min(n_test, data.size() - 1));

  const std::span<const std::size_t> test_idx{order.data(), n_test};
  const std::span<const std::size_t> train_idx{order.data() + n_test,
                                               order.size() - n_test};
  return SplitResult{data.subset(train_idx), data.subset(test_idx)};
}

double r2_score(std::span<const double> truth,
                std::span<const double> predicted) {
  MICCO_EXPECTS(truth.size() == predicted.size());
  MICCO_EXPECTS(!truth.empty());
  const double mean = stats::mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mse(std::span<const double> truth, std::span<const double> predicted) {
  MICCO_EXPECTS(truth.size() == predicted.size());
  MICCO_EXPECTS(!truth.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

}  // namespace micco::ml
