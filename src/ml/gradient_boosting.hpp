// Gradient-boosted regression trees: sequential shallow trees fit to the
// residuals of the running prediction, shrunk by a learning rate. Table IV
// comparator (R^2 = 0.91 with 150 stages, learning rate 0.1).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace micco::ml {

struct BoostingConfig {
  int n_stages = 150;         ///< the paper's "number of boosting stages"
  double learning_rate = 0.1; ///< the paper's setting
  TreeConfig tree{.max_depth = 3,
                  .min_samples_split = 2,
                  .min_samples_leaf = 1,
                  .max_features = 0,
                  .seed = 1};
  std::uint64_t seed = 13;
};

class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(BoostingConfig config = {});

  std::string name() const override { return "GradientBoosting"; }
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;

  std::size_t stage_count() const { return stages_.size(); }

  /// Serialization / inspection accessors.
  double base_prediction() const { return base_prediction_; }
  double learning_rate() const { return config_.learning_rate; }
  const RegressionTree& stage_at(std::size_t i) const {
    MICCO_EXPECTS(i < stages_.size());
    return stages_[i];
  }

  /// Rebuilds a model from deserialized stages.
  static GradientBoosting from_stages(double base_prediction,
                                      std::vector<RegressionTree> stages,
                                      BoostingConfig config = {});

 private:
  BoostingConfig config_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> stages_;
};

}  // namespace micco::ml
