#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel.hpp"

namespace micco::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  MICCO_EXPECTS(config.n_trees >= 1);
  MICCO_EXPECTS(config.sample_fraction > 0.0 &&
                config.sample_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data) {
  MICCO_EXPECTS(!data.empty());

  Pcg32 rng(config_.seed, /*stream=*/0xf00df00dULL);
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.sample_fraction *
                                  static_cast<double>(data.size())));

  // Regression forests default to considering every feature per split (the
  // scikit-learn convention): with bagging alone decorrelating the trees,
  // this keeps individual trees strong on low-dimensional feature spaces
  // like the 4-feature bounds problem.
  TreeConfig tree_cfg = config_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = data.n_features();
  }

  // All RNG draws happen serially up front, in the exact order the loop
  // always made them (bootstrap indices, then the tree seed, per tree); the
  // expensive tree fits then fan out across the pool. Fitted forests are
  // bit-identical to the historical serial loop at every thread count.
  struct TreeDraw {
    std::vector<std::size_t> indices;
    std::uint64_t seed = 0;
  };
  const auto num_trees = static_cast<std::size_t>(config_.n_trees);
  std::vector<TreeDraw> draws(num_trees);
  for (TreeDraw& draw : draws) {
    draw.indices.resize(sample_size);  // bootstrap: sample with replacement
    for (std::size_t i = 0; i < sample_size; ++i) {
      draw.indices[i] =
          rng.uniform_below(static_cast<std::uint32_t>(data.size()));
    }
    draw.seed = static_cast<std::uint64_t>(rng.uniform_int(0, (1LL << 62)));
  }

  trees_ = parallel::parallel_map(num_trees, [&](std::size_t t) {
    TreeConfig cfg = tree_cfg;
    cfg.seed = draws[t].seed;
    RegressionTree tree(cfg);
    tree.fit(data.subset(draws[t].indices));
    return tree;
  });
}

RandomForest RandomForest::from_trees(std::vector<RegressionTree> trees,
                                      ForestConfig config) {
  MICCO_EXPECTS(!trees.empty());
  config.n_trees = static_cast<int>(trees.size());
  RandomForest forest(config);
  forest.trees_ = std::move(trees);
  return forest;
}

double RandomForest::predict(std::span<const double> features) const {
  MICCO_EXPECTS_MSG(!trees_.empty(), "predict before fit");
  double acc = 0.0;
  for (const RegressionTree& tree : trees_) acc += tree.predict(features);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace micco::ml
