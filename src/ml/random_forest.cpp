#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

namespace micco::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  MICCO_EXPECTS(config.n_trees >= 1);
  MICCO_EXPECTS(config.sample_fraction > 0.0 &&
                config.sample_fraction <= 1.0);
}

void RandomForest::fit(const Dataset& data) {
  MICCO_EXPECTS(!data.empty());
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.n_trees));

  Pcg32 rng(config_.seed, /*stream=*/0xf00df00dULL);
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.sample_fraction *
                                  static_cast<double>(data.size())));

  // Regression forests default to considering every feature per split (the
  // scikit-learn convention): with bagging alone decorrelating the trees,
  // this keeps individual trees strong on low-dimensional feature spaces
  // like the 4-feature bounds problem.
  TreeConfig tree_cfg = config_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = data.n_features();
  }

  for (int t = 0; t < config_.n_trees; ++t) {
    // Bootstrap: sample with replacement.
    std::vector<std::size_t> indices(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) {
      indices[i] =
          rng.uniform_below(static_cast<std::uint32_t>(data.size()));
    }
    const Dataset boot = data.subset(indices);

    tree_cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(0, (1LL << 62)));
    RegressionTree tree(tree_cfg);
    tree.fit(boot);
    trees_.push_back(std::move(tree));
  }
}

RandomForest RandomForest::from_trees(std::vector<RegressionTree> trees,
                                      ForestConfig config) {
  MICCO_EXPECTS(!trees.empty());
  config.n_trees = static_cast<int>(trees.size());
  RandomForest forest(config);
  forest.trees_ = std::move(trees);
  return forest;
}

double RandomForest::predict(std::span<const double> features) const {
  MICCO_EXPECTS_MSG(!trees_.empty(), "predict before fit");
  double acc = 0.0;
  for (const RegressionTree& tree : trees_) acc += tree.predict(features);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace micco::ml
