// CART regression tree: variance-reduction splits, depth/leaf-size limits,
// and optional per-split feature subsampling (the randomisation Random
// Forest layers on top).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "ml/regressor.hpp"

namespace micco::ml {

struct TreeConfig {
  int max_depth = 8;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all features.
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(TreeConfig config = {});

  std::string name() const override { return "RegressionTree"; }
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;

  /// Number of nodes in the fitted tree (tests assert growth limits).
  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// Flat node view for serialization. Leaves have feature == -1.
  struct ExportedNode {
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  /// Serializable snapshot of the fitted tree (index 0 is the root).
  std::vector<ExportedNode> export_nodes() const;

  /// Rebuilds a tree from exported nodes. Aborts on structurally invalid
  /// input (out-of-range children); callers validate untrusted data first.
  static RegressionTree import_nodes(const std::vector<ExportedNode>& nodes,
                                     TreeConfig config = {});

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction (mean of samples)
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  struct SplitChoice {
    std::size_t feature = 0;
    double threshold = 0.0;
    double score = 0.0;  // impurity decrease
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     int depth);
  std::optional<SplitChoice> best_split(
      const Dataset& data, const std::vector<std::size_t>& indices);

  TreeConfig config_;
  Pcg32 rng_;
  std::vector<Node> nodes_;
};

}  // namespace micco::ml
