// Ordinary least squares with an intercept term, solved via the normal
// equations with a small ridge stabiliser. The paper's Table IV baseline:
// its low R^2 (0.57) is the evidence that the characteristics -> bounds
// relationship is non-linear.
#pragma once

#include <vector>

#include "ml/regressor.hpp"

namespace micco::ml {

class LinearRegression final : public Regressor {
 public:
  /// `ridge` adds lambda*I to X^T X, keeping the solve well-posed when
  /// features are collinear (e.g. constant tensor size in a sweep).
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  std::string name() const override { return "LinearRegression"; }
  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;

  /// Learned weights; index 0 is the intercept.
  const std::vector<double>& weights() const { return weights_; }

  /// Rebuilds a model from deserialized weights (index 0 = intercept).
  static LinearRegression from_weights(std::vector<double> weights,
                                       double ridge = 1e-8);

 private:
  double ridge_;
  std::vector<double> weights_;
};

/// Solves the dense symmetric positive-definite-ish system A x = b in place
/// by Gaussian elimination with partial pivoting. Exposed for tests.
/// A is n x n row-major. Aborts on a (numerically) singular system.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

}  // namespace micco::ml
