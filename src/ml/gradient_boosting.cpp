#include "ml/gradient_boosting.hpp"

#include "common/stats.hpp"

namespace micco::ml {

GradientBoosting::GradientBoosting(BoostingConfig config) : config_(config) {
  MICCO_EXPECTS(config.n_stages >= 1);
  MICCO_EXPECTS(config.learning_rate > 0.0 && config.learning_rate <= 1.0);
}

void GradientBoosting::fit(const Dataset& data) {
  MICCO_EXPECTS(!data.empty());
  stages_.clear();
  stages_.reserve(static_cast<std::size_t>(config_.n_stages));

  base_prediction_ = stats::mean(data.targets());

  // Running predictions and residuals (squared loss: residual = y - f(x)).
  std::vector<double> prediction(data.size(), base_prediction_);
  Pcg32 rng(config_.seed, /*stream=*/0xb0057ULL);

  TreeConfig tree_cfg = config_.tree;
  for (int stage = 0; stage < config_.n_stages; ++stage) {
    Dataset residuals(data.n_features());
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals.add(data.row(i), data.target(i) - prediction[i]);
    }

    tree_cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(0, (1LL << 62)));
    RegressionTree tree(tree_cfg);
    tree.fit(residuals);

    for (std::size_t i = 0; i < data.size(); ++i) {
      prediction[i] += config_.learning_rate * tree.predict(data.row(i));
    }
    stages_.push_back(std::move(tree));
  }
}

GradientBoosting GradientBoosting::from_stages(
    double base_prediction, std::vector<RegressionTree> stages,
    BoostingConfig config) {
  MICCO_EXPECTS(!stages.empty());
  config.n_stages = static_cast<int>(stages.size());
  GradientBoosting model(config);
  model.base_prediction_ = base_prediction;
  model.stages_ = std::move(stages);
  return model;
}

double GradientBoosting::predict(std::span<const double> features) const {
  MICCO_EXPECTS_MSG(!stages_.empty(), "predict before fit");
  double acc = base_prediction_;
  for (const RegressionTree& tree : stages_) {
    acc += config_.learning_rate * tree.predict(features);
  }
  return acc;
}

}  // namespace micco::ml
