// Quickstart: schedule a synthetic many-body-correlation workload on a
// simulated 4-GPU node with MICCO and with the load-balance-only baseline,
// and compare the resulting execution metrics.
//
//   ./quickstart [--gpus=4] [--vector-size=32] [--repeat=0.75] [--gaussian]
#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace micco;
  const CliArgs args(argc, argv);

  // 1. Describe the workload: a stream of vectors of independent tensor
  //    pairs, with repeated hadron-node tensors across vectors.
  SyntheticConfig workload;
  workload.num_vectors = 10;
  workload.vector_size = args.get_int("vector-size", 32);
  workload.tensor_extent = 384;
  workload.batch = 32;
  workload.repeated_rate = args.get_double("repeat", 0.75);
  workload.distribution = args.get_bool("gaussian", false)
                              ? DataDistribution::kGaussian
                              : DataDistribution::kUniform;
  workload.seed = 1;
  const WorkloadStream stream = generate_synthetic(workload);

  std::printf("workload: %zu vectors x %zu pairs, tensor %lldx%lld, "
              "%.0f%% repeats (%s), footprint %.1f GiB\n\n",
              stream.vectors.size(), stream.vectors[0].tasks.size(),
              static_cast<long long>(workload.tensor_extent),
              static_cast<long long>(workload.tensor_extent),
              workload.repeated_rate * 100, to_string(workload.distribution),
              static_cast<double>(stream.total_distinct_bytes()) /
                  (1024.0 * 1024.0 * 1024.0));

  // 2. Describe the cluster (an MI100-class simulated node).
  ClusterConfig cluster;
  cluster.num_devices = static_cast<int>(args.get_int("gpus", 4));

  // 3. Run both schedulers on identical fresh clusters.
  for (const SchedulerKind kind :
       {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive}) {
    const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
    const RunResult result = run_stream(stream, *scheduler, cluster);
    const ExecutionMetrics& m = result.metrics;
    std::printf("%-14s  %8.0f GFLOPS  makespan %7.1f ms  reuse hits %llu  "
                "H2D %.1f GiB  evictions %llu\n",
                to_string(kind), m.gflops(), m.makespan_s * 1e3,
                static_cast<unsigned long long>(m.reused_operands),
                static_cast<double>(m.h2d_bytes) / (1024.0 * 1024.0 * 1024.0),
                static_cast<unsigned long long>(m.evictions));
  }

  std::printf(
      "\nMICCO's data-centric placement turns repeated tensors into reuse "
      "hits, cutting host transfers; see scheduler_comparison and "
      "autotune_bounds for the full framework.\n");
  return 0;
}
