// Meson spectroscopy end-to-end: build a two-particle correlation function
// with the mini-Redstar frontend (operators -> Wick contraction ->
// contraction graphs -> staged workload), verify the plan numerically with
// the executing kernels, then schedule it on the simulated cluster.
//
//   ./meson_spectroscopy [--time-slices=6] [--extent=24] [--gpus=4]
#include <cstdio>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/verify.hpp"
#include "redstar/correlator.hpp"

int main(int argc, char** argv) {
  using namespace micco;
  const CliArgs args(argc, argv);

  // 1. Define the physical system: a rho meson that can also appear as a
  //    pi-pi two-particle state (the classic avoided-level-crossing setup).
  redstar::CorrelatorSpec spec;
  spec.name = "rho_pipi";
  const redstar::MesonOp rho{"rho+", redstar::Flavor::kUp,
                             redstar::Flavor::kDown, 0};
  const redstar::MesonOp pi_plus{"pi+", redstar::Flavor::kUp,
                                 redstar::Flavor::kDown, 0};
  const redstar::MesonOp pi_zero{"pi0", redstar::Flavor::kUp,
                                 redstar::Flavor::kUp, 0};
  redstar::Construction single;
  single.hadrons = {rho};
  redstar::Construction two_particle;
  redstar::MesonOp pi_p = pi_plus;
  pi_p.momentum = 1;
  redstar::MesonOp pi_m = pi_zero;
  pi_m.momentum = -1;
  two_particle.hadrons = {pi_p, pi_m};
  spec.source.constructions = {single, two_particle};
  spec.sink.constructions = {single, two_particle};
  spec.time_slices = static_cast<int>(args.get_int("time-slices", 6));
  spec.extent = args.get_int("extent", 24);  // small: we execute for real
  spec.batch = 2;

  // 2. Wick contraction + dependency analysis -> staged contraction plan.
  const redstar::CorrelatorWorkload workload = redstar::build_workload(spec);
  std::printf("correlator %s: %zu unique diagrams, %zu hadron contractions "
              "in %zu stages (%zu shared sub-reductions deduplicated)\n",
              spec.name.c_str(), workload.stats.diagrams,
              workload.stats.contractions, workload.stats.stages,
              workload.stats.deduplicated);
  std::printf("hadron nodes: %zu originals + %zu intermediates, %.2f GiB\n",
              workload.stats.original_nodes,
              workload.stats.intermediate_nodes,
              static_cast<double>(workload.stats.total_bytes) /
                  (1024.0 * 1024.0 * 1024.0));

  // 3. Structural + numeric verification: the staged plan must be a valid
  //    dependency order, and executing it with real tensor data yields a
  //    schedule-independent digest.
  const std::string structural = validate_stream_structure(workload.stream);
  if (!structural.empty()) {
    std::fprintf(stderr, "structural validation FAILED: %s\n",
                 structural.c_str());
    return 1;
  }
  const NumericResult numeric = execute_numerically(workload.stream);
  std::printf("numeric verification: %zu contractions executed, digest "
              "%.6e, peak live data %.1f MiB\n",
              numeric.tasks_executed, numeric.digest,
              static_cast<double>(numeric.peak_bytes) / (1024.0 * 1024.0));

  // 4. Schedule the same plan on the simulated cluster with both policies.
  ClusterConfig cluster;
  cluster.num_devices = static_cast<int>(args.get_int("gpus", 4));
  const auto entries = compare_schedulers(
      workload.stream, cluster,
      {SchedulerKind::kGroute, SchedulerKind::kMiccoNaive});
  for (const ComparisonEntry& e : entries) {
    std::printf("%-14s %8.0f GFLOPS, %llu reuse hits\n", e.name.c_str(),
                e.gflops(),
                static_cast<unsigned long long>(
                    e.result.metrics.reused_operands));
  }
  std::printf("MICCO speedup over Groute: %.2fx\n",
              speedup_of(entries, SchedulerKind::kMiccoNaive,
                         SchedulerKind::kGroute));
  return 0;
}
