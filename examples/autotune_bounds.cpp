// Autotuning walkthrough: generate the offline tuning corpus, train the
// Random-Forest reuse-bound model, inspect its predictions across the
// data-characteristics space, and run MICCO-naive vs MICCO-optimal online.
//
//   ./autotune_bounds [--samples=120] [--gpus=8]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/bounds_model.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace micco;
  const CliArgs args(argc, argv);
  const int gpus = static_cast<int>(args.get_int("gpus", 8));

  // 1. Offline phase: sweep reuse-bound triples across sampled workload
  //    configurations and label each with its measured optimum.
  TunerConfig tuner;
  tuner.samples = static_cast<int>(args.get_int("samples", 120));
  tuner.num_devices = gpus;
  tuner.batch = 32;
  std::printf("offline sweep: %d samples x 27 bound triples...\n",
              tuner.samples);
  const TuningData data = generate_tuning_data(tuner);

  // 2. Train the production model and report held-out quality.
  const TrainedBoundsModel model = train_bounds_model(
      data.samples, random_forest_factory(), "RandomForest", tuner.max_bound);
  std::printf("RandomForest held-out R^2 = %.2f (train %.1f ms, inference "
              "%.1f us)\n\n",
              model.report.mean_r2, model.report.train_ms,
              model.report.inference_us);

  // 3. Inspect what the model learned: predicted bounds across the space.
  TextTable table;
  table.add_column("vector", Align::kRight);
  table.add_column("tensor");
  table.add_column("bias");
  table.add_column("repeat");
  table.add_column("predicted bounds");
  for (const double vec : {16.0, 64.0}) {
    for (const double bias : {0.0, 0.4}) {
      for (const double rate : {0.25, 0.9}) {
        DataCharacteristics c;
        c.vector_size = vec;
        c.tensor_extent = 384;
        c.distribution_bias = bias;
        c.repeated_rate = rate;
        table.add_row({std::to_string(static_cast<int>(vec)), "384",
                       bias == 0.0 ? "uniform" : "biased",
                       std::to_string(static_cast<int>(rate * 100)) + "%",
                       model.provider->bounds_for(c).to_string()});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  // 4. Online phase: the pipeline extracts per-vector characteristics and
  //    queries the model before scheduling each vector (Fig. 6).
  SyntheticConfig workload;
  workload.num_vectors = 10;
  workload.vector_size = 64;
  workload.tensor_extent = 384;
  workload.batch = 32;
  workload.repeated_rate = 0.75;
  workload.distribution = DataDistribution::kGaussian;
  workload.seed = 3;
  const WorkloadStream stream = generate_synthetic(workload);

  ClusterConfig cluster;
  cluster.num_devices = gpus;

  MiccoScheduler naive;
  const RunResult naive_run = run_stream(stream, naive, cluster);
  MiccoScheduler tuned;
  const RunResult tuned_run = run_stream(
      stream, tuned, cluster,
      const_cast<RegressionBoundsProvider*>(model.provider.get()));

  std::printf("MICCO-naive   : %8.0f GFLOPS\n", naive_run.metrics.gflops());
  std::printf("MICCO-optimal : %8.0f GFLOPS (%.2fx, scheduling overhead "
              "%.2f ms incl. inference)\n",
              tuned_run.metrics.gflops(),
              naive_run.metrics.makespan_s / tuned_run.metrics.makespan_s,
              tuned_run.scheduling_overhead_ms);
  return 0;
}
