// Side-by-side comparison of every scheduler in the library — the two
// degenerate corners of Fig. 2 (pure data reuse, pure load balance), the
// Groute-style earliest-available baseline, round-robin, and MICCO — on a
// user-configurable workload, with the full metric breakdown.
//
//   ./scheduler_comparison [--gpus=8] [--vector-size=64] [--repeat=0.5]
//                          [--gaussian] [--oversub=1.0] [--tensor=384]
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace micco;
  const CliArgs args(argc, argv);

  SyntheticConfig workload;
  workload.num_vectors = args.get_int("vectors", 10);
  workload.vector_size = args.get_int("vector-size", 64);
  workload.tensor_extent = args.get_int("tensor", 384);
  workload.batch = args.get_int("batch", 32);
  workload.repeated_rate = args.get_double("repeat", 0.5);
  workload.distribution = args.get_bool("gaussian", false)
                              ? DataDistribution::kGaussian
                              : DataDistribution::kUniform;
  workload.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const WorkloadStream stream = generate_synthetic(workload);

  ClusterConfig cluster;
  cluster.num_devices = static_cast<int>(args.get_int("gpus", 8));
  const double oversub = args.get_double("oversub", 0.0);
  if (oversub > 0.0) {
    cluster.device_capacity_bytes = capacity_for_oversubscription(
        stream, cluster.num_devices, oversub,
        8 * stream.vectors[0].tasks[0].a.bytes());
  }

  std::printf("workload: %lld vectors x %lld tensors, tensor size %lld, "
              "%.0f%% repeats, %s; %d GPUs",
              static_cast<long long>(workload.num_vectors),
              static_cast<long long>(workload.vector_size),
              static_cast<long long>(workload.tensor_extent),
              workload.repeated_rate * 100, to_string(workload.distribution),
              cluster.num_devices);
  if (oversub > 0.0) std::printf(", %.0f%% oversubscribed", oversub * 100);
  std::printf("\n\n");

  const auto entries = compare_schedulers(
      stream, cluster,
      {SchedulerKind::kGroute, SchedulerKind::kRoundRobin,
       SchedulerKind::kDataReuseOnly, SchedulerKind::kLoadBalanceOnly,
       SchedulerKind::kMiccoNaive});

  TextTable table;
  table.add_column("scheduler", Align::kLeft);
  table.add_column("GFLOPS");
  table.add_column("makespan (ms)");
  table.add_column("reuse hits");
  table.add_column("fetches");
  table.add_column("evictions");
  table.add_column("barrier idle (ms)");
  table.add_column("vs Groute");

  for (const ComparisonEntry& e : entries) {
    const ExecutionMetrics& m = e.result.metrics;
    table.add_row(
        {e.name, stats::format(m.gflops(), 0),
         stats::format(m.makespan_s * 1e3, 1),
         std::to_string(m.reused_operands), std::to_string(m.fetched_operands),
         std::to_string(m.evictions),
         stats::format(m.barrier_idle_s * 1e3, 1),
         stats::format(speedup_of(entries, e.kind, SchedulerKind::kGroute),
                       2) +
             "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nDataReuseOnly maximises reuse hits but starves most devices "
      "(case 1 of Fig. 2); LoadBalanceOnly and Groute keep devices busy but "
      "re-fetch repeated tensors (case 2); MICCO trades the two off "
      "(case 3).\n");
  return 0;
}
