#!/usr/bin/env sh
# Local CI: strict-warning Debug build, full test suite, and a telemetry
# smoke test (the `report` subcommand must emit a valid, deterministic
# report + decision log on a synthetic stream).
#
# Usage: ./ci.sh [build-dir]     (default: build-ci)
set -eu

BUILD_DIR="${1:-build-ci}"

echo "== configure (${BUILD_DIR}, Debug, -Wall -Wextra) =="
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo "== report smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/tools/micco" report --gpus=4 --vectors=2 --vector-size=24 \
  --out="${SMOKE_DIR}/r1.json" --decisions="${SMOKE_DIR}/d1.jsonl"
"${BUILD_DIR}/tools/micco" report --gpus=4 --vectors=2 --vector-size=24 \
  --out="${SMOKE_DIR}/r2.json" --decisions="${SMOKE_DIR}/d2.jsonl"

# The decision log must be byte-identical across identical runs.
cmp "${SMOKE_DIR}/d1.jsonl" "${SMOKE_DIR}/d2.jsonl"

# The report must be JSON a stock parser accepts, with the headline fields.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/r1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("schema_version", "scheduler", "derived", "devices", "registry"):
    assert key in report, f"report missing {key!r}"
assert report["registry"]["counters"]["sched.decisions"] > 0
print("report smoke test OK:", report["scheduler"],
      f"{report['derived']['gflops']:.0f} GFLOPS,",
      len(report["devices"]), "devices")
EOF
else
  grep -q '"schema_version"' "${SMOKE_DIR}/r1.json"
  echo "report smoke test OK (python3 unavailable; grep check only)"
fi

echo "== ci.sh: all green =="
