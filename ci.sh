#!/usr/bin/env sh
# Local CI: strict-warning Debug build with runtime lock-rank enforcement
# compiled in, the micco-lint determinism & concurrency gate (required —
# scope-aware lock-order/blocking/WAL rules, lock-graph export, and a stale-
# suppression audit), full test suite, a telemetry smoke test (the
# `report` subcommand must emit a valid, deterministic report + decision
# log on a synthetic stream), a fault-injection smoke test (kill a device
# mid-stream and require a clean recovery), a serve smoke test (the
# scheduling daemon end to end: submit/wait/drain over a Unix socket with
# byte-identical decision logs AND byte-identical span traces across
# sessions, a `micco top --once` dashboard frame, and an offline
# `micco report --spans` well-formedness pass), a chaos smoke test
# (tools/chaos_smoke.sh: kill -9 the daemon at every scripted journal crash
# point, restart on the same journal, and require byte-identical recovered
# decision logs plus exactly-once idempotent resubmits), an eviction-policy
# smoke test (all three mem/ policies on an oversubscribed workload plus a
# daemon session with the cross-tenant memory arbiter on), an
# ASan+UBSan-instrumented build + test pass (which covers the protocol fuzz
# and journal torn-write suites under ASan), a TSan pass over the
# parallel-layer, observability and service tests at 8 worker threads, a Release-mode bench_sched_micro smoke
# run (decision throughput + cross-thread-count tuner label identity), the
# Release-mode eviction-policy gate (bench_oversubscription --gate:
# reuse-distance must not pay more eviction-caused transfer bytes than LRU
# on f0d2/f0d4), the
# Release-mode tracing-overhead gate (bench_overhead --gate: full tracing
# must cost < 2 % end to end), and — when LLVM tooling is on
# PATH — a clang-tidy pass over the compilation database plus a Clang build
# with -Werror=thread-safety checking the MICCO_GUARDED_BY/REQUIRES
# annotations (both skip with a notice on GCC-only hosts).
#
# Usage: ./ci.sh [build-dir]     (default: build-ci)
set -eu

BUILD_DIR="${1:-build-ci}"
SAN_BUILD_DIR="${BUILD_DIR}-asan"
TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
REL_BUILD_DIR="${BUILD_DIR}-rel"
CLANG_BUILD_DIR="${BUILD_DIR}-clang"

echo "== configure (${BUILD_DIR}, Debug, -Wall -Wextra -Werror, lock ranks) =="
# -DMICCO_MUTEX_RANKS=1 makes the runtime lock-rank checks explicit (they
# default on in Debug anyway): every ctest suite, smoke daemon and death
# test below runs with rank-inversion enforcement live (DESIGN.md §10.4).
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DMICCO_MUTEX_RANKS=1 \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"

echo "== lint (micco_lint, required) =="
# The determinism & concurrency gate (DESIGN.md §5e, §10). Non-zero exit
# fails CI — including lock-order cycles, blocking-under-lock and WAL-rule
# findings from the scope-aware analysis; the JSON invocation is what
# dashboards/scripts consume and doubles as a schema smoke test. The
# tree-wide run also exports the extracted lock-order graph, which `micco
# report --lock-graph` summarises into the CI log so the certified
# concurrency surface is recorded alongside the build.
"${BUILD_DIR}/tools/micco_lint" --format=text \
  --lock-graph="${BUILD_DIR}/lock_graph.json" src tools bench
"${BUILD_DIR}/tools/micco_lint" --format=json src > /dev/null
"${BUILD_DIR}/tools/micco" report --lock-graph="${BUILD_DIR}/lock_graph.json"

echo "== lint suppressions (no stale allow() directives) =="
# Lists every in-tree allow() with its rule, reason and blame date; exits
# 22 (failing CI) if any directive no longer suppresses anything.
"${BUILD_DIR}/tools/micco_lint" --suppressions src tools bench

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo "== report smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/tools/micco" report --gpus=4 --vectors=2 --vector-size=24 \
  --out="${SMOKE_DIR}/r1.json" --decisions="${SMOKE_DIR}/d1.jsonl"
"${BUILD_DIR}/tools/micco" report --gpus=4 --vectors=2 --vector-size=24 \
  --out="${SMOKE_DIR}/r2.json" --decisions="${SMOKE_DIR}/d2.jsonl"

# The decision log must be byte-identical across identical runs.
cmp "${SMOKE_DIR}/d1.jsonl" "${SMOKE_DIR}/d2.jsonl"

# The report must be JSON a stock parser accepts, with the headline fields.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${SMOKE_DIR}/r1.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("schema_version", "scheduler", "derived", "devices", "registry"):
    assert key in report, f"report missing {key!r}"
assert report["registry"]["counters"]["sched.decisions"] > 0
print("report smoke test OK:", report["scheduler"],
      f"{report['derived']['gflops']:.0f} GFLOPS,",
      len(report["devices"]), "devices")
EOF
else
  grep -q '"schema_version"' "${SMOKE_DIR}/r1.json"
  echo "report smoke test OK (python3 unavailable; grep check only)"
fi

echo "== fault-injection smoke test =="
# Kill 1 of 4 devices shortly after the stream starts; the run must still
# complete, flag the recovery in the report, and validate the plan file.
cat > "${SMOKE_DIR}/plan.txt" <<'EOF'
# smoke plan: one mid-stream device loss
fail 1 0.001
EOF
"${BUILD_DIR}/tools/micco" faults "${SMOKE_DIR}/plan.txt" --gpus=4
"${BUILD_DIR}/tools/micco" report --gpus=4 --vectors=2 --vector-size=24 \
  --fault-plan="${SMOKE_DIR}/plan.txt" --out="${SMOKE_DIR}/rf.json"
grep -q '"recovered": true' "${SMOKE_DIR}/rf.json"
grep -q '"devices_lost": 1' "${SMOKE_DIR}/rf.json"
echo "fault smoke test OK: device loss absorbed, recovered=true"

# An invalid plan must be rejected with a non-zero exit, not an abort.
if "${BUILD_DIR}/tools/micco" faults "${SMOKE_DIR}/plan.txt" --gpus=1 \
    >/dev/null 2>&1; then
  echo "fault smoke test FAILED: out-of-range plan accepted" >&2
  exit 1
fi

echo "== serve smoke test =="
# End-to-end daemon path (DESIGN.md §6): start `micco serve` on a private
# socket, submit workloads from two tenants, wait for completion, drain,
# and require a clean exit plus a session report. Two sessions fed the same
# submission sequence must produce byte-identical decision logs AND
# byte-identical span traces (the deterministic-serving contract at
# --threads=1). The first session also serves one `micco top` dashboard
# frame over the live metrics verb.
"${BUILD_DIR}/tools/micco" generate --out="${SMOKE_DIR}/w.mw" \
  --vectors=2 --vector-size=16 --seed=5
for session in 1 2; do
  rm -f "${SMOKE_DIR}/svc.sock"
  "${BUILD_DIR}/tools/micco" serve --socket="${SMOKE_DIR}/svc.sock" \
    --gpus=4 --threads=1 \
    --decisions="${SMOKE_DIR}/sd${session}.jsonl" \
    --spans="${SMOKE_DIR}/ss${session}.jsonl" \
    --report="${SMOKE_DIR}/sr${session}.json" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -S "${SMOKE_DIR}/svc.sock" ] && break
    sleep 0.1
  done
  "${BUILD_DIR}/tools/micco" submit "${SMOKE_DIR}/w.mw" \
    --socket="${SMOKE_DIR}/svc.sock" --tenant=alice --wait
  "${BUILD_DIR}/tools/micco" submit "${SMOKE_DIR}/w.mw" \
    --socket="${SMOKE_DIR}/svc.sock" --tenant=bob --wait
  "${BUILD_DIR}/tools/micco" status --socket="${SMOKE_DIR}/svc.sock" \
    > /dev/null
  if [ "${session}" = 1 ]; then
    "${BUILD_DIR}/tools/micco" top --socket="${SMOKE_DIR}/svc.sock" --once \
      > "${SMOKE_DIR}/top.txt"
    grep -q 'micco top' "${SMOKE_DIR}/top.txt"
    grep -q 'job_sim_ms' "${SMOKE_DIR}/top.txt"
  fi
  "${BUILD_DIR}/tools/micco" drain --socket="${SMOKE_DIR}/svc.sock"
  wait "${SERVE_PID}"
done
cmp "${SMOKE_DIR}/sd1.jsonl" "${SMOKE_DIR}/sd2.jsonl"
cmp "${SMOKE_DIR}/ss1.jsonl" "${SMOKE_DIR}/ss2.jsonl"
grep -q '"schema_version"' "${SMOKE_DIR}/sr1.json"
# The offline trace summarizer must accept the session trace as well-formed
# (single root per trace, contiguous sequence numbers, resolvable parents).
"${BUILD_DIR}/tools/micco" report --spans="${SMOKE_DIR}/ss1.jsonl" \
  > "${SMOKE_DIR}/trace_summary.json"
grep -q '"well_formed": true' "${SMOKE_DIR}/trace_summary.json"
echo "serve smoke test OK: deterministic decision logs + span traces," \
  "top frame rendered, trace summary well-formed"

echo "== eviction-policy smoke test =="
# Memory co-design subsystem (DESIGN.md §11): every eviction policy must
# complete the same oversubscribed meson workload via the CLI, and a daemon
# session with the cross-tenant arbiter on must surface the memory section
# in stats replies and the top dashboard.
for policy in lru reuse-distance pin-until-last-use; do
  "${BUILD_DIR}/tools/micco" run "${SMOKE_DIR}/w.mw" --gpus=4 --oversub=2 \
    --evict-policy="${policy}" > "${SMOKE_DIR}/policy_${policy}.txt"
  grep -q 'eviction policy' "${SMOKE_DIR}/policy_${policy}.txt"
done
rm -f "${SMOKE_DIR}/svc.sock"
"${BUILD_DIR}/tools/micco" serve --socket="${SMOKE_DIR}/svc.sock" \
  --gpus=4 --threads=1 --evict-policy=reuse-distance --mem-arbiter=on &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "${SMOKE_DIR}/svc.sock" ] && break
  sleep 0.1
done
"${BUILD_DIR}/tools/micco" submit "${SMOKE_DIR}/w.mw" \
  --socket="${SMOKE_DIR}/svc.sock" --tenant=alice --wait
"${BUILD_DIR}/tools/micco" submit "${SMOKE_DIR}/w.mw" \
  --socket="${SMOKE_DIR}/svc.sock" --tenant=bob --wait
"${BUILD_DIR}/tools/micco" status --socket="${SMOKE_DIR}/svc.sock" \
  > "${SMOKE_DIR}/arbiter_stats.txt"
grep -q '"memory"' "${SMOKE_DIR}/arbiter_stats.txt"
grep -q '"admissions"' "${SMOKE_DIR}/arbiter_stats.txt"
"${BUILD_DIR}/tools/micco" top --socket="${SMOKE_DIR}/svc.sock" --once \
  > "${SMOKE_DIR}/arbiter_top.txt"
grep -q 'memory:' "${SMOKE_DIR}/arbiter_top.txt"
grep -q 'resident_bytes' "${SMOKE_DIR}/arbiter_top.txt"
"${BUILD_DIR}/tools/micco" drain --socket="${SMOKE_DIR}/svc.sock"
wait "${SERVE_PID}"
echo "eviction-policy smoke test OK: three policies ran, arbiter session" \
  "surfaced per-tenant residency"

echo "== chaos smoke test (kill -9 + journal recovery) =="
# DESIGN.md §8: SIGKILL the daemon at each journal crash point, restart on
# the same journal, and require byte-identical recovered decision logs and
# exactly-once idempotent resubmission.
sh tools/chaos_smoke.sh "${BUILD_DIR}/tools/micco" "${SMOKE_DIR}/chaos"

echo "== configure (${SAN_BUILD_DIR}, ASan+UBSan) =="
cmake -B "${SAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"

echo "== build (sanitizers) =="
cmake --build "${SAN_BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"

echo "== test (sanitizers) =="
ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure \
  -j "$(nproc 2>/dev/null || echo 4)"

echo "== configure (${TSAN_BUILD_DIR}, TSan) =="
# ThreadSanitizer pass over the concurrent layers: the parallel-pool suites
# (pool semantics, nesting, determinism) plus the service-daemon suites
# (concurrent submits over I/O lanes, JobManager accounting, protocol
# framing) run with the pool forced to 8 worker threads so cross-thread
# interleavings happen even on small hosts. Benches are skipped: TSan only
# needs the test binary.
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DMICCO_BUILD_BENCH=OFF \
  -DMICCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"

echo "== build (TSan) =="
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
  --target micco_tests

echo "== test (TSan, parallel + service suites, 8 threads) =="
# OVERSUBSCRIBE lifts the pool's hardware-concurrency lane cap so the forced
# 8-thread interleavings actually happen on 1-2 core CI runners.
MICCO_THREADS=8 MICCO_THREADS_OVERSUBSCRIBE=1 \
  "${TSAN_BUILD_DIR}/tests/micco_tests" \
  --gtest_filter='Parallel*:Service*:JobManager*:Protocol*:Journal*:Recovery*'

echo "== configure (${REL_BUILD_DIR}, Release) =="
cmake -B "${REL_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DMICCO_BUILD_TESTS=OFF \
  -DMICCO_BUILD_EXAMPLES=OFF

echo "== build (Release, bench_sched_micro + bench_overhead + bench_oversubscription) =="
cmake --build "${REL_BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
  --target bench_sched_micro --target bench_overhead \
  --target bench_oversubscription

echo "== bench_sched_micro gate (Release) =="
# Exits non-zero if tuner labels diverge across 1/2/4/8 threads, if the
# Groute/MICCO decisions-per-sec ratio regresses past the checked-in
# threshold (1.8 at 8 GPUs — measured ~1.5 after the incremental scheduler,
# plus headroom), or if the tuner's 4-thread speedup drops below 1.0
# (0.9 on sub-4-core runners; see bench_sched_micro.cpp). BENCH_sched.json
# is refreshed on every run so the tracked numbers never go stale silently.
"${REL_BUILD_DIR}/bench/bench_sched_micro" --smoke --gate \
  --out="BENCH_sched.json"
grep -q '"tuner_labels_identical_across_threads": true' "BENCH_sched.json"

echo "== bench_sched_micro gate, 64 GPUs (Release) =="
# At 64 devices MICCO's data-centric tiers (holders only) outscale Groute's
# all-device scan; the gate pins that inversion: ratio must stay <= 1.0.
"${REL_BUILD_DIR}/bench/bench_sched_micro" --smoke --gate --gpus=64 \
  --gate-max-ratio=1.0 --out="${SMOKE_DIR}/bench_sched_64.json"

echo "== eviction-policy gate (Release) =="
# Exits non-zero when ReuseDistancePolicy pays MORE eviction-caused
# transfer bytes (write-backs + re-fetches of evicted tensors) than LRU on
# the f0d2/f0d4 oversubscription benches, or when any policy materially
# flips the Groute-vs-MICCO GFLOPS ranking. BENCH_mem.json is refreshed on
# every run so the tracked numbers never go stale silently.
"${REL_BUILD_DIR}/bench/bench_oversubscription" --quick --gate \
  --out="BENCH_mem.json"
grep -q '"gate_passed": true' "BENCH_mem.json"

echo "== tracing overhead gate (Release) =="
# Exits non-zero when full tracing (spans + decision-latency scratch) costs
# more than 2 % of end-to-end run time (DESIGN.md §7).
"${REL_BUILD_DIR}/bench/bench_overhead" --gate --gpus=4

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The Debug configure above exported compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally); .clang-tidy at
  # the repo root holds the curated check list.
  find src tools bench -name '*.cpp' -print \
    | xargs clang-tidy -p "${BUILD_DIR}" --quiet
else
  echo "clang-tidy not found; skipping (install LLVM tooling to enable)"
fi

echo "== clang thread-safety analysis =="
if command -v clang++ >/dev/null 2>&1; then
  # Clang's -Wthread-safety checks the MICCO_GUARDED_BY/MICCO_REQUIRES
  # annotations (common/thread_annotations.hpp); they expand to nothing
  # under GCC, so only a Clang build can verify them.
  cmake -B "${CLANG_BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DMICCO_BUILD_BENCH=OFF \
    -DMICCO_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
  cmake --build "${CLANG_BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"
else
  echo "clang++ not found; skipping (annotations are no-ops under GCC)"
fi

echo "== ci.sh: all green =="
