
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baryon.cpp" "tests/CMakeFiles/micco_tests.dir/test_baryon.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_baryon.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/micco_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bounds_model.cpp" "tests/CMakeFiles/micco_tests.dir/test_bounds_model.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_bounds_model.cpp.o.d"
  "/root/repo/tests/test_characteristics.cpp" "tests/CMakeFiles/micco_tests.dir/test_characteristics.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_characteristics.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/micco_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/micco_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_contraction.cpp" "tests/CMakeFiles/micco_tests.dir/test_contraction.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_contraction.cpp.o.d"
  "/root/repo/tests/test_correlator.cpp" "tests/CMakeFiles/micco_tests.dir/test_correlator.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_correlator.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/micco_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/micco_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_decision_tree.cpp" "tests/CMakeFiles/micco_tests.dir/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_decision_tree.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/micco_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_forest_boosting.cpp" "tests/CMakeFiles/micco_tests.dir/test_forest_boosting.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_forest_boosting.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/micco_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_stats.cpp" "tests/CMakeFiles/micco_tests.dir/test_graph_stats.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_graph_stats.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/micco_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linear_regression.cpp" "tests/CMakeFiles/micco_tests.dir/test_linear_regression.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_linear_regression.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/micco_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_micco_scheduler.cpp" "tests/CMakeFiles/micco_tests.dir/test_micco_scheduler.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_micco_scheduler.cpp.o.d"
  "/root/repo/tests/test_ml_dataset.cpp" "tests/CMakeFiles/micco_tests.dir/test_ml_dataset.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_ml_dataset.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/micco_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/micco_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/micco_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reuse_bounds.cpp" "tests/CMakeFiles/micco_tests.dir/test_reuse_bounds.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_reuse_bounds.cpp.o.d"
  "/root/repo/tests/test_reuse_pattern.cpp" "tests/CMakeFiles/micco_tests.dir/test_reuse_pattern.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_reuse_pattern.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/micco_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheduler_properties2.cpp" "tests/CMakeFiles/micco_tests.dir/test_scheduler_properties2.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_scheduler_properties2.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/micco_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_shape_tensor.cpp" "tests/CMakeFiles/micco_tests.dir/test_shape_tensor.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_shape_tensor.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/micco_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/micco_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/micco_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_task.cpp" "tests/CMakeFiles/micco_tests.dir/test_task.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_task.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/micco_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_tuner.cpp" "tests/CMakeFiles/micco_tests.dir/test_tuner.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_tuner.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/micco_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_wick.cpp" "tests/CMakeFiles/micco_tests.dir/test_wick.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_wick.cpp.o.d"
  "/root/repo/tests/test_workload_serialize.cpp" "tests/CMakeFiles/micco_tests.dir/test_workload_serialize.cpp.o" "gcc" "tests/CMakeFiles/micco_tests.dir/test_workload_serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/micco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/redstar/CMakeFiles/micco_redstar.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/micco_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/micco_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/micco_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/micco_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/micco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
