# Empty compiler generated dependencies file for micco_tests.
# This may be replaced when dependencies are built.
