file(REMOVE_RECURSE
  "CMakeFiles/autotune_bounds.dir/autotune_bounds.cpp.o"
  "CMakeFiles/autotune_bounds.dir/autotune_bounds.cpp.o.d"
  "autotune_bounds"
  "autotune_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
