# Empty compiler generated dependencies file for autotune_bounds.
# This may be replaced when dependencies are built.
