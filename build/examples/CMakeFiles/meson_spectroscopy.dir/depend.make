# Empty dependencies file for meson_spectroscopy.
# This may be replaced when dependencies are built.
