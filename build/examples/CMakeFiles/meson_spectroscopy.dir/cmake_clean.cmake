file(REMOVE_RECURSE
  "CMakeFiles/meson_spectroscopy.dir/meson_spectroscopy.cpp.o"
  "CMakeFiles/meson_spectroscopy.dir/meson_spectroscopy.cpp.o.d"
  "meson_spectroscopy"
  "meson_spectroscopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meson_spectroscopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
