file(REMOVE_RECURSE
  "CMakeFiles/micco_ml.dir/dataset.cpp.o"
  "CMakeFiles/micco_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/micco_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/micco_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/micco_ml.dir/gradient_boosting.cpp.o"
  "CMakeFiles/micco_ml.dir/gradient_boosting.cpp.o.d"
  "CMakeFiles/micco_ml.dir/linear_regression.cpp.o"
  "CMakeFiles/micco_ml.dir/linear_regression.cpp.o.d"
  "CMakeFiles/micco_ml.dir/random_forest.cpp.o"
  "CMakeFiles/micco_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/micco_ml.dir/regressor.cpp.o"
  "CMakeFiles/micco_ml.dir/regressor.cpp.o.d"
  "CMakeFiles/micco_ml.dir/serialize.cpp.o"
  "CMakeFiles/micco_ml.dir/serialize.cpp.o.d"
  "libmicco_ml.a"
  "libmicco_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
