file(REMOVE_RECURSE
  "libmicco_ml.a"
)
