# Empty dependencies file for micco_ml.
# This may be replaced when dependencies are built.
