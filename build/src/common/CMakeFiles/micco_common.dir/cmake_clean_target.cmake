file(REMOVE_RECURSE
  "libmicco_common.a"
)
