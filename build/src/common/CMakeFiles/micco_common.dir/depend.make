# Empty dependencies file for micco_common.
# This may be replaced when dependencies are built.
