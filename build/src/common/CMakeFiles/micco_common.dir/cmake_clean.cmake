file(REMOVE_RECURSE
  "CMakeFiles/micco_common.dir/cli.cpp.o"
  "CMakeFiles/micco_common.dir/cli.cpp.o.d"
  "CMakeFiles/micco_common.dir/csv.cpp.o"
  "CMakeFiles/micco_common.dir/csv.cpp.o.d"
  "CMakeFiles/micco_common.dir/log.cpp.o"
  "CMakeFiles/micco_common.dir/log.cpp.o.d"
  "CMakeFiles/micco_common.dir/rng.cpp.o"
  "CMakeFiles/micco_common.dir/rng.cpp.o.d"
  "CMakeFiles/micco_common.dir/stats.cpp.o"
  "CMakeFiles/micco_common.dir/stats.cpp.o.d"
  "CMakeFiles/micco_common.dir/table.cpp.o"
  "CMakeFiles/micco_common.dir/table.cpp.o.d"
  "libmicco_common.a"
  "libmicco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
