# Empty compiler generated dependencies file for micco_gpusim.
# This may be replaced when dependencies are built.
