file(REMOVE_RECURSE
  "libmicco_gpusim.a"
)
