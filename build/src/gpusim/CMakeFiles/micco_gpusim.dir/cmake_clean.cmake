file(REMOVE_RECURSE
  "CMakeFiles/micco_gpusim.dir/cluster.cpp.o"
  "CMakeFiles/micco_gpusim.dir/cluster.cpp.o.d"
  "CMakeFiles/micco_gpusim.dir/cost_model.cpp.o"
  "CMakeFiles/micco_gpusim.dir/cost_model.cpp.o.d"
  "CMakeFiles/micco_gpusim.dir/memory.cpp.o"
  "CMakeFiles/micco_gpusim.dir/memory.cpp.o.d"
  "CMakeFiles/micco_gpusim.dir/trace.cpp.o"
  "CMakeFiles/micco_gpusim.dir/trace.cpp.o.d"
  "libmicco_gpusim.a"
  "libmicco_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
