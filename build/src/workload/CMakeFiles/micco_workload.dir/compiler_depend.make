# Empty compiler generated dependencies file for micco_workload.
# This may be replaced when dependencies are built.
