
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/characteristics.cpp" "src/workload/CMakeFiles/micco_workload.dir/characteristics.cpp.o" "gcc" "src/workload/CMakeFiles/micco_workload.dir/characteristics.cpp.o.d"
  "/root/repo/src/workload/serialize.cpp" "src/workload/CMakeFiles/micco_workload.dir/serialize.cpp.o" "gcc" "src/workload/CMakeFiles/micco_workload.dir/serialize.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/micco_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/micco_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/task.cpp" "src/workload/CMakeFiles/micco_workload.dir/task.cpp.o" "gcc" "src/workload/CMakeFiles/micco_workload.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
