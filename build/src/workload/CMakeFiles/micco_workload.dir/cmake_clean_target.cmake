file(REMOVE_RECURSE
  "libmicco_workload.a"
)
