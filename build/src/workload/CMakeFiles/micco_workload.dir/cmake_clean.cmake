file(REMOVE_RECURSE
  "CMakeFiles/micco_workload.dir/characteristics.cpp.o"
  "CMakeFiles/micco_workload.dir/characteristics.cpp.o.d"
  "CMakeFiles/micco_workload.dir/serialize.cpp.o"
  "CMakeFiles/micco_workload.dir/serialize.cpp.o.d"
  "CMakeFiles/micco_workload.dir/synthetic.cpp.o"
  "CMakeFiles/micco_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/micco_workload.dir/task.cpp.o"
  "CMakeFiles/micco_workload.dir/task.cpp.o.d"
  "libmicco_workload.a"
  "libmicco_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
