file(REMOVE_RECURSE
  "libmicco_redstar.a"
)
