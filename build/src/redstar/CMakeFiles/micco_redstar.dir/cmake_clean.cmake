file(REMOVE_RECURSE
  "CMakeFiles/micco_redstar.dir/correlator.cpp.o"
  "CMakeFiles/micco_redstar.dir/correlator.cpp.o.d"
  "CMakeFiles/micco_redstar.dir/operators.cpp.o"
  "CMakeFiles/micco_redstar.dir/operators.cpp.o.d"
  "CMakeFiles/micco_redstar.dir/wick.cpp.o"
  "CMakeFiles/micco_redstar.dir/wick.cpp.o.d"
  "libmicco_redstar.a"
  "libmicco_redstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_redstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
