# Empty compiler generated dependencies file for micco_redstar.
# This may be replaced when dependencies are built.
