
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redstar/correlator.cpp" "src/redstar/CMakeFiles/micco_redstar.dir/correlator.cpp.o" "gcc" "src/redstar/CMakeFiles/micco_redstar.dir/correlator.cpp.o.d"
  "/root/repo/src/redstar/operators.cpp" "src/redstar/CMakeFiles/micco_redstar.dir/operators.cpp.o" "gcc" "src/redstar/CMakeFiles/micco_redstar.dir/operators.cpp.o.d"
  "/root/repo/src/redstar/wick.cpp" "src/redstar/CMakeFiles/micco_redstar.dir/wick.cpp.o" "gcc" "src/redstar/CMakeFiles/micco_redstar.dir/wick.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/micco_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/micco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
