file(REMOVE_RECURSE
  "CMakeFiles/micco_core.dir/bounds_model.cpp.o"
  "CMakeFiles/micco_core.dir/bounds_model.cpp.o.d"
  "CMakeFiles/micco_core.dir/experiment.cpp.o"
  "CMakeFiles/micco_core.dir/experiment.cpp.o.d"
  "CMakeFiles/micco_core.dir/pipeline.cpp.o"
  "CMakeFiles/micco_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/micco_core.dir/tuner.cpp.o"
  "CMakeFiles/micco_core.dir/tuner.cpp.o.d"
  "CMakeFiles/micco_core.dir/verify.cpp.o"
  "CMakeFiles/micco_core.dir/verify.cpp.o.d"
  "libmicco_core.a"
  "libmicco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
