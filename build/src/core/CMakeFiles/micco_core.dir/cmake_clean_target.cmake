file(REMOVE_RECURSE
  "libmicco_core.a"
)
