# Empty compiler generated dependencies file for micco_core.
# This may be replaced when dependencies are built.
