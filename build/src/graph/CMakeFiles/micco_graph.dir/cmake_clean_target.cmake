file(REMOVE_RECURSE
  "libmicco_graph.a"
)
