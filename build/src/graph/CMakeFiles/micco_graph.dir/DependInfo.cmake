
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/contraction_graph.cpp" "src/graph/CMakeFiles/micco_graph.dir/contraction_graph.cpp.o" "gcc" "src/graph/CMakeFiles/micco_graph.dir/contraction_graph.cpp.o.d"
  "/root/repo/src/graph/graph_stats.cpp" "src/graph/CMakeFiles/micco_graph.dir/graph_stats.cpp.o" "gcc" "src/graph/CMakeFiles/micco_graph.dir/graph_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/micco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
