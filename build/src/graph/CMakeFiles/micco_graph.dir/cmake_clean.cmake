file(REMOVE_RECURSE
  "CMakeFiles/micco_graph.dir/contraction_graph.cpp.o"
  "CMakeFiles/micco_graph.dir/contraction_graph.cpp.o.d"
  "CMakeFiles/micco_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/micco_graph.dir/graph_stats.cpp.o.d"
  "libmicco_graph.a"
  "libmicco_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
