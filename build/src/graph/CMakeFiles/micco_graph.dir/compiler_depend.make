# Empty compiler generated dependencies file for micco_graph.
# This may be replaced when dependencies are built.
