
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baselines.cpp" "src/sched/CMakeFiles/micco_sched.dir/baselines.cpp.o" "gcc" "src/sched/CMakeFiles/micco_sched.dir/baselines.cpp.o.d"
  "/root/repo/src/sched/micco_scheduler.cpp" "src/sched/CMakeFiles/micco_sched.dir/micco_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/micco_sched.dir/micco_scheduler.cpp.o.d"
  "/root/repo/src/sched/oracle.cpp" "src/sched/CMakeFiles/micco_sched.dir/oracle.cpp.o" "gcc" "src/sched/CMakeFiles/micco_sched.dir/oracle.cpp.o.d"
  "/root/repo/src/sched/reuse_bounds.cpp" "src/sched/CMakeFiles/micco_sched.dir/reuse_bounds.cpp.o" "gcc" "src/sched/CMakeFiles/micco_sched.dir/reuse_bounds.cpp.o.d"
  "/root/repo/src/sched/reuse_pattern.cpp" "src/sched/CMakeFiles/micco_sched.dir/reuse_pattern.cpp.o" "gcc" "src/sched/CMakeFiles/micco_sched.dir/reuse_pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/micco_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/micco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
