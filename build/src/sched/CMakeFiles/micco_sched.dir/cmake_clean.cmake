file(REMOVE_RECURSE
  "CMakeFiles/micco_sched.dir/baselines.cpp.o"
  "CMakeFiles/micco_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/micco_sched.dir/micco_scheduler.cpp.o"
  "CMakeFiles/micco_sched.dir/micco_scheduler.cpp.o.d"
  "CMakeFiles/micco_sched.dir/oracle.cpp.o"
  "CMakeFiles/micco_sched.dir/oracle.cpp.o.d"
  "CMakeFiles/micco_sched.dir/reuse_bounds.cpp.o"
  "CMakeFiles/micco_sched.dir/reuse_bounds.cpp.o.d"
  "CMakeFiles/micco_sched.dir/reuse_pattern.cpp.o"
  "CMakeFiles/micco_sched.dir/reuse_pattern.cpp.o.d"
  "libmicco_sched.a"
  "libmicco_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
