file(REMOVE_RECURSE
  "libmicco_sched.a"
)
