# Empty dependencies file for micco_sched.
# This may be replaced when dependencies are built.
