# Empty dependencies file for micco_tensor.
# This may be replaced when dependencies are built.
