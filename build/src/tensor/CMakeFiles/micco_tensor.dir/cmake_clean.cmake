file(REMOVE_RECURSE
  "CMakeFiles/micco_tensor.dir/contraction.cpp.o"
  "CMakeFiles/micco_tensor.dir/contraction.cpp.o.d"
  "CMakeFiles/micco_tensor.dir/tensor.cpp.o"
  "CMakeFiles/micco_tensor.dir/tensor.cpp.o.d"
  "libmicco_tensor.a"
  "libmicco_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
