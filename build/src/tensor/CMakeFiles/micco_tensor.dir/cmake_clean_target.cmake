file(REMOVE_RECURSE
  "libmicco_tensor.a"
)
