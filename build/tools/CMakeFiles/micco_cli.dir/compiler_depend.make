# Empty compiler generated dependencies file for micco_cli.
# This may be replaced when dependencies are built.
