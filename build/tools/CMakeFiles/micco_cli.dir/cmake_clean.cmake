file(REMOVE_RECURSE
  "CMakeFiles/micco_cli.dir/micco_cli.cpp.o"
  "CMakeFiles/micco_cli.dir/micco_cli.cpp.o.d"
  "micco"
  "micco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
