# Empty dependencies file for bench_overall.
# This may be replaced when dependencies are built.
