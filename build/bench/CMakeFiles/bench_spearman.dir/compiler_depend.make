# Empty compiler generated dependencies file for bench_spearman.
# This may be replaced when dependencies are built.
