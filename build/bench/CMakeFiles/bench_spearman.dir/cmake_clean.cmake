file(REMOVE_RECURSE
  "CMakeFiles/bench_spearman.dir/bench_spearman.cpp.o"
  "CMakeFiles/bench_spearman.dir/bench_spearman.cpp.o.d"
  "bench_spearman"
  "bench_spearman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spearman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
