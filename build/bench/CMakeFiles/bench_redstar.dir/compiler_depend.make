# Empty compiler generated dependencies file for bench_redstar.
# This may be replaced when dependencies are built.
