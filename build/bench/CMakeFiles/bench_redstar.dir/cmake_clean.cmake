file(REMOVE_RECURSE
  "CMakeFiles/bench_redstar.dir/bench_redstar.cpp.o"
  "CMakeFiles/bench_redstar.dir/bench_redstar.cpp.o.d"
  "bench_redstar"
  "bench_redstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
