
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_reuse_bounds.cpp" "bench/CMakeFiles/bench_reuse_bounds.dir/bench_reuse_bounds.cpp.o" "gcc" "bench/CMakeFiles/bench_reuse_bounds.dir/bench_reuse_bounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/micco_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/micco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/micco_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/micco_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/micco_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/redstar/CMakeFiles/micco_redstar.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/micco_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/micco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/micco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/micco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
