# Empty dependencies file for bench_reuse_bounds.
# This may be replaced when dependencies are built.
