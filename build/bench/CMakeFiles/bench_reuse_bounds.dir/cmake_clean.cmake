file(REMOVE_RECURSE
  "CMakeFiles/bench_reuse_bounds.dir/bench_reuse_bounds.cpp.o"
  "CMakeFiles/bench_reuse_bounds.dir/bench_reuse_bounds.cpp.o.d"
  "bench_reuse_bounds"
  "bench_reuse_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reuse_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
