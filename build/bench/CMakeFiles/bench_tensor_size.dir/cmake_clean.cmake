file(REMOVE_RECURSE
  "CMakeFiles/bench_tensor_size.dir/bench_tensor_size.cpp.o"
  "CMakeFiles/bench_tensor_size.dir/bench_tensor_size.cpp.o.d"
  "bench_tensor_size"
  "bench_tensor_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tensor_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
