# Empty dependencies file for bench_tensor_size.
# This may be replaced when dependencies are built.
