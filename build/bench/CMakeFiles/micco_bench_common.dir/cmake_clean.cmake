file(REMOVE_RECURSE
  "CMakeFiles/micco_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/micco_bench_common.dir/bench_common.cpp.o.d"
  "libmicco_bench_common.a"
  "libmicco_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micco_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
