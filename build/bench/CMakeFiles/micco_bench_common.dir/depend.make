# Empty dependencies file for micco_bench_common.
# This may be replaced when dependencies are built.
