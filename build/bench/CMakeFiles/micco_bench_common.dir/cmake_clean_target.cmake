file(REMOVE_RECURSE
  "libmicco_bench_common.a"
)
