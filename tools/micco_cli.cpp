// micco — command-line front door to the framework.
//
// Subcommands:
//   generate   synthesize a workload stream and write it to a file
//   run        schedule a workload file on the simulated cluster
//   train      sweep the tuner and write a trained bounds model
//   inspect    describe a workload or model file
//   report     run with telemetry and emit the machine-readable run report
//   faults     parse and validate a fault-plan file
//   serve      run the multi-tenant scheduling daemon on a Unix socket
//   submit     send a workload file to a running daemon
//   status     query a job (or the daemon's stats) from a running daemon
//   top        live telemetry dashboard for a running daemon
//   drain      ask a running daemon to finish its backlog and exit
//
// Examples:
//   micco generate --out=w.mw --vector-size=64 --repeat=0.75 --gaussian
//   micco train --out=model.mm --samples=120 --gpus=8
//   micco run w.mw --scheduler=micco --model=model.mm --gpus=8 --trace=t.json
//   micco report w.mw --scheduler=micco --gpus=8 --decisions=d.jsonl --pretty
//   micco run w.mw --gpus=4 --fault-plan=faults.txt --retry-max=4
//   micco faults faults.txt --gpus=4
//   micco inspect w.mw
//   micco serve --socket=/tmp/micco.sock --gpus=8 --model=model.mm
//       --decisions=d.jsonl --report=serve.json --spans=spans.jsonl
//   micco submit w.mw --socket=/tmp/micco.sock --tenant=alice --wait
//   micco status 3 --socket=/tmp/micco.sock
//   micco top --socket=/tmp/micco.sock --once
//   micco report --spans=spans.jsonl        (offline trace summary)
//   micco drain --socket=/tmp/micco.sock
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "core/bounds_model.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "core/experiment.hpp"
#include "core/verify.hpp"
#include "graph/graph_stats.hpp"
#include "mem/policy.hpp"
#include "ml/serialize.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/report.hpp"
#include "parallel/parallel.hpp"
#include "obs/telemetry.hpp"
#include "sched/scheduler.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "workload/serialize.hpp"
#include "workload/synthetic.hpp"

namespace micco::cli {
namespace {

/// SIGTERM/SIGINT bridge for `micco serve`: the handler only flips this
/// flag; the server polls it and drains gracefully.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: micco "
               "<generate|run|train|inspect|report|faults|serve|submit|"
               "status|top|drain> [flags]\n"
               "  generate --out=FILE [--vectors=10 --vector-size=64 "
               "--tensor=384 --batch=32 --repeat=0.5 --gaussian --seed=N]\n"
               "  run FILE [--scheduler=groute|dmda|micco|roundrobin] "
               "[--model=FILE] [--gpus=8] [--oversub=R] [--trace=FILE]\n"
               "      [--fault-plan=FILE --retry-max=N --retry-backoff=S]\n"
               "      [--evict-policy=lru|reuse-distance|pin-until-last-use]"
               "   (unset: the byte-identical legacy LRU path)\n"
               "  train --out=FILE [--samples=120 --gpus=8 --seed=N --threads=N]\n"
               "  inspect FILE\n"
               "  report [FILE] [--scheduler=NAME] [--gpus=8] [--oversub=R] "
               "[--out=FILE] [--decisions=FILE] [--pretty]\n"
               "         [--fault-plan=FILE --retry-max=N --retry-backoff=S] "
               "[--evict-policy=NAME]\n"
               "         (no FILE: a small deterministic synthetic stream, "
               "--seed=N --vectors=N --vector-size=N)\n"
               "  report --spans=FILE [--pretty]   (summarise a span-tree "
               "trace file instead of running)\n"
               "  report --lock-graph=FILE [--pretty]   (summarise a "
               "micco_lint lock-graph export)\n"
               "  faults PLANFILE [--gpus=8]   (validate and summarise a "
               "fault plan)\n"
               "  serve --socket=PATH [--scheduler=NAME --gpus=8 "
               "--model=FILE --seed=N --threads=N]\n"
               "        [--decisions=FILE --report=FILE --spans=FILE] "
               "[--max-queue=N --max-total=N --slo-ms=N "
               "--weights=tenant:w,...]\n"
               "        [--fault-plan=FILE --retry-max=N --retry-backoff=S]\n"
               "        [--journal=FILE --journal-fsync=never|interval|always"
               " --journal-fsync-interval=N]\n"
               "        [--evict-policy=NAME --mem-arbiter=on]   "
               "(cross-tenant residency arbitration; stats/top gain a "
               "memory section)\n"
               "        (an existing --journal is replayed: finished jobs "
               "answer again, interrupted jobs re-run)\n"
               "  submit FILE --socket=PATH [--tenant=NAME --name=LABEL "
               "--wait]\n"
               "         [--idem=TOKEN --deadline-ms=N --retry-max=N "
               "--retry-backoff=S]\n"
               "         (--idem dedupes server-side; --retry-max>0 "
               "reconnects and resends under one token)\n"
               "  status [JOB_ID] --socket=PATH   (no JOB_ID: daemon stats)\n"
               "  top --socket=PATH [--interval-ms=1000 --iterations=N "
               "--once]   (live telemetry dashboard)\n"
               "  drain --socket=PATH [--shutdown]   (--shutdown cancels "
               "queued jobs)\n"
               "  global: --sched-incremental=on|off   (off: recompute-from-"
               "view scheduler hot path, escape hatch for one release; "
               "decisions are byte-identical either way)\n");
  return 2;
}

/// Loads and validates the optional --fault-plan / --retry-* flags shared by
/// `run` and `report`. Returns false (after printing a diagnostic) on any
/// malformed input; a missing --fault-plan leaves `plan` empty.
bool load_fault_flags(const CliArgs& args, const char* cmd, int num_devices,
                      std::optional<FaultPlan>* plan, RetryPolicy* retry) {
  retry->max_attempts = static_cast<int>(args.get_int("retry-max", 4));
  retry->base_backoff_s = args.get_double("retry-backoff", 1e-4);
  const std::string policy_problem = retry->validate();
  if (!policy_problem.empty()) {
    std::fprintf(stderr, "%s: invalid retry policy: %s\n", cmd,
                 policy_problem.c_str());
    return false;
  }
  const std::string path = args.get("fault-plan", "");
  if (path.empty()) return true;
  std::string error;
  *plan = load_fault_plan_file(path, &error);
  if (!plan->has_value()) {
    std::fprintf(stderr, "%s: %s\n", cmd, error.c_str());
    return false;
  }
  const std::string problem = (*plan)->validate(num_devices);
  if (!problem.empty()) {
    std::fprintf(stderr, "%s: invalid fault plan %s: %s\n", cmd, path.c_str(),
                 problem.c_str());
    return false;
  }
  return true;
}

/// Parses the optional --evict-policy flag shared by `run`, `report` and
/// `serve`. A missing flag leaves `kind` unset — the legacy LRU path, whose
/// logs and reports stay byte-identical to pre-policy builds.
bool load_evict_policy_flag(const CliArgs& args, const char* cmd,
                            std::optional<mem::EvictPolicyKind>* kind) {
  const std::string name = args.get("evict-policy", "");
  if (name.empty()) return true;
  *kind = mem::parse_evict_policy(name);
  if (!kind->has_value()) {
    std::fprintf(stderr,
                 "%s: unknown eviction policy '%s' (want lru, "
                 "reuse-distance or pin-until-last-use)\n",
                 cmd, name.c_str());
    return false;
  }
  return true;
}

/// Conservative per-task capacity floor for --oversub; zero for a workload
/// with no tasks (where oversubscription is meaningless).
std::uint64_t first_task_bytes(const WorkloadStream& stream) {
  for (const VectorWorkload& vec : stream.vectors) {
    if (!vec.tasks.empty()) return vec.tasks.front().a.bytes();
  }
  return 0;
}

/// One-line fault/recovery summary after a faulted run.
void print_fault_summary(const RunResult& result) {
  const ExecutionMetrics& m = result.metrics;
  if (!m.any_faults() && result.error.empty()) return;
  std::printf("faults: %d device(s) lost, %llu transfer fault(s), "
              "%llu task(s) re-executed, %s\n",
              result.devices_lost,
              static_cast<unsigned long long>(m.transfer_faults),
              static_cast<unsigned long long>(result.tasks_reexecuted),
              result.completed
                  ? (result.recovered ? "recovered" : "completed")
                  : "FAILED");
}

/// Scheduler-by-name shared by `run` and `report`. Returns null and prints
/// a diagnostic for unknown names.
std::unique_ptr<Scheduler> scheduler_by_name(const std::string& which) {
  if (which == "groute") return make_scheduler(SchedulerKind::kGroute);
  if (which == "dmda") return make_scheduler(SchedulerKind::kDmda);
  if (which == "roundrobin") {
    return make_scheduler(SchedulerKind::kRoundRobin);
  }
  if (which == "micco") return make_scheduler(SchedulerKind::kMiccoNaive);
  std::fprintf(stderr, "unknown scheduler '%s'\n", which.c_str());
  return nullptr;
}

int cmd_generate(const CliArgs& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  SyntheticConfig cfg;
  cfg.num_vectors = args.get_int("vectors", 10);
  cfg.vector_size = args.get_int("vector-size", 64);
  cfg.tensor_extent = args.get_int("tensor", 384);
  cfg.batch = args.get_int("batch", 32);
  cfg.repeated_rate = args.get_double("repeat", 0.5);
  cfg.distribution = args.get_bool("gaussian", false)
                         ? DataDistribution::kGaussian
                         : DataDistribution::kUniform;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const WorkloadStream stream = generate_synthetic(cfg);
  save_stream_file(stream, out);
  std::printf("wrote %zu vectors (%llu contractions, %.2f GiB footprint) to "
              "%s\n",
              stream.vectors.size(),
              static_cast<unsigned long long>(analyze_stream(stream).tasks),
              static_cast<double>(stream.total_distinct_bytes()) /
                  (1024.0 * 1024.0 * 1024.0),
              out.c_str());
  return 0;
}

int cmd_run(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "run: workload file required\n");
    return 2;
  }
  std::string error;
  const auto stream = load_stream_file(args.positional()[1], &error);
  if (!stream) {
    std::fprintf(stderr, "run: %s\n", error.c_str());
    return 1;
  }
  const std::string structural = validate_stream_structure(*stream);
  if (!structural.empty()) {
    std::fprintf(stderr, "run: invalid workload: %s\n", structural.c_str());
    return 1;
  }

  ClusterConfig cluster;
  cluster.num_devices = static_cast<int>(args.get_int("gpus", 8));
  cluster.p2p_enabled = args.get_bool("p2p", false);
  cluster.overlap_transfers = args.get_bool("async-copy", false);
  cluster.devices_per_node =
      static_cast<int>(args.get_int("devices-per-node", 0));
  const double oversub = args.get_double("oversub", 0.0);
  if (oversub > 0.0) {
    const std::uint64_t task_bytes = first_task_bytes(*stream);
    if (task_bytes == 0) {
      std::fprintf(stderr,
                   "run: --oversub needs a workload with at least one task\n");
      return 1;
    }
    cluster.device_capacity_bytes = capacity_for_oversubscription(
        *stream, cluster.num_devices, oversub, 8 * task_bytes);
  }

  std::optional<FaultPlan> plan;
  RetryPolicy retry;
  if (!load_fault_flags(args, "run", cluster.num_devices, &plan, &retry)) {
    return 1;
  }

  std::unique_ptr<Scheduler> scheduler =
      scheduler_by_name(args.get("scheduler", "micco"));
  if (!scheduler) return 2;

  // Optional pre-trained bounds model (only meaningful for MICCO). The
  // model file stores three regressors, one per bound.
  std::unique_ptr<RegressionBoundsProvider> provider;
  const std::string model_path = args.get("model", "");
  if (!model_path.empty()) {
    // A bounds model file is three concatenated per-bound regressors.
    std::ifstream in(model_path);
    if (!in.good()) {
      std::fprintf(stderr, "run: cannot open model %s\n", model_path.c_str());
      return 1;
    }
    std::vector<std::unique_ptr<ml::Regressor>> models;
    for (int b = 0; b < 3; ++b) {
      auto model = ml::load_regressor(in, &error);
      if (!model) {
        std::fprintf(stderr, "run: bad model file: %s\n", error.c_str());
        return 1;
      }
      models.push_back(std::move(model));
    }
    provider = std::make_unique<RegressionBoundsProvider>(
        ml::MultiOutputRegressor::from_models(std::move(models)), 2);
  }

  std::optional<mem::EvictPolicyKind> policy_kind;
  if (!load_evict_policy_flag(args, "run", &policy_kind)) return 2;
  std::unique_ptr<mem::EvictionPolicy> evict_policy;
  if (policy_kind.has_value()) evict_policy = mem::make_policy(*policy_kind);

  TraceRecorder trace;
  RunOptions options;
  options.bounds = provider.get();
  options.trace = args.has("trace") ? &trace : nullptr;
  options.faults = plan.has_value() ? &*plan : nullptr;
  options.retry = retry;
  options.evict_policy = evict_policy.get();

  const RunResult result = run_stream(*stream, *scheduler, cluster, options);
  const ExecutionMetrics& m = result.metrics;
  std::printf("%s: %.0f GFLOPS, makespan %.2f ms, %llu reuse hits, "
              "%llu fetches, %llu evictions, scheduling %.3f ms\n",
              result.scheduler_name.c_str(), m.gflops(), m.makespan_s * 1e3,
              static_cast<unsigned long long>(m.reused_operands),
              static_cast<unsigned long long>(m.fetched_operands),
              static_cast<unsigned long long>(m.evictions),
              result.scheduling_overhead_ms);
  if (!m.evict_policy.empty()) {
    std::printf("eviction policy %s: %llu eviction(s), %llu refetched "
                "byte(s) of evicted tensors\n",
                m.evict_policy.c_str(),
                static_cast<unsigned long long>(m.evictions),
                static_cast<unsigned long long>(m.eviction_refetch_bytes));
  }
  print_fault_summary(result);
  if (!result.completed) {
    std::fprintf(stderr, "run: %s\n", result.error.c_str());
    return 1;
  }

  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    trace.write_chrome_json_file(trace_path);
    std::printf("timeline written to %s (chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}

int cmd_train(const CliArgs& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "train: --out is required\n");
    return 2;
  }
  TunerConfig tuner;
  tuner.samples = static_cast<int>(args.get_int("samples", 120));
  tuner.num_devices = static_cast<int>(args.get_int("gpus", 8));
  tuner.batch = args.get_int("batch", 32);
  tuner.seed = static_cast<std::uint64_t>(args.get_int("seed", 2022));
  // Sweep and forest fitting both fan out over the worker pool; labels and
  // the written model are byte-identical at every thread count.
  parallel::set_threads(static_cast<int>(args.get_int("threads", 0)));
  std::printf("sweeping %d samples x 27 bound triples (%d threads)...\n",
              tuner.samples, parallel::configured_threads());
  const TuningData data = generate_tuning_data(tuner);
  const TrainedBoundsModel trained = train_bounds_model(
      data.samples, random_forest_factory(), "RandomForest", tuner.max_bound);
  std::printf("RandomForest held-out R^2 = %.2f\n", trained.report.mean_r2);

  // Persist: three concatenated per-bound regressors, refit on ALL samples
  // for deployment (the report above used the 80/20 split).
  const auto sets = build_bound_datasets(data.samples);
  std::ofstream file(out);
  if (!file.good()) {
    std::fprintf(stderr, "train: cannot open %s\n", out.c_str());
    return 1;
  }
  for (int b = 0; b < 3; ++b) {
    const auto forest_factory = random_forest_factory();
    const auto model = forest_factory();
    model->fit(sets[static_cast<std::size_t>(b)]);
    ml::save_regressor(*model, file);
  }
  std::printf("model written to %s\n", out.c_str());
  return 0;
}

int cmd_inspect(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "inspect: file required\n");
    return 2;
  }
  const std::string path = args.positional()[1];
  std::string error;
  if (const auto stream = load_stream_file(path, &error)) {
    const StreamStats stats = analyze_stream(*stream);
    std::printf("workload: %s\n", to_string(stats).c_str());
    std::printf("footprint: %.2f GiB, %llu total GFLOP\n",
                static_cast<double>(stream->total_distinct_bytes()) /
                    (1024.0 * 1024.0 * 1024.0),
                static_cast<unsigned long long>(stream->total_flops() / 1000000000ull));
    const std::string structural = validate_stream_structure(*stream);
    std::printf("structure: %s\n",
                structural.empty() ? "valid" : structural.c_str());
    return 0;
  }
  std::ifstream in(path);
  std::string model_error;
  if (const auto model = ml::load_regressor(in, &model_error)) {
    std::printf("model: %s\n", model->name().c_str());
    return 0;
  }
  std::fprintf(stderr, "inspect: %s / %s\n", error.c_str(),
               model_error.c_str());
  return 1;
}

/// `micco report --spans=FILE`: offline summary of a span-tree trace file
/// (the JSONL written by `serve --spans`), instead of running a workload.
/// Validates well-formedness — one root job span per trace, every parent id
/// resolving inside its trace, contiguous sink sequence numbers — and
/// recomputes per-tenant simulated-makespan quantiles from the root spans
/// with the same bucket bounds and interpolation the daemon's `metrics`
/// verb uses, so the offline numbers match the served ones exactly.
int cmd_report_spans(const CliArgs& args) {
  const std::string path = args.get("spans", "");
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "report: cannot open %s\n", path.c_str());
    return 1;
  }

  struct TraceInfo {
    std::set<std::uint64_t> span_ids;
    /// (span, parent) pairs for non-root spans, checked after the pass.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
    int roots = 0;
  };
  std::map<std::string, TraceInfo> traces;
  std::map<std::string, std::uint64_t> span_counts;
  std::map<std::string, obs::Histogram> tenant_sim_ms;
  std::vector<std::string> problems;
  const auto complain = [&problems](const std::string& what) {
    if (problems.size() < 8) problems.push_back(what);
  };

  std::string line;
  std::uint64_t lineno = 0;
  std::uint64_t spans = 0;
  for (; std::getline(in, line); ++lineno) {
    const std::string where = "line " + std::to_string(lineno + 1);
    std::string parse_error;
    const std::optional<obs::JsonValue> doc =
        obs::parse_json(line, &parse_error);
    if (!doc.has_value()) {
      complain(where + ": unparseable: " + parse_error);
      continue;
    }
    const obs::JsonValue* seq = doc->find("seq");
    const obs::JsonValue* trace = doc->find("trace");
    const obs::JsonValue* span = doc->find("span");
    const obs::JsonValue* parent = doc->find("parent");
    const obs::JsonValue* name = doc->find("name");
    if (seq == nullptr || trace == nullptr || span == nullptr ||
        parent == nullptr || name == nullptr || !seq->is_number() ||
        !span->is_number() || !parent->is_number() ||
        trace->kind() != obs::JsonValue::Kind::kString ||
        name->kind() != obs::JsonValue::Kind::kString) {
      complain(where + ": not a span record");
      continue;
    }
    // The sink stamps 0-based write order; a gap means lost or reordered
    // records.
    if (static_cast<std::uint64_t>(seq->as_int()) != lineno) {
      complain(where + ": sequence gap (seq " +
               std::to_string(seq->as_int()) + ")");
    }
    ++spans;
    ++span_counts[name->as_string()];
    TraceInfo& info = traces[trace->as_string()];
    const auto span_id = static_cast<std::uint64_t>(span->as_int());
    const auto parent_id = static_cast<std::uint64_t>(parent->as_int());
    if (!info.span_ids.insert(span_id).second) {
      complain(where + ": duplicate span id in trace " + trace->as_string());
    }
    if (parent_id != 0) {
      info.edges.emplace_back(span_id, parent_id);
      continue;
    }
    // Two legitimate roots: per-job spans and the one journal-replay span a
    // recovering daemon emits (DESIGN.md §8).
    if (name->as_string() != obs::names::kSpanJob &&
        name->as_string() != obs::names::kSpanJournalReplay) {
      complain(where + ": parentless span is not a root job span");
    }
    ++info.roots;
    const obs::JsonValue* tenant = doc->find("tenant");
    const obs::JsonValue* duration = doc->find("duration_ms");
    if (tenant != nullptr && duration != nullptr) {
      auto [it, inserted] = tenant_sim_ms.try_emplace(
          tenant->as_string(), obs::names::job_sim_ms_bounds());
      (void)inserted;
      it->second.observe(duration->as_double());
    }
  }

  for (const auto& [id, info] : traces) {
    if (info.roots != 1) {
      complain("trace " + id + ": " + std::to_string(info.roots) +
               " root spans (want 1)");
    }
    for (const auto& [span_id, parent_id] : info.edges) {
      if (info.span_ids.count(parent_id) == 0) {
        complain("trace " + id + ": span " + std::to_string(span_id) +
                 " has unknown parent " + std::to_string(parent_id));
        break;
      }
    }
  }

  obs::JsonValue out = obs::JsonValue::object();
  out.set("well_formed", problems.empty());
  out.set("spans", spans);
  out.set("traces", static_cast<std::uint64_t>(traces.size()));
  obs::JsonValue counts = obs::JsonValue::object();
  for (const auto& [name, count] : span_counts) counts.set(name, count);
  out.set("span_counts", std::move(counts));
  obs::JsonValue tenants = obs::JsonValue::object();
  for (const auto& [tenant, h] : tenant_sim_ms) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("count", h.count());
    entry.set("sum", h.sum());
    entry.set("mean", h.mean());
    entry.set("p50", h.quantile(0.5));
    entry.set("p90", h.quantile(0.9));
    entry.set("p99", h.quantile(0.99));
    tenants.set(tenant, std::move(entry));
  }
  out.set("tenant_job_sim_ms", std::move(tenants));
  if (!problems.empty()) {
    obs::JsonValue list = obs::JsonValue::array();
    for (const std::string& problem : problems) list.push_back(problem);
    out.set("problems", std::move(list));
  }
  const bool pretty = args.get_bool("pretty", true);
  std::printf("%s\n", pretty ? out.dump_pretty().c_str() : out.dump().c_str());
  return problems.empty() ? 0 : 1;
}

/// `micco report --lock-graph=FILE`: offline summary of the lock-order
/// graph JSON written by `micco_lint --lock-graph=FILE` — node and edge
/// counts plus the edge list, so CI logs record the concurrency surface
/// the linter certified cycle-free (DESIGN.md §10). A separate mode (not a
/// field on the run report) on purpose: run reports stay byte-stable
/// across lint-only changes.
int cmd_report_lock_graph(const CliArgs& args) {
  const std::string path = args.get("lock-graph", "");
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "report: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const std::optional<obs::JsonValue> doc =
      obs::parse_json(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "report: %s: unparseable: %s\n", path.c_str(),
                 parse_error.c_str());
    return 1;
  }
  const obs::JsonValue* nodes = doc->find("nodes");
  const obs::JsonValue* edges = doc->find("edges");
  if (nodes == nullptr || edges == nullptr ||
      nodes->kind() != obs::JsonValue::Kind::kArray ||
      edges->kind() != obs::JsonValue::Kind::kArray) {
    std::fprintf(stderr, "report: %s is not a lock-graph export\n",
                 path.c_str());
    return 1;
  }

  obs::JsonValue summary = obs::JsonValue::object();
  summary.set("schema_version", 1);
  summary.set("nodes", static_cast<std::int64_t>(nodes->items().size()));
  summary.set("edges", static_cast<std::int64_t>(edges->items().size()));
  obs::JsonValue order = obs::JsonValue::array();
  for (const obs::JsonValue& edge : edges->items()) {
    const obs::JsonValue* from = edge.find("from");
    const obs::JsonValue* to = edge.find("to");
    if (from == nullptr || to == nullptr) continue;
    order.push_back(obs::JsonValue(from->as_string() + " -> " +
                                   to->as_string()));
  }
  summary.set("lock_order", std::move(order));

  const bool pretty = args.get_bool("pretty", false);
  std::printf("%s\n",
              (pretty ? summary.dump_pretty() : summary.dump()).c_str());
  return 0;
}

int cmd_report(const CliArgs& args) {
  // --spans / --lock-graph select the offline summary modes: no workload
  // is run.
  if (args.has("spans")) return cmd_report_spans(args);
  if (args.has("lock-graph")) return cmd_report_lock_graph(args);

  // Workload: a file when given, otherwise a small deterministic synthetic
  // stream so the telemetry path can be exercised with no setup.
  std::optional<WorkloadStream> stream;
  if (args.positional().size() >= 2) {
    std::string error;
    stream = load_stream_file(args.positional()[1], &error);
    if (!stream) {
      std::fprintf(stderr, "report: %s\n", error.c_str());
      return 1;
    }
  } else {
    SyntheticConfig cfg;
    cfg.num_vectors = args.get_int("vectors", 4);
    cfg.vector_size = args.get_int("vector-size", 48);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    stream = generate_synthetic(cfg);
  }

  ClusterConfig cluster;
  cluster.num_devices = static_cast<int>(args.get_int("gpus", 8));
  const double oversub = args.get_double("oversub", 0.0);
  if (oversub > 0.0) {
    const std::uint64_t task_bytes = first_task_bytes(*stream);
    if (task_bytes == 0) {
      std::fprintf(
          stderr,
          "report: --oversub needs a workload with at least one task\n");
      return 1;
    }
    cluster.device_capacity_bytes = capacity_for_oversubscription(
        *stream, cluster.num_devices, oversub, 8 * task_bytes);
  }

  std::optional<FaultPlan> plan;
  RetryPolicy retry;
  if (!load_fault_flags(args, "report", cluster.num_devices, &plan, &retry)) {
    return 1;
  }

  std::unique_ptr<Scheduler> scheduler =
      scheduler_by_name(args.get("scheduler", "micco"));
  if (!scheduler) return 2;

  // The decision log streams to its JSONL file during the run, batched
  // behind the buffered sink (fault records flush through immediately); the
  // report is assembled from the registry afterwards.
  obs::Telemetry telemetry;
  std::ofstream decisions_file;
  std::unique_ptr<obs::BufferedJsonlEventSink> sink;
  const std::string decisions_path = args.get("decisions", "");
  if (!decisions_path.empty()) {
    decisions_file.open(decisions_path);
    if (!decisions_file.good()) {
      std::fprintf(stderr, "report: cannot open %s\n",
                   decisions_path.c_str());
      return 1;
    }
    sink = std::make_unique<obs::BufferedJsonlEventSink>(decisions_file);
    telemetry.sink = sink.get();
  }

  // Fail on an unwritable --out before spending the run (write_report_file
  // aborts on I/O errors; a bad flag deserves a diagnostic, not an abort).
  const std::string out = args.get("out", "");
  if (!out.empty() && !std::ofstream(out).good()) {
    std::fprintf(stderr, "report: cannot open %s\n", out.c_str());
    return 1;
  }

  std::optional<mem::EvictPolicyKind> policy_kind;
  if (!load_evict_policy_flag(args, "report", &policy_kind)) return 2;
  std::unique_ptr<mem::EvictionPolicy> evict_policy;
  if (policy_kind.has_value()) evict_policy = mem::make_policy(*policy_kind);

  RunOptions options;
  options.telemetry = &telemetry;
  options.faults = plan.has_value() ? &*plan : nullptr;
  options.retry = retry;
  options.evict_policy = evict_policy.get();
  const RunResult result = run_stream(*stream, *scheduler, cluster, options);

  const obs::JsonValue report = make_run_report(result, telemetry);
  const std::string complaint = obs::validate_report(report);
  if (!complaint.empty()) {
    std::fprintf(stderr, "report: internal error: %s\n", complaint.c_str());
    return 1;
  }

  const bool pretty = args.get_bool("pretty", out.empty());
  const std::string text = pretty ? report.dump_pretty() : report.dump();
  if (out.empty()) {
    std::printf("%s\n", text.c_str());
  } else {
    obs::write_report_file(report, out);
    std::fprintf(stderr, "report written to %s\n", out.c_str());
  }
  if (!decisions_path.empty()) {
    std::fprintf(stderr, "decision log written to %s\n",
                 decisions_path.c_str());
  }
  // The report (with its "error" field) is still emitted for a failed run;
  // the exit code tells scripts the stream did not complete.
  if (!result.completed) {
    std::fprintf(stderr, "report: %s\n", result.error.c_str());
    return 1;
  }
  return 0;
}

int cmd_faults(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "faults: plan file required\n");
    return 2;
  }
  const std::string path = args.positional()[1];
  std::string error;
  const std::optional<FaultPlan> plan = load_fault_plan_file(path, &error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "faults: %s\n", error.c_str());
    return 1;
  }
  const int gpus = static_cast<int>(args.get_int("gpus", 8));
  const std::string problem = plan->validate(gpus);
  if (!problem.empty()) {
    std::fprintf(stderr, "faults: invalid for %d device(s): %s\n", gpus,
                 problem.c_str());
    return 1;
  }
  std::printf("%s", plan->summary().c_str());
  std::printf("valid for %d device(s)\n", gpus);
  return 0;
}

/// SchedulerKind-by-name for `serve` (which defers construction to the
/// server so every job gets a fresh instance).
std::optional<SchedulerKind> scheduler_kind_by_name(const std::string& which) {
  if (which == "groute") return SchedulerKind::kGroute;
  if (which == "dmda") return SchedulerKind::kDmda;
  if (which == "roundrobin") return SchedulerKind::kRoundRobin;
  if (which == "micco") return SchedulerKind::kMiccoNaive;
  std::fprintf(stderr, "unknown scheduler '%s'\n", which.c_str());
  return std::nullopt;
}

/// Parses --weights=tenant:w,tenant:w into the admission config.
bool parse_weights(const std::string& spec,
                   std::map<std::string, int>* weights) {
  std::stringstream list(spec);
  std::string entry;
  while (std::getline(list, entry, ',')) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    const int weight = std::atoi(entry.c_str() + colon + 1);
    if (weight <= 0) return false;
    (*weights)[entry.substr(0, colon)] = weight;
  }
  return true;
}

int cmd_serve(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "serve: --socket is required\n");
    return 2;
  }
  service::ServerConfig cfg;
  cfg.socket_path = socket;
  const auto kind = scheduler_kind_by_name(args.get("scheduler", "micco"));
  if (!kind.has_value()) return 2;
  cfg.scheduler = *kind;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  cfg.model_path = args.get("model", "");
  cfg.cluster.num_devices = static_cast<int>(args.get_int("gpus", 8));
  cfg.cluster.p2p_enabled = args.get_bool("p2p", false);
  cfg.cluster.overlap_transfers = args.get_bool("async-copy", false);

  std::optional<FaultPlan> plan;
  RetryPolicy retry;
  if (!load_fault_flags(args, "serve", cfg.cluster.num_devices, &plan,
                        &retry)) {
    return 1;
  }
  cfg.faults = plan.has_value() ? &*plan : nullptr;
  cfg.retry = retry;

  cfg.admission.max_queue_per_tenant =
      static_cast<std::size_t>(args.get_int("max-queue", 64));
  cfg.admission.max_queued_total =
      static_cast<std::size_t>(args.get_int("max-total", 256));
  const std::string weights = args.get("weights", "");
  if (!weights.empty() &&
      !parse_weights(weights, &cfg.admission.tenant_weights)) {
    std::fprintf(stderr,
                 "serve: --weights wants tenant:w,tenant:w with w > 0\n");
    return 2;
  }
  cfg.admission.slo_ms = args.get_double("slo-ms", 0.0);
  if (!load_evict_policy_flag(args, "serve", &cfg.evict_policy)) return 2;
  cfg.mem_arbiter = args.get_bool("mem-arbiter", false);
  cfg.decisions_path = args.get("decisions", "");
  cfg.report_path = args.get("report", "");
  cfg.spans_path = args.get("spans", "");

  cfg.journal.path = args.get("journal", "");
  const std::string fsync_name = args.get("journal-fsync", "always");
  const auto fsync_policy = service::parse_fsync_policy(fsync_name);
  if (!fsync_policy.has_value()) {
    std::fprintf(stderr,
                 "serve: --journal-fsync wants never|interval|always, got "
                 "'%s'\n",
                 fsync_name.c_str());
    return 2;
  }
  cfg.journal.fsync = *fsync_policy;
  cfg.journal.fsync_interval =
      static_cast<std::uint64_t>(args.get_int("journal-fsync-interval", 16));
  // Chaos-harness hook (tools/chaos_smoke.sh): SIGKILL after the Nth
  // durable record.
  cfg.journal.crash_after_records =
      static_cast<std::uint64_t>(args.get_int("journal-crash-after", 0));

  // --threads=1 (the default) is the deterministic serial configuration:
  // one thread alternates between socket I/O and job dispatch.
  parallel::set_threads(static_cast<int>(args.get_int("threads", 1)));
  cfg.io_lanes = parallel::configured_threads() - 1;

  cfg.stop_flag = &g_stop_requested;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  service::Server server(std::move(cfg));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving on %s (scheduler=%s, gpus=%d, threads=%d)\n",
              socket.c_str(), args.get("scheduler", "micco").c_str(),
              static_cast<int>(args.get_int("gpus", 8)),
              parallel::configured_threads());
  const int rc = server.serve();
  std::printf("session: %s\n", server.jobs().stats().dump().c_str());
  const std::string report_path = args.get("report", "");
  if (!report_path.empty() && rc == 0) {
    std::fprintf(stderr, "session report written to %s\n",
                 report_path.c_str());
  }
  const std::string spans_path = args.get("spans", "");
  if (!spans_path.empty() && rc == 0) {
    std::fprintf(stderr, "span trace written to %s\n", spans_path.c_str());
  }
  return rc;
}

/// DONE → 0, FAILED/CANCELLED → 1. Used by submit --wait.
int print_terminal_state(const obs::JsonValue& reply) {
  const std::string& state = reply.at("state").as_string();
  if (const obs::JsonValue* result = reply.find("result")) {
    const obs::JsonValue* makespan = result->find("makespan_s");
    const obs::JsonValue* gflops = result->find("gflops");
    if (makespan != nullptr && gflops != nullptr) {
      std::printf("%s: makespan %.2f ms, %.0f GFLOPS\n", state.c_str(),
                  makespan->as_double() * 1e3, gflops->as_double());
      return state == "DONE" ? 0 : 1;
    }
  }
  std::printf("%s\n", state.c_str());
  return state == "DONE" ? 0 : 1;
}

int cmd_submit(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "submit: workload file required\n");
    return 2;
  }
  const std::string socket = args.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "submit: --socket is required\n");
    return 2;
  }
  const std::string path = args.positional()[1];
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "submit: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  service::Client client;
  client.set_deadline_ms(args.get_double("deadline-ms", 0.0));
  const std::string tenant = args.get("tenant", "default");
  const std::string name = args.get("name", path);
  const std::string idem = args.get("idem", "");
  const auto retry_max = static_cast<int>(args.get_int("retry-max", 0));
  std::string error;

  RetryPolicy policy;
  policy.max_attempts = retry_max > 0 ? retry_max : 1;
  policy.base_backoff_s = args.get_double("retry-backoff", 0.05);
  policy.max_backoff_s = std::max(policy.base_backoff_s, 1.0);
  if (retry_max > 0
          ? !client.connect_retry(socket, policy, &error)
          : !client.connect(socket, &error)) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    return 1;
  }
  // --retry-max selects the crash-safe loop (reconnect + resend under one
  // idempotency token); --idem alone sends once but dedupes server-side.
  std::optional<obs::JsonValue> reply;
  if (retry_max > 0) {
    reply =
        client.submit_retrying(tenant, name, text.str(), idem, policy, &error);
  } else if (!idem.empty()) {
    reply = client.submit_idempotent(tenant, name, text.str(), idem, &error);
  } else {
    reply = client.submit(tenant, name, text.str(), &error);
  }
  if (!reply.has_value()) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    return 1;
  }
  if (!reply->at("ok").as_bool()) {
    std::fprintf(stderr, "submit: rejected [%s]: %s\n",
                 reply->at("code").as_string().c_str(),
                 reply->at("message").as_string().c_str());
    return 1;
  }
  const auto job_id = static_cast<std::uint64_t>(reply->at("job_id").as_int());
  const obs::JsonValue* duplicate = reply->find("duplicate");
  if (duplicate != nullptr && duplicate->as_bool()) {
    std::printf("job %llu duplicate (idempotency token already submitted)\n",
                static_cast<unsigned long long>(job_id));
  } else {
    std::printf("job %llu queued (tenant %s)\n",
                static_cast<unsigned long long>(job_id),
                reply->at("tenant").as_string().c_str());
  }
  if (!args.get_bool("wait", false)) return 0;

  for (;;) {
    const auto status = client.status(job_id, &error);
    if (!status.has_value()) {
      std::fprintf(stderr, "submit: %s\n", error.c_str());
      return 1;
    }
    if (!status->at("ok").as_bool()) {
      std::fprintf(stderr, "submit: [%s] %s\n",
                   status->at("code").as_string().c_str(),
                   status->at("message").as_string().c_str());
      return 1;
    }
    const std::string& state = status->at("state").as_string();
    if (state != "QUEUED" && state != "RUNNING") {
      return print_terminal_state(*status);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int cmd_status(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "status: --socket is required\n");
    return 2;
  }
  service::Client client;
  std::string error;
  if (!client.connect(socket, &error)) {
    std::fprintf(stderr, "status: %s\n", error.c_str());
    return 1;
  }
  std::optional<obs::JsonValue> reply;
  if (args.positional().size() >= 2) {
    const std::uint64_t job_id =
        std::strtoull(args.positional()[1].c_str(), nullptr, 10);
    reply = client.status(job_id, &error);
  } else {
    reply = client.stats(&error);
  }
  if (!reply.has_value()) {
    std::fprintf(stderr, "status: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", reply->dump_pretty().c_str());
  return reply->at("ok").as_bool() ? 0 : 1;
}

/// Renders one `metrics` reply as a dashboard frame: session header, job
/// counters, per-tenant admission/SLO table, histogram quantile table. The
/// metric names come straight from the reply, so the dashboard needs no
/// knowledge of the telemetry vocabulary.
void render_top(const obs::JsonValue& reply) {
  std::printf("micco top — uptime %.1f s", reply.at("uptime_s").as_double());
  if (const obs::JsonValue* started = reply.find("started_at")) {
    std::printf(", started %s", started->as_string().c_str());
  }
  std::printf("\n");

  const obs::JsonValue& stats = reply.at("stats");
  const auto stat = [&stats](const char* key) {
    return static_cast<long long>(stats.at(key).as_int());
  };
  std::printf("jobs: queued %lld running %lld | submitted %lld "
              "admitted %lld rejected %lld | completed %lld failed %lld "
              "cancelled %lld\n",
              stat("queued"), stat("running"), stat("submitted"),
              stat("admitted"), stat("rejected"), stat("completed"),
              stat("failed"), stat("cancelled"));

  const obs::JsonValue& tenants = stats.at("tenants");
  if (!tenants.members().empty()) {
    std::printf("\n%-16s %6s %6s %9s %9s %7s %9s\n", "tenant", "queued",
                "weight", "admitted", "rejected", "slo_ok", "slo_miss");
    for (const auto& [name, t] : tenants.members()) {
      std::printf("%-16s %6lld %6lld %9lld %9lld %7lld %9lld\n", name.c_str(),
                  static_cast<long long>(t.at("queued").as_int()),
                  static_cast<long long>(t.at("weight").as_int()),
                  static_cast<long long>(t.at("admitted").as_int()),
                  static_cast<long long>(t.at("rejected").as_int()),
                  static_cast<long long>(t.at("slo_ok").as_int()),
                  static_cast<long long>(t.at("slo_miss").as_int()));
    }
  }

  // Scheduler hot-path counters (PR: incremental scheduler core). The cache
  // pair is registered only on the incremental path, so the line doubles as
  // a visual check of which mode the daemon runs in.
  if (const obs::JsonValue* counters = reply.at("metrics").find("counters")) {
    const auto counter = [counters](const char* key) -> long long {
      const obs::JsonValue* v = counters->find(key);
      return v == nullptr ? 0 : static_cast<long long>(v->as_int());
    };
    if (counters->find(obs::names::kClusterEpochBumps) != nullptr) {
      std::printf("sched: pattern-cache hits %lld misses %lld | "
                  "residency epoch bumps %lld\n",
                  counter(obs::names::kSchedPatternCacheHits),
                  counter(obs::names::kSchedPatternCacheMisses),
                  counter(obs::names::kClusterEpochBumps));
    }
  }

  // Cross-tenant memory arbitration (mem/arbiter.hpp): present only when
  // the daemon runs with --mem-arbiter=on.
  if (const obs::JsonValue* memory = reply.find("memory")) {
    std::printf("memory: %lld admission(s), %.1f MiB pre-evicted\n",
                static_cast<long long>(memory->at("admissions").as_int()),
                static_cast<double>(memory->at("preevicted_bytes").as_int()) /
                    (1024.0 * 1024.0));
    const obs::JsonValue& mem_tenants = memory->at("tenants");
    if (!mem_tenants.members().empty()) {
      std::printf("%-16s %14s %8s\n", "tenant", "resident_bytes", "epoch");
      for (const auto& [name, t] : mem_tenants.members()) {
        std::printf("%-16s %14lld %8lld\n", name.c_str(),
                    static_cast<long long>(t.at("resident_bytes").as_int()),
                    static_cast<long long>(t.at("epoch").as_int()));
      }
    }
  }

  const obs::JsonValue& histograms = reply.at("metrics").at("histograms");
  if (!histograms.members().empty()) {
    std::printf("\n%-38s %9s %11s %11s %11s %11s\n", "histogram", "count",
                "mean", "p50", "p90", "p99");
    for (const auto& [name, h] : histograms.members()) {
      std::printf("%-38s %9lld %11.3f %11.3f %11.3f %11.3f\n", name.c_str(),
                  static_cast<long long>(h.at("count").as_int()),
                  h.at("mean").as_double(), h.at("p50").as_double(),
                  h.at("p90").as_double(), h.at("p99").as_double());
    }
  }
}

int cmd_top(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "top: --socket is required\n");
    return 2;
  }
  const bool once = args.get_bool("once", false);
  const long long iterations =
      once ? 1 : static_cast<long long>(args.get_int("iterations", 0));
  const long long interval_ms =
      static_cast<long long>(args.get_int("interval-ms", 1000));
  service::Client client;
  std::string error;
  if (!client.connect(socket, &error)) {
    std::fprintf(stderr, "top: %s\n", error.c_str());
    return 1;
  }
  // --iterations=0 (the default without --once) refreshes until the daemon
  // goes away or the user interrupts.
  for (long long i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const auto reply = client.metrics(&error);
    if (!reply.has_value()) {
      std::fprintf(stderr, "top: %s\n", error.c_str());
      return 1;
    }
    if (!reply->at("ok").as_bool()) {
      std::fprintf(stderr, "top: [%s] %s\n",
                   reply->at("code").as_string().c_str(),
                   reply->at("message").as_string().c_str());
      return 1;
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home between frames
    render_top(*reply);
    std::fflush(stdout);
  }
  return 0;
}

int cmd_drain(const CliArgs& args) {
  const std::string socket = args.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "drain: --socket is required\n");
    return 2;
  }
  service::Client client;
  std::string error;
  if (!client.connect(socket, &error)) {
    std::fprintf(stderr, "drain: %s\n", error.c_str());
    return 1;
  }
  const auto reply = args.get_bool("shutdown", false) ? client.shutdown(&error)
                                                      : client.drain(&error);
  if (!reply.has_value()) {
    std::fprintf(stderr, "drain: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", reply->dump().c_str());
  return reply->at("ok").as_bool() ? 0 : 1;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const CliArgs args(argc, argv);
  const std::string command = argv[1];
  // Global escape hatch, kept for one release (DESIGN.md §9): off reverts
  // every scheduler to the recompute-from-view hot path. Decision logs are
  // byte-identical either way; only the pattern-cache counters disappear
  // from reports. Set here, before any scheduler exists — never mid-run.
  set_sched_incremental(args.get_bool("sched-incremental", true));
  if (command == "generate") return cmd_generate(args);
  if (command == "run") return cmd_run(args);
  if (command == "train") return cmd_train(args);
  if (command == "inspect") return cmd_inspect(args);
  if (command == "report") return cmd_report(args);
  if (command == "faults") return cmd_faults(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "submit") return cmd_submit(args);
  if (command == "status") return cmd_status(args);
  if (command == "top") return cmd_top(args);
  if (command == "drain") return cmd_drain(args);
  return usage();
}

}  // namespace
}  // namespace micco::cli

int main(int argc, char** argv) { return micco::cli::dispatch(argc, argv); }
