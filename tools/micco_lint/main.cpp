// CLI driver for micco-lint (see lint.hpp for the rule catalog).
//
// Usage:
//   micco_lint [--format=text|json] [--lock-graph=FILE] <path>...
//   micco_lint [--format=text|json] --suppressions <path>...
//   micco_lint [--format=text|json] --list-rules
//
// Exit codes: 0 clean, 1 I/O error, 2 usage error, otherwise the lowest
// exit code among the rules that fired (rule codes start at 10).
// --suppressions exits 22 (stale-suppression) when any allow() directive
// is stale, 0 otherwise.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "micco_lint/lint.hpp"
#include "obs/json.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: micco_lint [--format=text|json] [--lock-graph=FILE] "
         "<path>...\n"
         "       micco_lint [--format=text|json] --suppressions <path>...\n"
         "       micco_lint [--format=text|json] --list-rules\n"
         "\n"
         "Lints C++ sources (.hpp/.h/.cpp/.cc; directories recurse) against\n"
         "the MICCO determinism & concurrency rules. Suppress a finding\n"
         "with '// micco-lint: allow(<rule>) <reason>' on the offending\n"
         "line or the line directly above.\n"
         "\n"
         "  --lock-graph=FILE  write the extracted lock-order graph to FILE\n"
         "                     (Graphviz when FILE ends in .dot, else JSON)\n"
         "  --suppressions     report every allow() site with rule, reason\n"
         "                     and last-touched date; exit 22 when any\n"
         "                     directive no longer suppresses anything\n";
}

/// Commit date (YYYY-MM-DD, UTC) of the line an allow() directive sits on,
/// via `git blame`; "-" when the file is untracked or git is unavailable.
/// An absolute date keeps the report reproducible — the tool never reads
/// the wall clock.
std::string blame_date(const std::string& file, int line) {
  const std::string cmd = "git blame --porcelain -L " + std::to_string(line) +
                          "," + std::to_string(line) + " -- \"" + file +
                          "\" 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "-";
  std::string out;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  pclose(pipe);
  const std::string key = "author-time ";
  const std::size_t pos = out.find(key);
  if (pos == std::string::npos) return "-";
  const std::time_t epoch = static_cast<std::time_t>(
      std::atoll(out.c_str() + pos + key.size()));
  std::tm tm{};
  if (gmtime_r(&epoch, &tm) == nullptr) return "-";
  char date[16];
  if (std::strftime(date, sizeof date, "%Y-%m-%d", &tm) == 0) return "-";
  return date;
}

std::string join_rules(const std::vector<std::string>& rules) {
  std::string out;
  for (const std::string& rule : rules) {
    if (!out.empty()) out += ",";
    out += rule;
  }
  return out;
}

int run_suppressions_report(const micco::lint::LintResult& result,
                            const std::string& format) {
  std::size_t stale = 0;
  for (const micco::lint::SuppressionReportEntry& entry : result.suppressions) {
    if (entry.stale) ++stale;
  }
  if (format == "json") {
    micco::obs::JsonValue out = micco::obs::JsonValue::object();
    out.set("schema_version", 1);
    out.set("total", static_cast<std::int64_t>(result.suppressions.size()));
    out.set("stale", static_cast<std::int64_t>(stale));
    micco::obs::JsonValue sites = micco::obs::JsonValue::array();
    for (const micco::lint::SuppressionReportEntry& entry :
         result.suppressions) {
      micco::obs::JsonValue site = micco::obs::JsonValue::object();
      site.set("file", entry.file);
      site.set("line", entry.line);
      site.set("rules", join_rules(entry.rules));
      site.set("reason", entry.reason);
      site.set("since", blame_date(entry.file, entry.line));
      site.set("stale", entry.stale);
      sites.push_back(std::move(site));
    }
    out.set("sites", std::move(sites));
    std::cout << out.dump() << "\n";
  } else {
    for (const micco::lint::SuppressionReportEntry& entry :
         result.suppressions) {
      std::cout << entry.file << ':' << entry.line << ": allow("
                << join_rules(entry.rules) << ") since "
                << blame_date(entry.file, entry.line) << ' '
                << (entry.stale ? "STALE" : "live") << " -- " << entry.reason
                << '\n';
    }
    std::cout << "micco_lint: " << result.suppressions.size()
              << " suppression(s), " << stale << " stale\n";
  }
  return stale > 0 ? 22 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string lock_graph_file;
  bool list_rules = false;
  bool suppressions = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--suppressions") {
      suppressions = true;
    } else if (arg.rfind("--lock-graph=", 0) == 0) {
      lock_graph_file = arg.substr(13);
      if (lock_graph_file.empty()) {
        std::cerr << "micco_lint: --lock-graph needs a file name\n";
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "micco_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "micco_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    if (format == "json") {
      micco::obs::JsonValue rules = micco::obs::JsonValue::array();
      for (const micco::lint::RuleInfo& rule : micco::lint::rule_catalog()) {
        micco::obs::JsonValue entry = micco::obs::JsonValue::object();
        entry.set("name", rule.name);
        entry.set("exit_code", rule.exit_code);
        entry.set("description", rule.description);
        rules.push_back(std::move(entry));
      }
      std::cout << rules.dump() << "\n";
    } else {
      for (const micco::lint::RuleInfo& rule : micco::lint::rule_catalog()) {
        std::cout << rule.name << " (exit " << rule.exit_code << ")\n    "
                  << rule.description << "\n";
      }
    }
    return 0;
  }

  if (paths.empty()) {
    std::cerr << "micco_lint: no paths given\n";
    print_usage(std::cerr);
    return 2;
  }

  const micco::lint::LintResult result = micco::lint::lint_paths(paths);

  if (!lock_graph_file.empty()) {
    std::ofstream out(lock_graph_file, std::ios::binary);
    if (!out) {
      std::cerr << "micco_lint: cannot write '" << lock_graph_file << "'\n";
      return 1;
    }
    const bool dot = lock_graph_file.size() >= 4 &&
                     lock_graph_file.compare(lock_graph_file.size() - 4, 4,
                                             ".dot") == 0;
    out << (dot ? micco::lint::lock_graph_dot(result.lock_graph)
                : micco::lint::lock_graph_json(result.lock_graph));
  }

  if (suppressions) return run_suppressions_report(result, format);

  std::cout << (format == "json" ? micco::lint::format_json(result)
                                 : micco::lint::format_text(result));
  return result.exit_code;
}
