// CLI driver for micco-lint (see lint.hpp for the rule catalog).
//
// Usage:
//   micco_lint [--format=text|json] <path>...
//   micco_lint [--format=text|json] --list-rules
//
// Exit codes: 0 clean, 1 I/O error, 2 usage error, otherwise the lowest
// exit code among the rules that fired (rule codes start at 10).
#include <iostream>
#include <string>
#include <vector>

#include "micco_lint/lint.hpp"
#include "obs/json.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: micco_lint [--format=text|json] <path>...\n"
         "       micco_lint [--format=text|json] --list-rules\n"
         "\n"
         "Lints C++ sources (.hpp/.h/.cpp/.cc; directories recurse) against\n"
         "the MICCO determinism & concurrency rules. Suppress a finding\n"
         "with '// micco-lint: allow(<rule>) <reason>' on the offending\n"
         "line or the line directly above.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool list_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "micco_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "micco_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    if (format == "json") {
      micco::obs::JsonValue rules = micco::obs::JsonValue::array();
      for (const micco::lint::RuleInfo& rule : micco::lint::rule_catalog()) {
        micco::obs::JsonValue entry = micco::obs::JsonValue::object();
        entry.set("name", rule.name);
        entry.set("exit_code", rule.exit_code);
        entry.set("description", rule.description);
        rules.push_back(std::move(entry));
      }
      std::cout << rules.dump() << "\n";
    } else {
      for (const micco::lint::RuleInfo& rule : micco::lint::rule_catalog()) {
        std::cout << rule.name << " (exit " << rule.exit_code << ")\n    "
                  << rule.description << "\n";
      }
    }
    return 0;
  }

  if (paths.empty()) {
    std::cerr << "micco_lint: no paths given\n";
    print_usage(std::cerr);
    return 2;
  }

  const micco::lint::LintResult result = micco::lint::lint_paths(paths);
  std::cout << (format == "json" ? micco::lint::format_json(result)
                                 : micco::lint::format_text(result));
  return result.exit_code;
}
