// Scope model + concurrency analysis for micco-lint (see scope.hpp).
//
// Two passes. build_tu_model() is a single linear scan over the stripped
// text that maintains a brace-scope stack, classifies each `{` by the
// statement head in front of it (namespace / class / function / plain
// block / brace initializer / lambda), tracks MutexLock RAII guard scopes
// and records call sites together with the guards open around them.
// analyze_concurrency() then merges the per-TU declaration tables, resolves
// mutex expressions to lock-graph nodes and callees to function summaries,
// propagates acquires/may-block facts to a fixed point, and extracts the
// lock graph, its cycles, and the blocking/WAL findings.
#include "micco_lint/scope.hpp"

#include <algorithm>
#include <cctype>
#include <functional>

namespace micco::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_identifier(const std::string& s) {
  return !s.empty() && is_ident_start(s[0]);
}

/// Keywords that look like callees when followed by '(' but never are.
bool is_callee_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "noexcept",
      "catch",    "throw",    "new",      "delete",   "static_assert",
      "defined",  "assert",   "co_await", "co_return",
      // Type keywords: `std::function<void(...)>` heads would otherwise
      // look like a call to / definition of `void`.
      "void",     "bool",     "char",     "int",      "long",
      "short",    "float",    "double",   "unsigned", "signed",
      "auto"};
  return kKeywords.count(s) > 0;
}

std::string lowercase(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Lowercased, underscore-free stem used by the receiver-name heuristic.
std::string name_stem(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '_') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// True when a receiver variable plausibly holds an instance of `cls`
/// (e.g. `loop` / Loop, `journal_` / JournalWriter). Used only when the
/// declared-type tables have no answer, and only accepted when unique.
bool name_similar(const std::string& var, const std::string& cls) {
  const std::string a = name_stem(var);
  const std::string b = name_stem(cls);
  if (a.size() < 3 || b.size() < 3) return false;
  return a.find(b) != std::string::npos || b.find(a) != std::string::npos;
}

enum class ScopeKind { kGlobal, kNamespace, kClass, kFunction, kBlock, kInit, kLambda };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;          ///< class name for kClass
  int prev_fn = -1;          ///< current function index to restore on pop
  std::size_t head_mark = 0; ///< head_ length at open, restored for kInit
};

struct Tok {
  std::string text;
  int line = 0;
};

/// POSIX calls that block the calling thread. Matched only when written
/// with explicit global qualification (`::write(...)`), the tree-wide
/// convention for raw system calls.
bool is_global_blocking(const std::string& name) {
  static const std::set<std::string> kCalls = {
      "write", "read",   "fsync", "fdatasync", "poll",  "select",
      "recv",  "send",   "accept", "connect",  "flock", "sleep",
      "usleep", "nanosleep"};
  return kCalls.count(name) > 0;
}

/// Sleep-family calls that block regardless of qualification.
bool is_sleep_call(const std::string& name) {
  return name == "sleep_for" || name == "sleep_until" || name == "usleep" ||
         name == "nanosleep";
}

class ModelBuilder {
 public:
  ModelBuilder(const std::string& path, const std::string& text)
      : text_(text) {
    model_.path = path;
  }

  TuModel build() {
    scan();
    return std::move(model_);
  }

 private:
  struct ActiveGuard {
    std::string expr;
    std::size_t level = 0;  ///< scope-stack depth the guard lives in
  };

  const std::string& text_;
  TuModel model_;
  std::vector<Tok> head_;
  std::vector<Scope> scopes_;
  std::vector<ActiveGuard> guards_;
  int current_fn_ = -1;
  int paren_depth_ = 0;

  // -- scope-stack helpers --------------------------------------------------

  ScopeKind innermost_kind() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind != ScopeKind::kInit) return it->kind;
    }
    return ScopeKind::kGlobal;
  }

  /// Nearest enclosing class name, if any.
  std::string enclosing_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) return it->name;
    }
    return std::string();
  }

  /// Scope level just inside the innermost lambda, or 0 when none is open.
  /// Guards living at shallower levels are masked: the closure body runs
  /// later, when nothing proves those locks are still held.
  std::size_t mask_floor() const {
    for (std::size_t i = scopes_.size(); i > 0; --i) {
      if (scopes_[i - 1].kind == ScopeKind::kLambda) return i;
    }
    return 0;
  }

  std::vector<std::string> active_guard_exprs() const {
    const std::size_t floor = mask_floor();
    std::vector<std::string> out;
    if (floor == 0 && current_fn_ >= 0) {
      const FunctionModel& fn = model_.functions[static_cast<std::size_t>(current_fn_)];
      out.insert(out.end(), fn.requires_exprs.begin(), fn.requires_exprs.end());
    }
    for (const ActiveGuard& g : guards_) {
      if (g.level > floor) out.push_back(g.expr);
    }
    return out;
  }

  // -- statement-head utilities ---------------------------------------------

  bool head_contains(const std::string& tok) const {
    for (const Tok& t : head_) {
      if (t.text == tok) return true;
    }
    return false;
  }

  /// Captures the normalized expression between the '(' at `open` and its
  /// matching ')': whitespace dropped, leading &/* and this-> stripped.
  std::string capture_paren_expr(std::size_t open) const {
    std::string out;
    int depth = 0;
    for (std::size_t i = open; i < text_.size(); ++i) {
      const char c = text_[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == ')') {
        --depth;
        if (depth == 0) break;
      }
      if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
    }
    while (!out.empty() && (out[0] == '&' || out[0] == '*')) out.erase(0, 1);
    if (out.rfind("this->", 0) == 0) out.erase(0, 6);
    return out;
  }

  // -- '{' classification ---------------------------------------------------

  /// Class name from a `class`/`struct` head: the last identifier before the
  /// base-clause ':' (or the '{'), skipping attribute-macro parens and
  /// `final`.
  std::string class_name_from_head() const {
    std::string name;
    int depth = 0;
    bool seen_key = false;
    for (const Tok& t : head_) {
      if (t.text == "(" || t.text == "<") { ++depth; continue; }
      if (t.text == ")" || t.text == ">") { --depth; continue; }
      if (depth != 0) continue;
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        seen_key = true;
        continue;
      }
      if (!seen_key) continue;
      if (t.text == ":") break;  // base clause
      if (t.text == "final") continue;
      if (is_identifier(t.text)) name = t.text;
    }
    return name;
  }

  /// Collects the MICCO_REQUIRES operands from a function head.
  std::vector<std::string> requires_from_head() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i + 1 < head_.size(); ++i) {
      if (head_[i].text != "MICCO_REQUIRES" || head_[i + 1].text != "(") continue;
      int depth = 0;
      std::string expr;
      for (std::size_t j = i + 1; j < head_.size(); ++j) {
        const std::string& t = head_[j].text;
        if (t == "(") {
          ++depth;
          if (depth == 1) continue;
        } else if (t == ")") {
          --depth;
          if (depth == 0) break;
        } else if (t == "," && depth == 1) {
          if (!expr.empty()) out.push_back(expr);
          expr.clear();
          continue;
        }
        expr += t;
      }
      if (!expr.empty()) out.push_back(expr);
    }
    return out;
  }

  /// Extracts function name (and qualifying class, when written `X::y`) from
  /// the statement head of a function definition. Returns false when the
  /// head does not look like one.
  bool function_from_head(std::string* cls, std::string* name, int* line) const {
    // Find the parameter-list '(' — the first '(' preceded by an identifier
    // (or by `operator` + symbol tokens) that is not a macro or keyword.
    for (std::size_t p = 1; p < head_.size(); ++p) {
      if (head_[p].text != "(") continue;
      std::size_t n = p - 1;
      // operator foo: name is `operator` plus the symbol tokens before '('.
      std::size_t op = n;
      while (op > 0 && !is_identifier(head_[op].text)) --op;
      if (head_[op].text == "operator") {
        std::string sym;
        for (std::size_t j = op + 1; j < p; ++j) sym += head_[j].text;
        *name = "operator" + sym;
        *line = head_[op].line;
        n = op;
      } else {
        if (!is_identifier(head_[n].text)) continue;
        if (is_callee_keyword(head_[n].text)) continue;
        if (head_[n].text.rfind("MICCO_", 0) == 0) continue;
        *name = head_[n].text;
        *line = head_[n].line;
      }
      // `~X()` destructor.
      if (n >= 1 && head_[n - 1].text == "~") {
        *name = "~" + *name;
        --n;
      }
      // `Cls::name` qualification (take the nearest qualifier).
      if (n >= 2 && head_[n - 1].text == "::" && is_identifier(head_[n - 2].text)) {
        *cls = head_[n - 2].text;
      }
      return true;
    }
    return false;
  }

  // -- declaration harvesting -----------------------------------------------

  /// Member/global declaration harvest at ';' — fills member_types,
  /// mutex_owners and mutex_globals. `cls` is empty at namespace scope.
  void harvest_declaration(const std::string& cls) {
    // Work on a cleaned copy: drop access-label prefixes, annotation macros
    // with their parens, storage/cv keywords, and everything from '='.
    std::vector<std::string> toks;
    for (std::size_t i = 0; i < head_.size(); ++i) {
      const std::string& t = head_[i].text;
      if (t == "=") break;
      if ((t == "public" || t == "private" || t == "protected" ||
           t == "case" || t == "default") &&
          i + 1 < head_.size() && head_[i + 1].text == ":") {
        toks.clear();
        ++i;
        continue;
      }
      if (t.rfind("MICCO_", 0) == 0 || t == "alignas") {
        if (i + 1 < head_.size() && head_[i + 1].text == "(") {
          int depth = 0;
          for (++i; i < head_.size(); ++i) {
            if (head_[i].text == "(") ++depth;
            if (head_[i].text == ")" && --depth == 0) break;
          }
        }
        continue;
      }
      if (t == "mutable" || t == "static" || t == "const" || t == "constexpr" ||
          t == "inline" || t == "explicit" || t == "volatile" || t == "extern") {
        continue;
      }
      if (t == "using" || t == "typedef" || t == "friend" || t == "enum" ||
          t == "return" || t == "namespace" || t == "template") {
        return;  // not a data declaration
      }
      toks.push_back(t);
    }
    if (toks.size() < 2) return;
    // Function declarations/prototypes carry a '(' — skip them.
    for (const std::string& t : toks) {
      if (t == "(") return;
    }
    // Declarator name: last identifier; declared type: last identifier
    // before it (the template argument for wrapper types, e.g. the Pool in
    // unique_ptr<Pool>, which is exactly the type member calls go through).
    std::size_t name_idx = toks.size();
    for (std::size_t i = toks.size(); i > 0; --i) {
      if (is_identifier(toks[i - 1])) { name_idx = i - 1; break; }
    }
    if (name_idx == toks.size() || name_idx == 0) return;
    std::string type;
    for (std::size_t i = name_idx; i > 0; --i) {
      if (is_identifier(toks[i - 1])) { type = toks[i - 1]; break; }
    }
    if (type.empty()) return;
    const std::string& name = toks[name_idx];
    model_.member_types[cls][name] = type;
    if (type == "Mutex") {
      if (cls.empty()) {
        model_.mutex_globals.insert(name);
      } else {
        model_.mutex_owners[name].insert(cls);
      }
    }
  }

  // -- call-site / guard recording ------------------------------------------

  /// Invoked when '(' follows the current head; `open` is its text offset.
  void handle_open_paren(std::size_t open, int line) {
    if (head_.empty()) return;
    const Tok& prev = head_.back();
    if (!is_identifier(prev.text) || is_callee_keyword(prev.text)) return;

    // `MutexLock <var> (` — an RAII guard acquisition. The two-identifier
    // shape excludes both the MutexLock constructor declaration and uses of
    // the type name alone.
    if (head_.size() >= 2 && head_[head_.size() - 2].text == "MutexLock" &&
        current_fn_ >= 0) {
      GuardSite site;
      site.line = line;
      site.expr = capture_paren_expr(open);
      site.held = active_guard_exprs();
      site.deferred = mask_floor() > 0;
      if (!site.expr.empty()) {
        model_.functions[static_cast<std::size_t>(current_fn_)].guards.push_back(site);
        guards_.push_back({site.expr, scopes_.size()});
      }
      return;
    }

    if (current_fn_ < 0) return;  // class bodies, initializers, prototypes

    CallSite call;
    call.line = line;
    call.callee = prev.text;
    call.guards = active_guard_exprs();
    call.deferred = mask_floor() > 0;

    if (head_.size() >= 2) {
      const std::string& before = head_[head_.size() - 2].text;
      if (before == "." || before == "->") {
        call.has_receiver = true;
        if (head_.size() >= 3 && is_identifier(head_[head_.size() - 3].text)) {
          // Simple receiver only: `a.b.c(...)` keeps receiver empty. A ')'
          // before the receiver is NOT a chain — `if (cond) x.y(...)` puts
          // the condition's ')' right before a genuinely simple receiver.
          const bool chained =
              head_.size() >= 4 && (head_[head_.size() - 4].text == "." ||
                                    head_[head_.size() - 4].text == "->" ||
                                    head_[head_.size() - 4].text == "::" ||
                                    head_[head_.size() - 4].text == "]");
          if (!chained) call.receiver = head_[head_.size() - 3].text;
          if (call.receiver == "this") {
            call.receiver.clear();
            call.has_receiver = false;
          }
        }
      } else if (before == "::") {
        // Walk the qualifier chain back to its root.
        std::size_t i = head_.size() - 2;
        std::string root;
        while (i >= 1 && head_[i].text == "::" && is_identifier(head_[i - 1].text)) {
          root = head_[i - 1].text;
          if (i < 2) { i = 0; break; }
          i -= 2;
        }
        if (root.empty()) {
          call.global_scope = true;  // written `::callee(...)`
        } else if (root == "std") {
          call.std_qualified = true;
        } else {
          call.receiver = root;  // `Cls::callee(...)` — resolved as class-qualified
        }
      }
    }
    model_.functions[static_cast<std::size_t>(current_fn_)].calls.push_back(call);
  }

  void open_brace() {
    const ScopeKind outer = innermost_kind();
    Scope scope;
    scope.prev_fn = current_fn_;
    scope.head_mark = head_.size();

    const std::string prev = head_.empty() ? std::string() : head_.back().text;
    const bool in_function = current_fn_ >= 0;

    if (head_contains("namespace")) {
      scope.kind = ScopeKind::kNamespace;
    } else if (!in_function && (head_contains("class") || head_contains("struct") ||
                                head_contains("union")) &&
               !head_contains("(")) {
      scope.kind = ScopeKind::kClass;
      scope.name = class_name_from_head();
    } else if (head_contains("enum")) {
      scope.kind = ScopeKind::kInit;  // enumerator list: keep out of the model
    } else if (prev == "=" || prev == "," || prev == "(" || prev == "{") {
      scope.kind = ScopeKind::kInit;
    } else if ((prev == "]" || prev == ")") && head_contains("[")) {
      scope.kind = ScopeKind::kLambda;
    } else if (in_function) {
      scope.kind = (is_identifier(prev) && prev != "else" && prev != "do" &&
                    prev != "try")
                       ? ScopeKind::kInit  // `T x{...}` braced init
                       : ScopeKind::kBlock;
    } else if ((outer == ScopeKind::kGlobal || outer == ScopeKind::kNamespace ||
                outer == ScopeKind::kClass) &&
               head_contains("(")) {
      std::string cls;
      std::string name;
      int line = 0;
      if (function_from_head(&cls, &name, &line)) {
        scope.kind = ScopeKind::kFunction;
        FunctionModel fn;
        fn.cls = cls.empty() ? enclosing_class() : cls;
        fn.name = name;
        fn.line = line;
        fn.requires_exprs = requires_from_head();
        current_fn_ = static_cast<int>(model_.functions.size());
        model_.functions.push_back(std::move(fn));
      } else {
        scope.kind = ScopeKind::kBlock;
      }
    } else if (is_identifier(prev)) {
      // `Mutex mutex_{...};` — a brace-initialized member/global: keep the
      // statement head so the ';' harvest still sees the declaration.
      scope.kind = ScopeKind::kInit;
    } else {
      scope.kind = ScopeKind::kBlock;
    }

    scopes_.push_back(scope);
    if (scope.kind != ScopeKind::kInit) head_.clear();
  }

  void close_brace() {
    if (scopes_.empty()) return;
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    current_fn_ = scope.prev_fn;
    while (!guards_.empty() && guards_.back().level > scopes_.size()) {
      guards_.pop_back();
    }
    if (scope.kind != ScopeKind::kInit) {
      head_.clear();
    } else if (head_.size() > scope.head_mark) {
      // Drop the initializer's own tokens so `T x{"name", kRank};` still
      // harvests `T x` at the ';' — without this, the last identifier
      // inside the braces masquerades as the declared name.
      head_.resize(scope.head_mark);
    }
  }

  // -- main scan ------------------------------------------------------------

  void scan() {
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text_.size();
    while (i < n) {
      const char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t j = i + 1;
        while (j < n && is_ident_char(text_[j])) ++j;
        head_.push_back({text_.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i + 1;
        while (j < n && (is_ident_char(text_[j]) || text_[j] == '.')) ++j;
        head_.push_back({text_.substr(i, j - i), line});
        i = j;
        continue;
      }
      switch (c) {
        case '{':
          open_brace();
          ++i;
          continue;
        case '}':
          close_brace();
          ++i;
          continue;
        case ';':
          if (paren_depth_ == 0) {
            const ScopeKind kind = innermost_kind();
            if (kind == ScopeKind::kClass) {
              harvest_declaration(scopes_is_class_name());
            } else if (kind == ScopeKind::kNamespace || kind == ScopeKind::kGlobal) {
              harvest_declaration(std::string());
            }
            head_.clear();
          }
          ++i;
          continue;
        case '(':
          handle_open_paren(i, line);
          head_.push_back({"(", line});
          ++paren_depth_;
          ++i;
          continue;
        case ')':
          head_.push_back({")", line});
          if (paren_depth_ > 0) --paren_depth_;
          ++i;
          continue;
        case ':':
          if (i + 1 < n && text_[i + 1] == ':') {
            head_.push_back({"::", line});
            i += 2;
          } else {
            head_.push_back({":", line});
            ++i;
          }
          continue;
        case '-':
          if (i + 1 < n && text_[i + 1] == '>') {
            head_.push_back({"->", line});
            i += 2;
          } else {
            head_.push_back({"-", line});
            ++i;
          }
          continue;
        default:
          head_.push_back({std::string(1, c), line});
          ++i;
          continue;
      }
    }
  }

  /// Name of the innermost class scope (innermost_kind() == kClass).
  std::string scopes_is_class_name() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::kInit) continue;
      if (it->kind == ScopeKind::kClass) return it->name;
      break;
    }
    return std::string();
  }
};

// -- cross-TU resolution ------------------------------------------------------

struct Summary {
  std::set<std::string> acquires;   ///< lock nodes (transitive, post fixed point)
  std::string block_reason;         ///< "" when the function never blocks
  std::set<std::string> callees;    ///< resolved summary keys
};

struct Tables {
  std::map<std::string, std::set<std::string>> mutex_owners;
  std::set<std::string> mutex_globals;
  std::map<std::string, std::map<std::string, std::string>> member_types;

  /// Declared type of `receiver` seen from class `cls` (members first, then
  /// namespace-scope variables). Empty when unknown.
  std::string receiver_type(const std::string& cls, const std::string& receiver) const {
    auto by_class = member_types.find(cls);
    if (by_class != member_types.end()) {
      auto m = by_class->second.find(receiver);
      if (m != by_class->second.end()) return m->second;
    }
    auto globals = member_types.find(std::string());
    if (globals != member_types.end()) {
      auto m = globals->second.find(receiver);
      if (m != globals->second.end()) return m->second;
    }
    return std::string();
  }

  /// Resolves a mutex expression to its lock-graph node.
  std::string lock_node(const std::string& expr, const std::string& cls) const {
    std::string receiver;
    std::string member = expr;
    const std::size_t arrow = expr.rfind("->");
    const std::size_t dot = expr.rfind('.');
    std::size_t split = std::string::npos;
    std::size_t skip = 0;
    if (arrow != std::string::npos && (dot == std::string::npos || arrow > dot)) {
      split = arrow;
      skip = 2;
    } else if (dot != std::string::npos) {
      split = dot;
      skip = 1;
    }
    if (split != std::string::npos) {
      receiver = expr.substr(0, split);
      member = expr.substr(split + skip);
    }
    auto owners = mutex_owners.find(member);
    const std::set<std::string>* owner_set =
        owners == mutex_owners.end() ? nullptr : &owners->second;
    if (!receiver.empty() && receiver != "this") {
      const std::string type = receiver_type(cls, receiver);
      if (!type.empty() && owner_set != nullptr && owner_set->count(type) > 0) {
        return type + "::" + member;
      }
      if (owner_set != nullptr && owner_set->size() == 1) {
        return *owner_set->begin() + "::" + member;
      }
      if (owner_set != nullptr && !cls.empty() && owner_set->count(cls) > 0) {
        return cls + "::" + member;
      }
      return member;
    }
    if (mutex_globals.count(member) > 0) return member;
    if (owner_set != nullptr) {
      if (!cls.empty() && owner_set->count(cls) > 0) return cls + "::" + member;
      if (owner_set->size() == 1) return *owner_set->begin() + "::" + member;
    }
    return member;
  }
};

/// Resolved key of the function a call lands in, or "" to drop the call.
std::string resolve_callee(const CallSite& call, const std::string& cls,
                           const Tables& tables,
                           const std::map<std::string, Summary>& summaries) {
  if (call.std_qualified || call.global_scope) return std::string();
  const auto have = [&summaries](const std::string& key) {
    return summaries.count(key) > 0;
  };
  if (call.has_receiver) {
    if (call.receiver.empty()) return std::string();  // complex receiver
    const std::string type = tables.receiver_type(cls, call.receiver);
    if (!type.empty()) {
      const std::string key = type + "::" + call.callee;
      return have(key) ? key : std::string();
    }
    // Untyped receiver (locals, parameters): accept a unique name-similar
    // class that defines the method; anything ambiguous is dropped.
    std::string match;
    for (const auto& entry : summaries) {
      const std::size_t sep = entry.first.rfind("::");
      if (sep == std::string::npos) continue;
      if (entry.first.substr(sep + 2) != call.callee) continue;
      const std::string owner = entry.first.substr(0, sep);
      if (!name_similar(call.receiver, owner)) continue;
      if (!match.empty()) return std::string();  // ambiguous
      match = entry.first;
    }
    return match;
  }
  if (!call.receiver.empty()) {
    // Class-qualified `Cls::callee(...)`.
    const std::string key = call.receiver + "::" + call.callee;
    if (have(key)) return key;
    return have(call.callee) ? call.callee : std::string();
  }
  // Unqualified: a method of the enclosing class wins over a free function.
  if (!cls.empty()) {
    const std::string key = cls + "::" + call.callee;
    if (have(key)) return key;
  }
  return have(call.callee) ? call.callee : std::string();
}

/// Human-readable description of a directly blocking call, or "".
std::string direct_block_reason(const CallSite& call) {
  if (call.global_scope && is_global_blocking(call.callee)) {
    return "::" + call.callee;
  }
  if (is_sleep_call(call.callee)) return call.callee;
  if (!call.has_receiver && !call.std_qualified && call.receiver.empty() &&
      call.callee == "sleep") {
    return "sleep";
  }
  return std::string();
}

}  // namespace

TuModel build_tu_model(const std::string& path, const std::string& stripped) {
  return ModelBuilder(path, stripped).build();
}

ConcurrencyReport analyze_concurrency(const std::vector<TuModel>& tus) {
  ConcurrencyReport report;

  Tables tables;
  for (const TuModel& tu : tus) {
    for (const auto& owner : tu.mutex_owners) {
      tables.mutex_owners[owner.first].insert(owner.second.begin(),
                                              owner.second.end());
    }
    tables.mutex_globals.insert(tu.mutex_globals.begin(), tu.mutex_globals.end());
    for (const auto& by_class : tu.member_types) {
      for (const auto& member : by_class.second) {
        tables.member_types[by_class.first].insert(member);
      }
    }
  }

  // Function summaries: direct acquisitions and direct blocking calls.
  // Lambda-deferred sites are excluded — the closure runs on some other
  // thread's schedule, so its effects are not the enclosing function's.
  std::map<std::string, Summary> summaries;
  for (const TuModel& tu : tus) {
    for (const FunctionModel& fn : tu.functions) {
      Summary& s = summaries[fn.key()];
      for (const GuardSite& g : fn.guards) {
        if (g.deferred) continue;
        s.acquires.insert(tables.lock_node(g.expr, fn.cls));
      }
      for (const CallSite& call : fn.calls) {
        if (call.deferred) continue;
        const std::string reason = direct_block_reason(call);
        if (!reason.empty() && s.block_reason.empty()) s.block_reason = reason;
      }
    }
  }
  for (const TuModel& tu : tus) {
    for (const FunctionModel& fn : tu.functions) {
      Summary& s = summaries[fn.key()];
      for (const CallSite& call : fn.calls) {
        if (call.deferred) continue;
        const std::string key = resolve_callee(call, fn.cls, tables, summaries);
        if (!key.empty() && key != fn.key()) s.callees.insert(key);
      }
    }
  }
  // Fixed point: fold callee facts into callers until nothing changes.
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& entry : summaries) {
      Summary& s = entry.second;
      for (const std::string& callee : s.callees) {
        const Summary& c = summaries.at(callee);
        for (const std::string& node : c.acquires) {
          if (s.acquires.insert(node).second) changed = true;
        }
        if (s.block_reason.empty() && !c.block_reason.empty()) {
          s.block_reason = callee + " -> " + c.block_reason;
          changed = true;
        }
      }
    }
  }

  // Lock edges, blocking sites, WAL sites.
  std::vector<LockEdge> edges;
  for (const TuModel& tu : tus) {
    for (const FunctionModel& fn : tu.functions) {
      for (const GuardSite& g : fn.guards) {
        const std::string to = tables.lock_node(g.expr, fn.cls);
        for (const std::string& held : g.held) {
          const std::string from = tables.lock_node(held, fn.cls);
          if (from != to) edges.push_back({from, to, tu.path, g.line});
        }
      }
      int last_append = -1;
      for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
        const CallSite& call = fn.calls[ci];
        if (call.callee == "append") {
          const std::string type =
              tables.receiver_type(fn.cls, call.receiver);
          if (type == "JournalWriter" ||
              lowercase(call.receiver).find("journal") != std::string::npos) {
            last_append = static_cast<int>(ci);
          }
        }
        if (call.callee == "release_job" && last_append < 0) {
          report.wal.push_back({tu.path, call.line, fn.key()});
        }
        if (call.guards.empty()) continue;
        const std::string key = resolve_callee(call, fn.cls, tables, summaries);
        std::vector<std::string> held_nodes;
        held_nodes.reserve(call.guards.size());
        for (const std::string& g : call.guards) {
          held_nodes.push_back(tables.lock_node(g, fn.cls));
        }
        if (!key.empty()) {
          const Summary& callee = summaries.at(key);
          for (const std::string& held : held_nodes) {
            for (const std::string& acquired : callee.acquires) {
              if (held != acquired) {
                edges.push_back({held, acquired, tu.path, call.line});
              }
            }
          }
        }
        std::string what = direct_block_reason(call);
        if (what.empty() && !key.empty()) {
          const std::string& reason = summaries.at(key).block_reason;
          if (!reason.empty()) what = key + " -> " + reason;
        }
        if (!what.empty()) {
          report.blocking.push_back({tu.path, call.line, held_nodes.back(), what});
        }
      }
    }
  }

  // Dedup edges on (from, to), keeping the first witness in path order.
  std::sort(edges.begin(), edges.end(), [](const LockEdge& a, const LockEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const LockEdge& a, const LockEdge& b) {
                            return a.from == b.from && a.to == b.to;
                          }),
              edges.end());
  report.graph.edges = edges;

  std::set<std::string> nodes;
  for (const LockEdge& e : edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  report.graph.nodes.assign(nodes.begin(), nodes.end());

  // Cycle detection: DFS in sorted-node order; every back edge closes a
  // cycle whose path is canonicalized (rotated to its smallest node) and
  // deduplicated, so the output is stable across runs.
  std::map<std::string, std::vector<std::string>> adj;
  for (const LockEdge& e : edges) adj[e.from].push_back(e.to);
  std::set<std::string> canonical_seen;
  std::map<std::string, int> color;  // 0 = new, 1 = on stack, 2 = done
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto it = adj.find(node);
        if (it != adj.end()) {
          for (const std::string& next : it->second) {
            if (color[next] == 1) {
              const auto begin =
                  std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(begin, stack.end());
              const auto min_it =
                  std::min_element(cycle.begin(), cycle.end());
              std::rotate(cycle.begin(), min_it, cycle.end());
              cycle.push_back(cycle.front());
              std::string joined;
              for (const std::string& n : cycle) joined += n + "|";
              if (canonical_seen.insert(joined).second) {
                CycleWitness witness;
                witness.path = cycle;
                for (const LockEdge& e : edges) {
                  if (e.from == cycle[0] && e.to == cycle[1]) {
                    witness.file = e.file;
                    witness.line = e.line;
                    break;
                  }
                }
                report.cycles.push_back(witness);
              }
            } else if (color[next] == 0) {
              dfs(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const std::string& node : report.graph.nodes) {
    if (color[node] == 0) dfs(node);
  }

  const auto by_site = [](const auto& a, const auto& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  };
  std::sort(report.blocking.begin(), report.blocking.end(), by_site);
  std::sort(report.wal.begin(), report.wal.end(), by_site);
  std::sort(report.cycles.begin(), report.cycles.end(),
            [](const CycleWitness& a, const CycleWitness& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.path < b.path;
            });
  return report;
}

std::string lock_graph_dot(const LockGraph& graph) {
  std::string out = "digraph lock_order {\n";
  for (const std::string& node : graph.nodes) {
    out += "  \"" + node + "\";\n";
  }
  for (const LockEdge& e : graph.edges) {
    out += "  \"" + e.from + "\" -> \"" + e.to + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace micco::lint
