#include "micco_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace micco::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog

const char* const kDetRng = "det-rng";
const char* const kDetUnorderedIter = "det-unordered-iter";
const char* const kNoRawNew = "no-raw-new";
const char* const kNoStdout = "no-stdout";
const char* const kPragmaOnce = "pragma-once";
const char* const kThreadAnnotation = "thread-annotation";
const char* const kBadSuppression = "bad-suppression";
const char* const kMetricNameLiteral = "metric-name-literal";
const char* const kRawDurabilityIo = "raw-durability-io";
const char* const kLockOrderCycle = "lock-order-cycle";
const char* const kBlockingUnderLock = "blocking-under-lock";
const char* const kWalReleaseBeforeDurable = "wal-release-before-durable";
const char* const kStaleSuppression = "stale-suppression";
const char* const kIoError = "io-error";

/// Headers whose include closure marks a TU as output-affecting: anything
/// reaching them can feed bytes into decision logs, run reports or model
/// files, so iteration order must be deterministic there.
const char* const kOrderedSinkHeaders[] = {
    "obs/events.hpp",
    "obs/report.hpp",
    "ml/serialize.hpp",
};

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {kDetRng, 10,
       "bans std::random_device, rand()/srand(), wall-clock seeding "
       "(time(), system_clock) and std:: engines outside src/common/rng.*; "
       "all randomness flows through explicitly seeded micco::Pcg32"},
      {kDetUnorderedIter, 11,
       "bans range-for / .begin() iteration over std::unordered_map/set in "
       "any TU whose include closure reaches obs/events.hpp, obs/report.hpp "
       "or ml/serialize.hpp; output-affecting paths iterate in sorted order"},
      {kNoRawNew, 12,
       "bans raw new/delete in src/ (use RAII: make_unique, containers); "
       "tools/ and bench/ are exempt"},
      {kNoStdout, 13,
       "bans printf/std::cout in src/ (return strings or use "
       "common/log.hpp); tools/ and bench/ own the process's stdout"},
      {kPragmaOnce, 14, "every header (.hpp/.h) must contain #pragma once"},
      {kThreadAnnotation, 15,
       "bans raw std::mutex/condition_variable/lock types in src/ (use the "
       "annotated micco::Mutex/MutexLock/CondVar from common/mutex.hpp) and "
       "requires every std::atomic to carry a MICCO_* annotation"},
      {kBadSuppression, 16,
       "a '// micco-lint: allow(<rule>) <reason>' comment must name a known "
       "rule and give a non-empty reason"},
      {kMetricNameLiteral, 17,
       "bans dotted telemetry-name string literals (a reserved root -- "
       "sched, cluster or service -- followed by a dot) outside "
       "obs/names.hpp; instrumentation sites reference the constants "
       "declared there so a renamed metric cannot fork into two series"},
      {kRawDurabilityIo, 18,
       "bans global-scope ::write/::fsync/::fdatasync calls in src/ outside "
       "service/journal.cpp; durable bytes go through the journal's "
       "EINTR-retrying write_all/fsync wrappers so crash-safety guarantees "
       "have one auditable home (tools/ and bench/ are exempt)"},
      {kLockOrderCycle, 19,
       "the tree-wide lock-order graph extracted from nested MutexLock "
       "scopes and MICCO_REQUIRES contexts must be acyclic; a cycle is a "
       "deadlock some schedule can reach, reported with its witness path"},
      {kBlockingUnderLock, 20,
       "bans POSIX blocking calls (::write/::fsync/::poll/::recv/::send/"
       "::connect, sleep family) — made directly or through a resolved "
       "callee — while a MutexLock scope or MICCO_REQUIRES context is open; "
       "shrink the critical section or allow() with a reason"},
      {kWalReleaseBeforeDurable, 21,
       "release_job (the WAL held-admission gate, DESIGN.md §8) must be "
       "preceded by a durable journal append in the same function body; "
       "dispatching before the admission record is on disk reopens the "
       "crash window recovery closed"},
      {kStaleSuppression, 22,
       "an inline allow() directive whose rules no longer fire on the "
       "covered lines; stale suppressions hide future regressions and are "
       "rejected by --suppressions"},
  };
  return kCatalog;
}

bool known_rule(const std::string& name) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule.name == name) return true;
  }
  return false;
}

namespace {

int rule_exit_code(const std::string& name) {
  if (name == kIoError) return 1;
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule.name == name) return rule.exit_code;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Path classification

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) parts.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) parts.push_back(part);
  return parts;
}

/// tools/ and bench/ are process-owning leaf code: they may print and may
/// use manual memory if they must. Everything else gets library rules.
bool is_tool_scope(const std::string& path) {
  for (const std::string& part : split_path(path)) {
    if (part == "tools" || part == "bench") return true;
  }
  return false;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Suffix match on a path boundary: "obs/events.hpp" matches
/// "src/obs/events.hpp" but not "blobs/events.hpp".
bool path_suffix_match(const std::string& path, const std::string& suffix) {
  if (path == suffix) return true;
  return ends_with(path, "/" + suffix);
}

bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

bool is_rng_home(const std::string& path) {
  return path_suffix_match(path, "common/rng.hpp") ||
         path_suffix_match(path, "common/rng.cpp");
}

// ---------------------------------------------------------------------------
// Comment/string stripping and suppression parsing

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Parses one comment body. Returns true when the comment is (or claims to
/// be) a suppression; fills `rules` / `reason` / `error`.
bool parse_suppression(const std::string& comment,
                       std::vector<std::string>* rules, std::string* reason,
                       std::string* error) {
  const std::string body = trim(comment);
  const std::string kTag = "micco-lint:";
  if (body.compare(0, kTag.size(), kTag) != 0) return false;
  std::string rest = trim(body.substr(kTag.size()));
  const std::string kAllow = "allow(";
  if (rest.compare(0, kAllow.size(), kAllow) != 0) {
    *error = "expected 'allow(<rule>) <reason>' after 'micco-lint:'";
    return true;
  }
  const std::size_t close = rest.find(')', kAllow.size());
  if (close == std::string::npos) {
    *error = "unterminated allow(...) in suppression";
    return true;
  }
  const std::string rule_list = rest.substr(kAllow.size(),
                                            close - kAllow.size());
  std::stringstream list(rule_list);
  std::string rule;
  while (std::getline(list, rule, ',')) {
    rule = trim(rule);
    if (rule.empty() || !known_rule(rule)) {
      *error = "unknown rule '" + rule + "' in suppression";
      return true;
    }
    rules->push_back(rule);
  }
  if (rules->empty()) {
    *error = "empty rule list in suppression";
    return true;
  }
  *reason = trim(rest.substr(close + 1));
  if (reason->empty()) {
    *error = "suppression needs a reason after allow(" + rule_list + ")";
    return true;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileSet

void FileSet::add_file(const std::string& path, const std::string& content) {
  if (files_.count(path) > 0) return;
  FileInfo info;
  info.content = content;

  // Quoted includes come from the raw text: the stripper blanks string
  // literals, and an include operand is lexically a string.
  {
    std::stringstream lines(content);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string t = trim(line);
      if (t.compare(0, 1, "#") != 0) continue;
      const std::string directive = trim(t.substr(1));
      if (directive.compare(0, 7, "include") != 0) continue;
      const std::size_t open = directive.find('"');
      if (open == std::string::npos) continue;
      const std::size_t close = directive.find('"', open + 1);
      if (close == std::string::npos) continue;
      info.raw_includes.push_back(
          directive.substr(open + 1, close - open - 1));
    }
  }

  // One pass producing `stripped` (same length, newlines preserved) while
  // harvesting line comments for suppression directives.
  std::string& out = info.stripped;
  out.assign(content.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  int line = 1;
  int comment_line = 0;
  std::string comment_text;
  std::string raw_delim;
  int literal_line = 0;
  std::string literal_text;
  const auto finish_comment = [&]() {
    std::vector<std::string> rules;
    std::string reason;
    std::string error;
    if (parse_suppression(comment_text, &rules, &reason, &error)) {
      if (!error.empty()) {
        info.suppression_findings.push_back(
            Finding{path, comment_line, kBadSuppression, error});
      } else {
        for (const std::string& rule : rules) {
          info.allowed[comment_line].insert(rule);
        }
        info.suppressions.push_back(
            SuppressionSite{comment_line, rules, reason});
      }
    }
    comment_text.clear();
  };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        finish_comment();
        state = State::kCode;
      }
      out[i] = '\n';
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          ++i;  // swallow second '/'
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) == 0 &&
                               content[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          state = State::kRawString;
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < content.size() && content[j] != '(') {
            raw_delim += content[j];
            ++j;
          }
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          state = State::kString;
          literal_line = line;
          literal_text.clear();
        } else if (c == '\'') {
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        comment_text += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < content.size()) {
            if (content[i] == '\n') ++line;
            literal_text += content[i];
          }
        } else if (c == '"') {
          state = State::kCode;
          info.string_literals.emplace_back(literal_line, literal_text);
        } else {
          literal_text += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (content.compare(i, closer.size(), closer) == 0) {
          i += closer.size() - 1;
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (state == State::kLineComment) finish_comment();

  // Identifiers declared as unordered containers (used by the iteration
  // rule). A name found here marks iteration over it as hash-ordered in
  // every TU that can see the declaration.
  {
    const std::string& text = info.stripped;
    const auto skip_ws = [&](std::size_t p) {
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p])) != 0) {
        ++p;
      }
      return p;
    };
    for (std::size_t i = 0; i + 12 < text.size(); ++i) {
      if (text.compare(i, 14, "unordered_map<") != 0 &&
          text.compare(i, 14, "unordered_set<") != 0) {
        continue;
      }
      if (i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) !=
                        0 ||
                    text[i - 1] == '_')) {
        continue;  // suffix of a longer identifier
      }
      std::size_t j = i + 14;  // past '<'
      int depth = 1;
      while (j < text.size() && depth > 0) {
        if (text[j] == '<') ++depth;
        if (text[j] == '>') --depth;
        ++j;
      }
      j = skip_ws(j);
      while (j < text.size() && (text[j] == '&' || text[j] == '*')) {
        j = skip_ws(j + 1);
      }
      if (j >= text.size() || text[j] == ':' || text[j] == '(') {
        continue;  // nested-type use or temporary, not a declarator
      }
      std::string name;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
              text[j] == '_')) {
        name += text[j];
        ++j;
      }
      if (!name.empty() && name != "const") info.unordered_decls.insert(name);
    }
  }

  files_.emplace(path, std::move(info));
  paths_.push_back(path);
}

const FileSet::FileInfo* FileSet::find(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

/// BFS over includes resolved inside the set. Resolution is by path-suffix
/// match, which handles relative vs. absolute invocation paths uniformly
/// (the repo's quoted includes are all src/-rooted and unique).
std::vector<const FileSet::FileInfo*> FileSet::closure(
    const std::string& path) const {
  std::vector<const FileInfo*> result;
  std::set<std::string> visited;
  std::vector<std::string> frontier{path};
  while (!frontier.empty()) {
    const std::string current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current).second) continue;
    const FileInfo* info = find(current);
    if (info == nullptr) continue;
    result.push_back(info);
    for (const std::string& inc : info->raw_includes) {
      for (const auto& [candidate, unused] : files_) {
        (void)unused;
        if (path_suffix_match(candidate, inc)) frontier.push_back(candidate);
      }
    }
  }
  return result;
}

bool FileSet::closure_includes(const std::string& path,
                               const std::string& suffix) const {
  for (const FileInfo* info : closure(path)) {
    for (const std::string& inc : info->raw_includes) {
      if (path_suffix_match(inc, suffix)) return true;
    }
  }
  return false;
}

std::set<std::string> FileSet::unordered_names(const std::string& path) const {
  std::set<std::string> names;
  for (const FileInfo* info : closure(path)) {
    names.insert(info->unordered_decls.begin(), info->unordered_decls.end());
  }
  return names;
}

bool FileSet::suppressed(const FileInfo& info, int line,
                         const std::string& rule) const {
  for (const int l : {line, line - 1}) {
    const auto it = info.allowed.find(l);
    if (it != info.allowed.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenized rule pass

namespace {

struct Token {
  std::string text;
  int line = 0;
  std::size_t begin = 0;
  std::size_t end = 0;  ///< one past the last character
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      Token tok;
      tok.line = line;
      tok.begin = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '_')) {
        tok.text += text[i];
        ++i;
      }
      tok.end = i;
      --i;
      tokens.push_back(std::move(tok));
    }
  }
  return tokens;
}

char next_nonspace(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos < text.size() ? text[pos] : '\0';
}

std::size_t prev_nonspace_pos(const std::string& text, std::size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) {
    --pos;
  }
  return pos;  // text[pos-1] is the previous non-space char (pos 0: none)
}

char prev_nonspace(const std::string& text, std::size_t pos) {
  const std::size_t p = prev_nonspace_pos(text, pos);
  return p == 0 ? '\0' : text[p - 1];
}

/// True when the token starting at `begin` is written `std::<token>`.
bool preceded_by_std(const std::string& text, std::size_t begin) {
  std::size_t p = prev_nonspace_pos(text, begin);
  if (p < 2 || text[p - 1] != ':' || text[p - 2] != ':') return false;
  p = prev_nonspace_pos(text, p - 2);
  return p >= 3 && text.compare(p - 3, 3, "std") == 0 &&
         (p < 4 || (std::isalnum(static_cast<unsigned char>(text[p - 4])) ==
                        0 &&
                    text[p - 4] != '_'));
}

/// True when the token at `begin` is written `::<token>` with the `::`
/// anchored at global scope — not `Foo::`, `std::` or `Foo<T>::`. Used by
/// the raw-durability-io rule to tell the POSIX ::write from member
/// functions named write.
bool globally_qualified(const std::string& text, std::size_t begin) {
  const std::size_t p = prev_nonspace_pos(text, begin);
  if (p < 2 || text[p - 1] != ':' || text[p - 2] != ':') return false;
  // A qualifying name sits flush against its `::` (Foo::write,
  // Foo<T>::write); whitespace before the `::` means global scope
  // (`return ::write(...)`).
  if (p == 2) return true;
  const char before = text[p - 3];
  return std::isalnum(static_cast<unsigned char>(before)) == 0 &&
         before != '_' && before != ':' && before != '>';
}

/// True when the call at `begin` is a member access (obj.time(...)), which
/// the det-rng rule must not confuse with the C library function.
bool member_access(const std::string& text, std::size_t begin) {
  const std::size_t p = prev_nonspace_pos(text, begin);
  if (p == 0) return false;
  if (text[p - 1] == '.') return true;
  return p >= 2 && text[p - 1] == '>' && text[p - 2] == '-';
}

/// The raw source line `line` (1-based) of `content`.
std::string source_line(const std::string& content, int line) {
  std::stringstream lines(content);
  std::string text;
  for (int i = 0; i < line; ++i) {
    if (!std::getline(lines, text)) return "";
  }
  return text;
}

}  // namespace

std::vector<Finding> FileSet::raw_findings(const std::string& path) const {
  const FileInfo* info = find(path);
  if (info == nullptr) return {};
  const std::string& text = info->stripped;
  const bool tool_scope = is_tool_scope(path);
  std::vector<Finding> raw;

  // pragma-once -------------------------------------------------------------
  if (is_header(path) &&
      info->content.find("#pragma once") == std::string::npos) {
    raw.push_back(Finding{path, 1, kPragmaOnce,
                          "header is missing '#pragma once'"});
  }

  // metric-name-literal -----------------------------------------------------
  // A string literal spelling a dotted telemetry name belongs in
  // obs/names.hpp, the vocabulary's single home. The reserved roots are
  // assembled from bare words at runtime so this scanner's own source never
  // contains a dotted literal and cannot trip itself.
  if (!path_suffix_match(path, "obs/names.hpp")) {
    const char* const kRootWords[] = {"sched", "cluster", "service", "mem"};
    for (const auto& [line, literal] : info->string_literals) {
      bool metric_charset = !literal.empty();
      for (const char c : literal) {
        if (std::islower(static_cast<unsigned char>(c)) == 0 &&
            std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_' &&
            c != '.') {
          metric_charset = false;
          break;
        }
      }
      if (!metric_charset) continue;
      for (const char* const word : kRootWords) {
        const std::string root = std::string(word) + '.';
        if (literal.compare(0, root.size(), root) == 0) {
          raw.push_back(Finding{
              path, line, kMetricNameLiteral,
              "dotted telemetry name literal \"" + literal +
                  "\" outside obs/names.hpp; reference a constant from "
                  "obs/names.hpp instead"});
          break;
        }
      }
    }
  }

  const std::vector<Token> tokens = tokenize(text);

  // Output-affecting TU? (det-unordered-iter scope)
  std::string sink_header;
  for (const char* const header : kOrderedSinkHeaders) {
    if (closure_includes(path, header)) {
      sink_header = header;
      break;
    }
  }
  const std::set<std::string> unordered =
      sink_header.empty() ? std::set<std::string>{} : unordered_names(path);

  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const Token& tok = tokens[t];

    // det-rng ---------------------------------------------------------------
    if (!is_rng_home(path)) {
      if (tok.text == "random_device") {
        raw.push_back(Finding{path, tok.line, kDetRng,
                              "std::random_device is nondeterministic; seed "
                              "micco::Pcg32 (common/rng.hpp) explicitly"});
      } else if ((tok.text == "rand" || tok.text == "srand") &&
                 next_nonspace(text, tok.end) == '(' &&
                 !member_access(text, tok.begin)) {
        raw.push_back(Finding{path, tok.line, kDetRng,
                              "C PRNG '" + tok.text +
                                  "' has process-global state; use "
                                  "micco::Pcg32 (common/rng.hpp)"});
      } else if (tok.text == "time" &&
                 next_nonspace(text, tok.end) == '(' &&
                 !member_access(text, tok.begin)) {
        raw.push_back(Finding{path, tok.line, kDetRng,
                              "wall-clock time() seeding breaks run "
                              "reproducibility; seeds must be explicit"});
      } else if (tok.text == "system_clock") {
        raw.push_back(Finding{path, tok.line, kDetRng,
                              "wall-clock system_clock is nondeterministic; "
                              "runs must be a pure function of their seed"});
      } else if (tok.text == "mt19937" || tok.text == "mt19937_64" ||
                 tok.text == "default_random_engine" ||
                 tok.text == "minstd_rand") {
        raw.push_back(Finding{path, tok.line, kDetRng,
                              "std:: engine '" + tok.text +
                                  "' maps through implementation-defined "
                                  "distributions; use micco::Pcg32"});
      }
    }

    // det-unordered-iter: NAME.begin() form ---------------------------------
    if (!unordered.empty() && unordered.count(tok.text) > 0 &&
        t + 1 < tokens.size() &&
        (tokens[t + 1].text == "begin" || tokens[t + 1].text == "cbegin")) {
      // Only a direct member access counts: "name.begin(" / "name->begin(".
      const std::string between =
          trim(text.substr(tok.end, tokens[t + 1].begin - tok.end));
      if ((between == "." || between == "->") &&
          next_nonspace(text, tokens[t + 1].end) == '(') {
        raw.push_back(Finding{
            path, tok.line, kDetUnorderedIter,
            "iterator over unordered container '" + tok.text +
                "' in an output-affecting TU (includes " + sink_header +
                "); iterate a sorted copy instead"});
      }
    }

    // det-unordered-iter: range-for form ------------------------------------
    if (!unordered.empty() && tok.text == "for" &&
        next_nonspace(text, tok.end) == '(') {
      std::size_t open = tok.end;
      while (text[open] != '(') ++open;
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      bool classic = false;
      for (std::size_t i = open; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '(') ++depth;
        if (c == ')') {
          --depth;
          if (depth == 0) {
            close = i;
            break;
          }
        }
        if (depth == 1 && c == ';') classic = true;
        if (depth == 1 && c == ':' && colon == std::string::npos &&
            !classic) {
          const bool double_colon =
              (i > 0 && text[i - 1] == ':') ||
              (i + 1 < text.size() && text[i + 1] == ':');
          if (!double_colon) colon = i;
        }
      }
      if (colon != std::string::npos && close != std::string::npos &&
          !classic) {
        const std::string range = text.substr(colon + 1, close - colon - 1);
        for (const Token& ident : tokenize(range)) {
          if (unordered.count(ident.text) > 0) {
            raw.push_back(Finding{
                path, tok.line, kDetUnorderedIter,
                "range-for over unordered container '" + ident.text +
                    "' in an output-affecting TU (includes " + sink_header +
                    "); iterate a sorted copy instead"});
            break;
          }
        }
      }
    }

    // no-raw-new ------------------------------------------------------------
    if (!tool_scope && tok.text == "new") {
      raw.push_back(Finding{path, tok.line, kNoRawNew,
                            "raw 'new' in src/; use std::make_unique or a "
                            "container"});
    }
    if (!tool_scope && tok.text == "delete" &&
        prev_nonspace(text, tok.begin) != '=') {
      raw.push_back(Finding{path, tok.line, kNoRawNew,
                            "raw 'delete' in src/; owning pointers must be "
                            "RAII-managed"});
    }

    // no-stdout -------------------------------------------------------------
    if (!tool_scope && (tok.text == "printf" || tok.text == "cout")) {
      raw.push_back(Finding{path, tok.line, kNoStdout,
                            "'" + tok.text +
                                "' in src/; return strings or use "
                                "common/log.hpp (tools/ and bench/ own "
                                "stdout)"});
    }

    // raw-durability-io -----------------------------------------------------
    if (!tool_scope && !path_suffix_match(path, "service/journal.cpp") &&
        (tok.text == "write" || tok.text == "fsync" ||
         tok.text == "fdatasync") &&
        next_nonspace(text, tok.end) == '(' &&
        globally_qualified(text, tok.begin)) {
      raw.push_back(Finding{
          path, tok.line, kRawDurabilityIo,
          "raw ::" + tok.text +
              " in src/; durable bytes go through the EINTR-retrying "
              "wrappers in service/journal.cpp so crash-safety lives in "
              "one place"});
    }

    // thread-annotation -----------------------------------------------------
    if (!tool_scope && preceded_by_std(text, tok.begin)) {
      if (tok.text == "mutex" || tok.text == "timed_mutex" ||
          tok.text == "recursive_mutex" || tok.text == "shared_mutex" ||
          tok.text == "condition_variable" ||
          tok.text == "condition_variable_any" ||
          tok.text == "lock_guard" || tok.text == "unique_lock" ||
          tok.text == "scoped_lock" || tok.text == "shared_lock") {
        raw.push_back(Finding{
            path, tok.line, kThreadAnnotation,
            "raw std::" + tok.text +
                " is invisible to Clang thread-safety analysis; use "
                "micco::Mutex / micco::MutexLock / micco::CondVar "
                "(common/mutex.hpp)"});
      } else if (tok.text == "atomic") {
        const std::string line_text = source_line(info->content, tok.line);
        if (line_text.find("MICCO_") == std::string::npos) {
          raw.push_back(Finding{
              path, tok.line, kThreadAnnotation,
              "std::atomic must carry a MICCO_* annotation on its "
              "declaration line (MICCO_GUARDED_BY, or MICCO_LOCK_FREE with "
              "a rationale comment)"});
        }
      }
    }
  }

  return raw;
}

std::vector<Finding> FileSet::lint_file(const std::string& path) const {
  const FileInfo* info = find(path);
  if (info == nullptr) return {};
  // Apply suppressions, then append suppression-parse findings (which are
  // themselves not suppressible).
  std::vector<Finding> findings;
  for (Finding& finding : raw_findings(path)) {
    if (!suppressed(*info, finding.line, finding.rule)) {
      findings.push_back(std::move(finding));
    }
  }
  findings.insert(findings.end(), info->suppression_findings.begin(),
                  info->suppression_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule, a.message) <
                     std::tie(b.line, b.rule, b.message);
            });
  return findings;
}

bool FileSet::allowed(const std::string& path, int line,
                      const std::string& rule) const {
  const FileInfo* info = find(path);
  return info != nullptr && suppressed(*info, line, rule);
}

const std::vector<SuppressionSite>& FileSet::suppression_sites(
    const std::string& path) const {
  static const std::vector<SuppressionSite> kEmpty;
  const FileInfo* info = find(path);
  return info == nullptr ? kEmpty : info->suppressions;
}

const std::vector<Finding>& FileSet::parse_errors(
    const std::string& path) const {
  static const std::vector<Finding> kEmpty;
  const FileInfo* info = find(path);
  return info == nullptr ? kEmpty : info->suppression_findings;
}

const std::string* FileSet::stripped_text(const std::string& path) const {
  const FileInfo* info = find(path);
  return info == nullptr ? nullptr : &info->stripped;
}

// ---------------------------------------------------------------------------
// Driver

LintResult lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  LintResult result;
  std::vector<std::string> files;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        result.findings.push_back(
            Finding{path, 0, kIoError, "cannot walk: " + ec.message()});
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      result.findings.push_back(
          Finding{path, 0, kIoError, "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  FileSet set;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.findings.push_back(Finding{file, 0, kIoError, "cannot read"});
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    set.add_file(file, content.str());
    ++result.files_scanned;
  }
  // Raw (pre-suppression) findings, per file. Kept separate from the
  // filtered output because stale-suppression detection must see what WOULD
  // fire where an allow() directive sits.
  std::vector<Finding> raw;
  for (const std::string& file : set.paths()) {
    const std::vector<Finding> found = set.raw_findings(file);
    raw.insert(raw.end(), found.begin(), found.end());
  }

  // Scope-aware concurrency pass (DESIGN.md §10). tools/ and bench/ are
  // process-owning leaf code outside the daemon's lock graph, same scope
  // split as the token rules.
  std::vector<TuModel> models;
  for (const std::string& file : set.paths()) {
    if (is_tool_scope(file)) continue;
    const std::string* stripped = set.stripped_text(file);
    if (stripped != nullptr) models.push_back(build_tu_model(file, *stripped));
  }
  const ConcurrencyReport concurrency = analyze_concurrency(models);
  result.lock_graph = concurrency.graph;
  for (const CycleWitness& cycle : concurrency.cycles) {
    std::string path_text;
    for (const std::string& node : cycle.path) {
      if (!path_text.empty()) path_text += " -> ";
      path_text += node;
    }
    raw.push_back(Finding{cycle.file, cycle.line, kLockOrderCycle,
                          "lock-order cycle " + path_text +
                              "; some schedule deadlocks here — fix the "
                              "acquisition order (witness edge at this "
                              "site)"});
  }
  for (const BlockingSite& site : concurrency.blocking) {
    raw.push_back(Finding{site.file, site.line, kBlockingUnderLock,
                          "blocking call " + site.what + " while holding " +
                              site.guard +
                              "; shrink the critical section or allow() "
                              "with a reason"});
  }
  for (const WalSite& site : concurrency.wal) {
    raw.push_back(Finding{site.file, site.line, kWalReleaseBeforeDurable,
                          "release_job in " + site.function +
                              " has no preceding durable journal append in "
                              "the same function; the WAL held-admission "
                              "gate requires append-before-dispatch"});
  }

  // Stale-suppression report: a directive is live when any of its rules
  // fires (pre-suppression) on a line it covers (its own or the next).
  std::set<std::string> fired;  // "file\x1fline\x1frule"
  for (const Finding& finding : raw) {
    fired.insert(finding.file + '\x1f' + std::to_string(finding.line) +
                 '\x1f' + finding.rule);
  }
  for (const std::string& file : set.paths()) {
    for (const SuppressionSite& site : set.suppression_sites(file)) {
      SuppressionReportEntry entry;
      entry.file = file;
      entry.line = site.line;
      entry.rules = site.rules;
      entry.reason = site.reason;
      entry.stale = true;
      for (const std::string& rule : site.rules) {
        for (const int covered : {site.line, site.line + 1}) {
          if (fired.count(file + '\x1f' + std::to_string(covered) + '\x1f' +
                          rule) > 0) {
            entry.stale = false;
          }
        }
      }
      result.suppressions.push_back(std::move(entry));
    }
  }

  // Apply suppressions; append the (unsuppressible) directive parse errors.
  for (Finding& finding : raw) {
    if (!set.allowed(finding.file, finding.line, finding.rule)) {
      result.findings.push_back(std::move(finding));
    }
  }
  for (const std::string& file : set.paths()) {
    const std::vector<Finding>& errors = set.parse_errors(file);
    result.findings.insert(result.findings.end(), errors.begin(),
                           errors.end());
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  result.exit_code = 0;
  for (const Finding& finding : result.findings) {
    const int code = rule_exit_code(finding.rule);
    if (result.exit_code == 0 || code < result.exit_code) {
      result.exit_code = code;
    }
  }
  return result;
}

std::string format_text(const LintResult& result) {
  std::ostringstream out;
  for (const Finding& finding : result.findings) {
    out << finding.file << ':' << finding.line << ": [" << finding.rule
        << "] " << finding.message << '\n';
  }
  if (result.findings.empty()) {
    out << "micco_lint: clean (" << result.files_scanned
        << " files scanned)\n";
  } else {
    out << "micco_lint: " << result.findings.size() << " finding(s) in "
        << result.files_scanned << " file(s); exit " << result.exit_code
        << '\n';
  }
  return out.str();
}

std::string format_json(const LintResult& result) {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("schema_version", 2);
  out.set("files_scanned", static_cast<std::int64_t>(result.files_scanned));
  out.set("clean", result.findings.empty());
  out.set("exit_code", result.exit_code);
  {
    JsonValue graph = JsonValue::object();
    graph.set("nodes",
              static_cast<std::int64_t>(result.lock_graph.nodes.size()));
    graph.set("edges",
              static_cast<std::int64_t>(result.lock_graph.edges.size()));
    out.set("lock_graph", std::move(graph));
  }
  {
    std::int64_t stale = 0;
    for (const SuppressionReportEntry& entry : result.suppressions) {
      if (entry.stale) ++stale;
    }
    JsonValue sup = JsonValue::object();
    sup.set("total", static_cast<std::int64_t>(result.suppressions.size()));
    sup.set("stale", stale);
    out.set("suppressions", std::move(sup));
  }
  std::map<std::string, std::int64_t> counts;
  JsonValue findings = JsonValue::array();
  for (const Finding& finding : result.findings) {
    ++counts[finding.rule];
    JsonValue entry = JsonValue::object();
    entry.set("file", finding.file);
    entry.set("line", finding.line);
    entry.set("rule", finding.rule);
    entry.set("message", finding.message);
    findings.push_back(std::move(entry));
  }
  JsonValue count_obj = JsonValue::object();
  for (const auto& [rule, n] : counts) count_obj.set(rule, n);
  out.set("counts", std::move(count_obj));
  out.set("findings", std::move(findings));
  return out.dump() + "\n";
}

std::string lock_graph_json(const LockGraph& graph) {
  using obs::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("schema_version", 1);
  JsonValue nodes = JsonValue::array();
  for (const std::string& node : graph.nodes) nodes.push_back(node);
  out.set("nodes", std::move(nodes));
  JsonValue edges = JsonValue::array();
  for (const LockEdge& e : graph.edges) {
    JsonValue entry = JsonValue::object();
    entry.set("from", e.from);
    entry.set("to", e.to);
    entry.set("file", e.file);
    entry.set("line", e.line);
    edges.push_back(std::move(entry));
  }
  out.set("edges", std::move(edges));
  return out.dump() + "\n";
}

}  // namespace micco::lint
