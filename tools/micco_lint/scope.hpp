// Scope-aware concurrency model for micco-lint (DESIGN.md §10).
//
// The second analysis level on top of the token/line scanner in lint.cpp:
// a lightweight per-TU scope/statement model — brace nesting, MutexLock
// RAII guard scopes, MICCO_REQUIRES annotations and call sites by
// identifier — built from the comment/string-stripped text, no libclang.
// Three rule families consume it:
//
//   lock-order-cycle          every nested acquisition A -> B observed in
//                             guard scopes (directly, or through a resolved
//                             callee that itself acquires) feeds a global
//                             lock graph; any cycle is a deadlock schedule
//                             and fails the run with its witness path
//   blocking-under-lock       POSIX blocking calls (::write/::fsync/::poll/
//                             ::recv/::send/::connect/sleep family) and
//                             calls into functions that transitively make
//                             them, issued while a guard scope is open
//   wal-release-before-durable release_job (the dispatch gate of the
//                             write-ahead journal) must be preceded by a
//                             journal append in the same function body
//
// Resolution is name-based and deliberately conservative: a mutex
// expression resolves to "Class::member" through the tree-wide member
// tables harvested from the same scan, a callee resolves through the
// enclosing class, the receiver's declared member type, or a unique
// name-similarity match — and when none of those apply, the call is
// dropped rather than guessed, so the gate stays quiet on std:: calls.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace micco::lint {

/// One MutexLock RAII acquisition inside a function body.
struct GuardSite {
  int line = 0;
  std::string expr;               ///< raw mutex expression inside the parens
  std::vector<std::string> held;  ///< guard exprs already open at this point
  bool deferred = false;          ///< inside a lambda: runs on another schedule
};

/// One call-by-identifier inside a function body.
struct CallSite {
  int line = 0;
  std::string callee;
  std::string receiver;       ///< simple receiver identifier ("" when none)
  bool has_receiver = false;  ///< written obj.callee / obj->callee
  bool global_scope = false;  ///< written ::callee (POSIX style)
  bool std_qualified = false; ///< written std::callee / std::x::callee
  /// Guard exprs (RAII + REQUIRES) open around the call. Lambda bodies mask
  /// the guards of their enclosing scope: the closure runs later, when
  /// nothing proves the lock is still held.
  std::vector<std::string> guards;
  bool deferred = false;  ///< inside a lambda: not the enclosing fn's effect
};

/// One function body's concurrency-relevant structure.
struct FunctionModel {
  std::string cls;   ///< enclosing class ("" = free function)
  std::string name;  ///< unqualified name
  int line = 0;
  std::vector<std::string> requires_exprs;  ///< MICCO_REQUIRES operands
  std::vector<GuardSite> guards;
  std::vector<CallSite> calls;  ///< textual order

  std::string key() const { return cls.empty() ? name : cls + "::" + name; }
};

/// Per-TU model plus the declaration tables the resolver needs.
struct TuModel {
  std::string path;
  std::vector<FunctionModel> functions;
  /// Mutex member name -> classes declaring it.
  std::map<std::string, std::set<std::string>> mutex_owners;
  /// Mutex names declared at namespace scope (globals).
  std::set<std::string> mutex_globals;
  /// class -> member name -> final identifier of the declared type.
  std::map<std::string, std::map<std::string, std::string>> member_types;
};

/// Builds the scope model of one file from its stripped text (same text the
/// token rules scan: comments and string literals blanked, newlines kept).
TuModel build_tu_model(const std::string& path, const std::string& stripped);

/// One nested-acquisition edge with its first witness site.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

/// The global lock-order graph (nodes sorted, edges deduped by from/to).
struct LockGraph {
  std::vector<std::string> nodes;
  std::vector<LockEdge> edges;
};

/// One lock-order cycle: the node path (first node repeated last) and the
/// witness site of its first edge.
struct CycleWitness {
  std::vector<std::string> path;
  std::string file;
  int line = 0;
};

/// One blocking call made while a guard scope was open.
struct BlockingSite {
  std::string file;
  int line = 0;
  std::string guard;  ///< innermost lock node held
  std::string what;   ///< e.g. "::fsync" or "JournalWriter::append (-> ::fsync)"
};

/// One release_job call with no preceding journal append in its function.
struct WalSite {
  std::string file;
  int line = 0;
  std::string function;
};

/// Everything the three scope-aware rules need, computed tree-wide.
struct ConcurrencyReport {
  LockGraph graph;
  std::vector<CycleWitness> cycles;
  std::vector<BlockingSite> blocking;
  std::vector<WalSite> wal;
};

/// Cross-TU analysis: merges the declaration tables, resolves guard exprs
/// to lock nodes and callees to function summaries, propagates
/// acquires/may-block facts to a fixed point, then extracts the lock graph,
/// its cycles, the blocking-under-lock sites and the WAL-invariant sites.
/// Deterministic: all outputs are sorted.
ConcurrencyReport analyze_concurrency(const std::vector<TuModel>& tus);

/// Graphviz rendering of the lock graph (stable ordering).
std::string lock_graph_dot(const LockGraph& graph);

}  // namespace micco::lint
