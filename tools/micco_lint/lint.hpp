// micco-lint — the project's determinism & concurrency static-analysis gate.
// (A line comment that *starts* with "micco-lint:" is parsed as a
// suppression directive, so this header says "micco-lint —" instead.)
//
// A token/line-level scanner (no libclang) over src/, tools/ and bench/
// that enforces the invariants the scheduler's reproducibility contract
// rests on — bit-identical tuner labels, decision logs and reports at any
// thread count — *before* a test ever runs. The rule catalog (see
// rule_catalog() and DESIGN.md §5e):
//
//   det-rng             no std::random_device / rand / srand / wall-clock
//                       seeding outside common/rng.*
//   det-unordered-iter  no iteration over unordered containers in a TU
//                       whose include closure reaches an output-affecting
//                       header (obs/events.hpp, obs/report.hpp,
//                       ml/serialize.hpp)
//   no-raw-new          no raw new/delete in src/ (tools/, bench/ exempt)
//   no-stdout           no printf/cout in src/ (tools/, bench/ exempt)
//   pragma-once         every header carries #pragma once
//   thread-annotation   no raw std::mutex/condition_variable in src/ (use
//                       the annotated micco::Mutex wrappers) and every
//                       std::atomic carries a MICCO_* annotation
//   bad-suppression     a suppression comment must name a known rule and
//                       give a non-empty reason
//   metric-name-literal a dotted metric/span name literal (a reserved
//                       telemetry root followed by '.') anywhere outside
//                       obs/names.hpp; instrumentation sites must reference
//                       the constants in that header
//
// On top of the token rules sits the scope-aware concurrency analysis
// (scope.hpp, DESIGN.md §10), which adds three tree-wide rule families:
//
//   lock-order-cycle    the global nested-acquisition graph extracted from
//                       MutexLock scopes and MICCO_REQUIRES contexts must
//                       be acyclic; a cycle is a deadlock schedule
//   blocking-under-lock no POSIX blocking call (::write/::fsync/::poll/
//                       ::recv/::send/::connect, sleep family) — directly
//                       or through a resolved callee — while a guard scope
//                       is open
//   wal-release-before-durable
//                       release_job (the WAL held-admission gate) must be
//                       preceded by a durable journal append in the same
//                       function body
//   stale-suppression   an allow() directive whose rules no longer fire on
//                       the surrounding code (reported by --suppressions)
//
// Findings are suppressible inline with
//   // micco-lint: allow(<rule>) <reason>
// on the offending line or the line directly above. Every rule has a fixed
// exit code; a run's exit code is the lowest code among the rules that
// fired (0 = clean, 1 = I/O error, 2 = usage error).
//
// The scanner works on comment- and string-stripped text, so banned
// identifiers in documentation or literals never fire. It is deliberately
// dependency-light: the only non-STL dependency is obs::JsonValue, reused
// so `--format=json` output matches the telemetry stack's serializer.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "micco_lint/scope.hpp"

namespace micco::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Self-description of one rule (--list-rules).
struct RuleInfo {
  std::string name;
  int exit_code = 0;
  std::string description;
};

/// The full rule catalog, in exit-code order.
const std::vector<RuleInfo>& rule_catalog();

/// True when `name` is a rule in the catalog.
bool known_rule(const std::string& name);

/// One inline '// micco-lint: allow(...)' directive.
struct SuppressionSite {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
};

/// The set of files being linted, with the derived per-file state the rules
/// need: stripped text, inline suppressions, quoted includes (for the
/// include-closure checks) and identifiers declared as unordered
/// containers. Paths are stored as given; include references are resolved
/// against the includer's directory and against a `src/`-rooted layout, and
/// unresolved includes still participate in suffix matching (so a lone
/// fixture that includes "obs/events.hpp" is classified correctly).
class FileSet {
 public:
  void add_file(const std::string& path, const std::string& content);

  const std::vector<std::string>& paths() const { return paths_; }
  bool contains(const std::string& path) const {
    return files_.count(path) > 0;
  }

  /// True when `path`'s quoted-include closure (the file itself plus every
  /// include chain that resolves inside this set) mentions a header whose
  /// path ends with `suffix`.
  bool closure_includes(const std::string& path,
                        const std::string& suffix) const;

  /// Identifiers declared as std::unordered_map/std::unordered_set in
  /// `path` or any file of its resolved include closure.
  std::set<std::string> unordered_names(const std::string& path) const;

  /// Lints one previously added file (raw token/line rules, suppressions
  /// applied, parse errors appended).
  std::vector<Finding> lint_file(const std::string& path) const;

  /// Token/line-rule findings of one file BEFORE suppressions are applied.
  /// Feeds stale-suppression detection, which must see what would fire.
  std::vector<Finding> raw_findings(const std::string& path) const;

  /// True when an allow(<rule>) directive covers `line` of `path` (directive
  /// on the line itself or the line directly above).
  bool allowed(const std::string& path, int line,
               const std::string& rule) const;

  /// All allow() directives of one file, in line order.
  const std::vector<SuppressionSite>& suppression_sites(
      const std::string& path) const;

  /// bad-suppression findings produced while parsing `path`'s directives.
  const std::vector<Finding>& parse_errors(const std::string& path) const;

  /// Stripped text of one file (comments/strings blanked, newlines kept) —
  /// the input the scope-aware concurrency model is built from.
  const std::string* stripped_text(const std::string& path) const;

 private:
  struct FileInfo {
    std::string content;   ///< raw text
    std::string stripped;  ///< comments/strings blanked, newlines kept
    std::vector<std::string> raw_includes;      ///< quoted include operands
    std::vector<std::string> resolved_includes; ///< ...resolved into the set
    /// line -> rules allowed on that line and the next.
    std::map<int, std::set<std::string>> allowed;
    /// Every well-formed allow() directive, with its reason (line order).
    std::vector<SuppressionSite> suppressions;
    /// Findings produced while parsing suppressions (bad-suppression).
    std::vector<Finding> suppression_findings;
    std::set<std::string> unordered_decls;
    /// (line, text) of every ordinary string literal, harvested while the
    /// stripper blanks them (raw strings excluded). Feeds the
    /// metric-name-literal rule, which alone sees literal contents.
    std::vector<std::pair<int, std::string>> string_literals;
  };

  const FileInfo* find(const std::string& path) const;
  std::vector<const FileInfo*> closure(const std::string& path) const;
  bool suppressed(const FileInfo& info, int line,
                  const std::string& rule) const;

  std::map<std::string, FileInfo> files_;
  std::vector<std::string> paths_;  ///< insertion order (already sorted by
                                    ///< the path walker for determinism)
};

/// One allow() site in the tree, with its liveness verdict (--suppressions).
struct SuppressionReportEntry {
  std::string file;
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  /// True when none of the directive's rules fire (pre-suppression) on the
  /// covered lines any more — the directive is dead weight and must go.
  bool stale = false;
};

/// Result of linting a set of paths.
struct LintResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  int exit_code = 0;  ///< 0 clean, else lowest exit code of a fired rule
  /// Every allow() directive seen, sorted by (file, line) — the
  /// --suppressions report.
  std::vector<SuppressionReportEntry> suppressions;
  /// The tree-wide lock-order graph (--lock-graph, report counters).
  LockGraph lock_graph;
};

/// Expands files and directories (recursing over .hpp/.h/.cpp/.cc), loads
/// them into a FileSet and lints every file. Unreadable paths set
/// exit_code 1 with a pseudo-finding under rule "io-error".
LintResult lint_paths(const std::vector<std::string>& paths);

/// Human-readable report: one "file:line: [rule] message" per finding plus
/// a trailing summary line.
std::string format_text(const LintResult& result);

/// Machine-readable report (schema documented in DESIGN.md §5e).
std::string format_json(const LintResult& result);

/// JSON rendering of the extracted lock graph (--lock-graph=FILE when the
/// name does not end in .dot; lock_graph_dot in scope.hpp renders Graphviz).
std::string lock_graph_json(const LockGraph& graph);

}  // namespace micco::lint
