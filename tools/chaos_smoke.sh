#!/usr/bin/env sh
# chaos_smoke.sh — kill -9 crash/recovery harness for the scheduling daemon.
#
# Runs one reference (uninterrupted) `micco serve` session, then SIGKILLs a
# daemon at every scripted journal crash point (--journal-crash-after=K
# raises SIGKILL the instant record K becomes durable), restarts it on the
# same journal, and asserts the recovered state:
#   K=1 (after `admitted`)   the job re-runs; recovered decision log is
#   K=2 (after `dispatched`) byte-identical to the reference session, and
#                            the span trace matches modulo the final
#                            journal_replay summary line;
#   K=3 (after `finished`)   recovery replays the result without re-running
#                            anything (empty decision log), and a duplicate
#                            resubmit under the same idempotency token
#                            answers DONE instantly — exactly-once across
#                            the crash.
# The restarted daemon binds over the stale socket the crash left behind
# (the probe-then-unlink start path), and the resubmit reconnects with
# --retry-max while the restart is still in flight.
#
# Usage: tools/chaos_smoke.sh <micco-binary> <scratch-dir>
set -eu

MICCO="${1:?usage: chaos_smoke.sh <micco-binary> <scratch-dir>}"
DIR="${2:?usage: chaos_smoke.sh <micco-binary> <scratch-dir>}"
mkdir -p "${DIR}"

SOCKET="${DIR}/chaos.sock"

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "chaos: socket $1 never appeared" >&2
  return 1
}

"${MICCO}" generate --out="${DIR}/w.mw" --vectors=2 --vector-size=16 --seed=7

echo "-- chaos: reference session (uninterrupted) --"
"${MICCO}" serve --socket="${SOCKET}" --gpus=4 --threads=1 \
  --journal="${DIR}/ref.journal" \
  --decisions="${DIR}/ref_decisions.jsonl" \
  --spans="${DIR}/ref_spans.jsonl" &
REF_PID=$!
wait_for_socket "${SOCKET}"
"${MICCO}" submit "${DIR}/w.mw" --socket="${SOCKET}" --tenant=alice \
  --idem=chaos-tok --wait
"${MICCO}" drain --socket="${SOCKET}"
wait "${REF_PID}"

# One job writes exactly three journal records: admitted, dispatched,
# finished. Crash after each in turn.
for K in 1 2 3; do
  echo "-- chaos: SIGKILL after journal record ${K} --"
  rm -f "${DIR}/k${K}.journal"
  "${MICCO}" serve --socket="${SOCKET}" --gpus=4 --threads=1 \
    --journal="${DIR}/k${K}.journal" --journal-crash-after="${K}" \
    --decisions="${DIR}/k${K}_crash_decisions.jsonl" &
  SERVE_PID=$!
  wait_for_socket "${SOCKET}"
  # At K=1 the daemon dies before the submit reply is sent; the client sees
  # a dead connection and a non-zero exit, which is fine — the idempotency
  # token is what makes the later resubmit safe.
  "${MICCO}" submit "${DIR}/w.mw" --socket="${SOCKET}" --tenant=alice \
    --idem=chaos-tok --deadline-ms=5000 || true
  RC=0
  wait "${SERVE_PID}" || RC=$?
  if [ "${RC}" -ne 137 ]; then
    echo "chaos: expected SIGKILL exit 137 at K=${K}, got ${RC}" >&2
    exit 1
  fi

  # Restart on the same journal. No `rm` of the stale socket: the probe
  # connect must find it dead and unlink it. The resubmit retries its
  # connection because the restart races it.
  "${MICCO}" serve --socket="${SOCKET}" --gpus=4 --threads=1 \
    --journal="${DIR}/k${K}.journal" \
    --decisions="${DIR}/k${K}_decisions.jsonl" \
    --spans="${DIR}/k${K}_spans.jsonl" &
  SERVE_PID=$!
  "${MICCO}" submit "${DIR}/w.mw" --socket="${SOCKET}" --tenant=alice \
    --idem=chaos-tok --deadline-ms=5000 --retry-max=8 --retry-backoff=0.1 \
    --wait > "${DIR}/k${K}_resubmit.txt"
  cat "${DIR}/k${K}_resubmit.txt"
  # Every crash point journaled the admitted record (it is durable before
  # the reply), so the resubmit is always a dedup hit, never a second job.
  grep -q "duplicate" "${DIR}/k${K}_resubmit.txt"
  "${MICCO}" drain --socket="${SOCKET}"
  wait "${SERVE_PID}"

  if [ "${K}" -lt 3 ]; then
    # Interrupted before the finished record: recovery re-runs the job, and
    # the decision log must be byte-identical to the uninterrupted session.
    cmp "${DIR}/k${K}_decisions.jsonl" "${DIR}/ref_decisions.jsonl"
    # The span trace matches too, modulo the final journal_replay summary.
    sed '$d' "${DIR}/k${K}_spans.jsonl" > "${DIR}/k${K}_spans_trimmed.jsonl"
    cmp "${DIR}/k${K}_spans_trimmed.jsonl" "${DIR}/ref_spans.jsonl"
    grep -q "journal_replay" "${DIR}/k${K}_spans.jsonl"
  else
    # Crashed after the finished record: recovery replays the result and
    # must not re-run anything (exactly-once), so no scheduling decisions.
    if [ -s "${DIR}/k${K}_decisions.jsonl" ]; then
      echo "chaos: K=3 recovery re-ran an already-finished job" >&2
      exit 1
    fi
  fi
done

echo "chaos smoke OK: every crash point recovered, decision logs" \
  "byte-identical, idempotent resubmit ran exactly once across kill -9"
