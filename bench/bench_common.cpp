#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace micco::bench {

Env parse_env(const CliArgs& args) {
  if (args.error()) {
    std::fprintf(stderr, "argument error: %s\n", args.error()->c_str());
    std::exit(2);
  }
  Env env;
  env.quick = args.get_bool("quick", false);
  env.gpus = static_cast<int>(args.get_int("gpus", 8));
  // Default batch width puts the ten-vector working set in the same ballpark
  // as the node's aggregate device memory (the regime the paper evaluates:
  // caching helps but cannot trivially replicate everything everywhere).
  env.vectors = args.get_int("vectors", env.quick ? 4 : 10);
  env.batch = args.get_int("batch", env.quick ? 16 : 160);
  env.samples = static_cast<int>(args.get_int("samples", env.quick ? 40 : 300));
  env.seed = static_cast<std::uint64_t>(args.get_int("seed", 2022));
  env.csv_dir = args.get("csv-dir", "");
  env.report_dir = args.get("report-dir", "");
  // Applied immediately so tuner sweeps, comparisons and trial loops all
  // fan out; results are byte-identical at every width (see src/parallel).
  env.threads = static_cast<int>(args.get_int("threads", 1));
  parallel::set_threads(env.threads);
  env.threads = parallel::configured_threads();
  if (args.get_bool("verbose", false)) set_log_level(LogLevel::kInfo);

  if (env.gpus < 1 || env.vectors < 1 || env.batch < 1 || env.samples < 5) {
    std::fprintf(stderr, "invalid bench parameters\n");
    std::exit(2);
  }
  return env;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("%s", banner(title + "  [" + paper_ref + "]").c_str());
}

void warn_unused(const CliArgs& args) {
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "warning: unrecognised flag --%s ignored\n",
                 flag.c_str());
  }
}

TrainedBoundsModel train_model(const Env& env) {
  // Train in the same regime the benches run (batch width, vector count,
  // device count): the model's features do not include batch, so a regime
  // mismatch would skew every prediction.
  TunerConfig tuner;
  tuner.samples = env.samples;
  tuner.num_vectors = env.vectors;
  tuner.batch = env.batch;
  tuner.num_devices = env.gpus;
  tuner.max_bound = 2;
  tuner.seed = env.seed;
  if (env.quick) {
    tuner.vector_sizes = {8, 16};
    tuner.tensor_extents = {128, 384};
  }
  std::printf("training reuse-bound model (%d samples, %d-point grid)...\n",
              tuner.samples, 27);
  TrainedBoundsModel model = train_default_model(tuner);
  std::printf("model: %s, held-out R^2 = %.2f, inference = %.1f us\n\n",
              model.report.model_name.c_str(), model.report.mean_r2,
              model.report.inference_us);
  return model;
}

SyntheticConfig base_synth(const Env& env) {
  SyntheticConfig cfg;
  cfg.num_vectors = env.vectors;
  cfg.vector_size = 64;
  cfg.tensor_extent = 384;
  cfg.batch = env.batch;
  cfg.repeated_rate = 0.5;
  cfg.distribution = DataDistribution::kUniform;
  cfg.seed = env.seed;
  return cfg;
}

std::string fmt_gflops(double gflops) { return stats::format(gflops, 0); }

std::string fmt_speedup(double speedup) {
  return stats::format(speedup, 2) + "x";
}

void maybe_write_csv(const Env& env, const std::string& name,
                     const CsvWriter& csv) {
  if (env.csv_dir.empty()) return;
  const std::string path = env.csv_dir + "/" + name + ".csv";
  csv.write_file(path);
  std::printf("series written to %s\n", path.c_str());
}

void maybe_write_report(const Env& env, const std::string& name,
                        const WorkloadStream& stream,
                        const ClusterConfig& cluster, SchedulerKind kind,
                        BoundsProvider* bounds) {
  if (env.report_dir.empty()) return;
  const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
  obs::Telemetry telemetry;
  RunOptions options;
  options.bounds = bounds;
  options.telemetry = &telemetry;
  const RunResult result = run_stream(stream, *scheduler, cluster, options);
  const std::string path = env.report_dir + "/" + name + ".json";
  obs::write_report_file(make_run_report(result, telemetry), path);
  std::printf("run report written to %s\n", path.c_str());
}

std::string fmt_bytes_gb(std::uint64_t bytes) {
  return stats::format(static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0),
                       2) +
         "G";
}

}  // namespace micco::bench
