// Shared infrastructure for the figure/table reproduction harnesses: common
// CLI flags, the MI100-node cluster description, one-stop training of the
// reuse-bound regression model, and table output helpers.
//
// Every bench accepts:
//   --gpus=N       number of simulated devices (default 8, the paper's node)
//   --vectors=N    vectors per stream (default 10, Table V's setting)
//   --batch=N      batch width per hadron node (default 16)
//   --samples=N    tuner corpus size for the regression model (default 300)
//   --seed=N       experiment seed (default 2022)
//   --csv-dir=DIR  also write each figure's series as CSV into DIR
//   --report-dir=DIR  also write a telemetry run report (JSON) into DIR
//   --threads=N    worker-pool width for sweeps/trials (0 = all cores)
//   --quick        shrink everything for smoke runs
#pragma once

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/bounds_model.hpp"
#include "core/experiment.hpp"
#include "parallel/parallel.hpp"
#include "workload/synthetic.hpp"

namespace micco::bench {

struct Env {
  int gpus = 8;
  std::int64_t vectors = 10;
  std::int64_t batch = 16;
  int samples = 300;
  std::uint64_t seed = 2022;
  int threads = 1;  ///< worker-pool width already applied via set_threads
  bool quick = false;
  std::string csv_dir;     ///< empty = no CSV output
  std::string report_dir;  ///< empty = no run-report output

  ClusterConfig cluster(std::uint64_t capacity = 32ULL << 30) const {
    ClusterConfig c;
    c.num_devices = gpus;
    c.device_capacity_bytes = capacity;
    return c;
  }
};

/// Parses the shared flags and warns on typos; exits on malformed input.
Env parse_env(const CliArgs& args);

/// Prints the bench banner with the paper artefact it regenerates.
void print_header(const std::string& title, const std::string& paper_ref);

/// Warns about unrecognised flags (call after all get()s).
void warn_unused(const CliArgs& args);

/// Trains the production Random Forest bounds model on the standard tuner
/// corpus (Section IV-C: 300 samples, bounds searched on [0,2]^3). In
/// --quick mode the corpus shrinks for smoke runs.
TrainedBoundsModel train_model(const Env& env);

/// The standard synthetic config used across Figs. 7-11, with the paper's
/// defaults (tensor size 384, repeated rate 50 %, Uniform).
SyntheticConfig base_synth(const Env& env);

/// Runs `trial(t)` for t in [0, trials) across the worker pool and returns
/// the per-trial results in trial order — the statistics computed from them
/// are identical at every thread count. Use for repeated-measurement loops
/// whose trials are independent (fresh scheduler + cluster per trial).
template <typename Fn>
auto run_trials(std::int64_t trials, Fn&& trial) {
  return parallel::parallel_map(static_cast<std::size_t>(trials),
                                [&](std::size_t t) { return trial(t); });
}

/// Formats GFLOPS / speedups for table cells.
std::string fmt_gflops(double gflops);
std::string fmt_speedup(double speedup);
std::string fmt_bytes_gb(std::uint64_t bytes);

/// Writes `csv` as <csv_dir>/<name>.csv when --csv-dir was given (no-op
/// otherwise); prints the destination path.
void maybe_write_csv(const Env& env, const std::string& name,
                     const CsvWriter& csv);

/// When --report-dir was given, reruns `stream` under `kind` with telemetry
/// attached and writes the machine-readable run report (obs/report.hpp) as
/// <report_dir>/<name>.json; no-op otherwise. The rerun keeps telemetry off
/// the measured runs so instrumentation can never skew a figure.
void maybe_write_report(const Env& env, const std::string& name,
                        const WorkloadStream& stream,
                        const ClusterConfig& cluster, SchedulerKind kind,
                        BoundsProvider* bounds = nullptr);

}  // namespace micco::bench
