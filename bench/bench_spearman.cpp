// Fig. 5 — Heatmap of Spearman rank-correlation coefficients among the four
// data characteristics (distribution bias, vector size, repeated rate,
// tensor size), the three reuse bounds, and GFLOPS, computed over the
// offline tuning corpus (every (configuration, bound-triple) measurement).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Spearman Correlation Heatmap", "Fig. 5");

  TunerConfig tuner;
  tuner.samples = env.samples;
  tuner.num_vectors = env.vectors;
  tuner.batch = env.batch;
  tuner.num_devices = env.gpus;
  tuner.seed = env.seed;
  if (env.quick) {
    tuner.vector_sizes = {8, 16};
    tuner.tensor_extents = {128, 384};
  }
  std::printf("sweeping %d configurations x 27 bound triples...\n\n",
              tuner.samples);
  const TuningData data = generate_tuning_data(tuner);

  // Column series over all records, in the paper's heatmap order.
  const std::vector<std::string> names{
      "DataDist", "VectorSize", "RepeatRate", "TensorSize",
      "Bound1",   "Bound2",     "Bound3",     "GFLOPS"};
  std::vector<std::vector<double>> series(names.size());
  for (const TuningRecord& r : data.records) {
    series[0].push_back(r.characteristics.distribution_bias);
    series[1].push_back(r.characteristics.vector_size);
    series[2].push_back(r.characteristics.repeated_rate);
    series[3].push_back(r.characteristics.tensor_extent);
    series[4].push_back(static_cast<double>(r.bounds[0]));
    series[5].push_back(static_cast<double>(r.bounds[1]));
    series[6].push_back(static_cast<double>(r.bounds[2]));
    series[7].push_back(r.gflops);
  }

  TextTable table;
  table.add_column("", Align::kLeft);
  for (const std::string& n : names) table.add_column(n);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    for (std::size_t j = 0; j < names.size(); ++j) {
      row.push_back(stats::format(stats::spearman(series[i], series[j]), 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  // The sweep holds the bounds grid orthogonal to the characteristics, so
  // the bound rows correlate with GFLOPS only conditionally; also report
  // the per-configuration correlation between each *optimal* bound label
  // and the characteristics (the relationships the model learns).
  std::printf("\noptimal-bound labels vs characteristics (Spearman):\n");
  std::vector<std::vector<double>> label_series(7);
  for (const TrainingSample& s : data.samples) {
    label_series[0].push_back(s.characteristics.distribution_bias);
    label_series[1].push_back(s.characteristics.vector_size);
    label_series[2].push_back(s.characteristics.repeated_rate);
    label_series[3].push_back(s.characteristics.tensor_extent);
    label_series[4].push_back(static_cast<double>(s.best_bounds[0]));
    label_series[5].push_back(static_cast<double>(s.best_bounds[1]));
    label_series[6].push_back(static_cast<double>(s.best_bounds[2]));
  }
  TextTable label_table;
  label_table.add_column("", Align::kLeft);
  for (int b = 0; b < 3; ++b) {
    label_table.add_column("opt Bound" + std::to_string(b + 1));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::string> row{names[i]};
    for (std::size_t b = 0; b < 3; ++b) {
      row.push_back(stats::format(
          stats::spearman(label_series[i], label_series[4 + b]), 2));
    }
    label_table.add_row(std::move(row));
  }
  std::printf("%s", label_table.render().c_str());
  std::printf(
      "\npaper shape: all four characteristics correlate positively with "
      "GFLOPS; repeat rate and distribution bias push the optimal bounds up "
      "(reuse pays), vector and tensor size push them down (imbalance "
      "costs); the relationships are monotone but non-linear.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
