// Scheduler hot-path microbenchmarks (google-benchmark).
//
// Backs Table V's "scheduling overhead is negligible" claim with per-call
// latencies: pair classification, a full MiccoScheduler::assign (including
// maps and candidate selection), the Groute baseline's assignment, online
// characteristics extraction, Random-Forest bound inference, and the
// simulator's own per-task bookkeeping.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/bounds_model.hpp"
#include "core/experiment.hpp"
#include "obs/events.hpp"
#include "obs/telemetry.hpp"
#include "sched/reuse_pattern.hpp"
#include "workload/synthetic.hpp"

namespace micco {
namespace {

WorkloadStream micro_stream(std::int64_t vector_size = 64) {
  SyntheticConfig cfg;
  cfg.num_vectors = 10;
  cfg.vector_size = vector_size;
  cfg.tensor_extent = 384;
  cfg.batch = 16;
  cfg.repeated_rate = 0.5;
  cfg.seed = 99;
  return generate_synthetic(cfg);
}

ClusterConfig micro_cluster(int gpus = 8) {
  ClusterConfig c;
  c.num_devices = gpus;
  return c;
}

/// A simulator pre-warmed with the first vectors so residency maps are
/// populated (the hot-path state the scheduler actually queries).
ClusterSimulator warmed_simulator(const WorkloadStream& stream, int gpus) {
  ClusterSimulator sim(micro_cluster(gpus));
  MiccoScheduler sched;
  for (const VectorWorkload& vec : stream.vectors) {
    sched.begin_vector(vec, sim);
    for (const ContractionTask& task : vec.tasks) {
      sim.execute(task, sched.assign(task, sim));
    }
    sim.barrier();
  }
  return sim;
}

void BM_ClassifyPair(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  ClusterSimulator sim = warmed_simulator(stream, 8);
  const VectorWorkload& vec = stream.vectors.back();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classify_pair(vec.tasks[i % vec.tasks.size()], sim));
    ++i;
  }
}
BENCHMARK(BM_ClassifyPair);

void BM_MiccoAssign(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  ClusterSimulator sim = warmed_simulator(stream, static_cast<int>(state.range(0)));
  MiccoScheduler sched;
  const VectorWorkload& vec = stream.vectors.back();
  sched.begin_vector(vec, sim);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign(vec.tasks[i % vec.tasks.size()], sim));
    ++i;
  }
}
BENCHMARK(BM_MiccoAssign)->Arg(2)->Arg(4)->Arg(8);

/// Same hot path with the telemetry bundle attached (counters + decision
/// sink). Compare against BM_MiccoAssign/8 to read off the instrumentation
/// cost; with telemetry detached the two must be indistinguishable.
void BM_MiccoAssignTelemetry(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  ClusterSimulator sim = warmed_simulator(stream, 8);
  MiccoScheduler sched;
  obs::Telemetry telemetry;
  obs::MemoryEventSink sink;
  telemetry.sink = &sink;
  sched.set_telemetry(&telemetry);
  const VectorWorkload& vec = stream.vectors.back();
  sched.begin_vector(vec, sim);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign(vec.tasks[i % vec.tasks.size()], sim));
    if (sink.decisions().size() >= 4096) sink.clear();
    ++i;
  }
}
BENCHMARK(BM_MiccoAssignTelemetry);

void BM_GrouteAssign(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  ClusterSimulator sim = warmed_simulator(stream, 8);
  GrouteScheduler sched;
  const VectorWorkload& vec = stream.vectors.back();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign(vec.tasks[i % vec.tasks.size()], sim));
    ++i;
  }
}
BENCHMARK(BM_GrouteAssign);

void BM_ExtractCharacteristics(benchmark::State& state) {
  const WorkloadStream stream = micro_stream(state.range(0));
  ClusterSimulator sim = warmed_simulator(stream, 8);
  const VectorWorkload& vec = stream.vectors.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_characteristics(vec, sim));
  }
}
BENCHMARK(BM_ExtractCharacteristics)->Arg(8)->Arg(64);

void BM_BoundInference(benchmark::State& state) {
  TunerConfig tuner;
  tuner.samples = 40;
  tuner.num_vectors = 4;
  tuner.batch = 2;
  tuner.vector_sizes = {8, 16};
  tuner.tensor_extents = {128, 384};
  TrainedBoundsModel model = train_default_model(tuner);
  DataCharacteristics c;
  c.vector_size = 64;
  c.tensor_extent = 384;
  c.distribution_bias = 0.3;
  c.repeated_rate = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.provider->bounds_for(c));
  }
}
BENCHMARK(BM_BoundInference);

void BM_SimulatorExecute(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  std::size_t v = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ClusterSimulator sim(micro_cluster(8));
    MiccoScheduler sched;
    const VectorWorkload& vec = stream.vectors[v % stream.vectors.size()];
    sched.begin_vector(vec, sim);
    state.ResumeTiming();
    for (const ContractionTask& task : vec.tasks) {
      sim.execute(task, sched.assign(task, sim));
    }
    sim.barrier();
    ++v;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              stream.vectors[0].tasks.size()));
}
BENCHMARK(BM_SimulatorExecute);

void BM_FullPipelineTenVectors(benchmark::State& state) {
  const WorkloadStream stream = micro_stream();
  for (auto _ : state) {
    MiccoScheduler sched;
    benchmark::DoNotOptimize(
        run_stream(stream, sched, micro_cluster(8)));
  }
}
BENCHMARK(BM_FullPipelineTenVectors);

}  // namespace
}  // namespace micco

// Tolerant main: the other harnesses share flags like --quick that
// google-benchmark would reject; pass through only --benchmark_* flags so
// `for b in build/bench/*; do $b --quick; done` works uniformly.
int main(int argc, char** argv) {
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) {
      filtered.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
