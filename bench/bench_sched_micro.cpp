// bench_sched_micro — hot-path throughput of the scheduling layer itself.
//
// Two measurements, written as BENCH_sched.json:
//   1. Scheduler decisions/sec: MICCO, Groute and dmda assign() rates
//      against a warmed cluster (one executed pass populates residency so
//      the holder-list tiers actually fire), timing pure decision passes
//      with no execution and no telemetry attached. This is the loop the
//      allocation-free candidate scratch targets.
//   2. Tuner samples/sec at 1/2/4/8 worker threads, asserting the labels
//      are bit-identical across every width (the parallel layer's
//      determinism contract, checked here on every bench run).
//
// Flags: the shared bench set (--gpus --seed --threads ...), plus
//   --smoke     shrink both measurements for CI
//   --passes=N  timed decision passes over the stream (default 40)
//   --out=FILE  JSON destination (default BENCH_sched.json)
//   --gate      fail (exit 1) when the hot path regressed:
//                 * Groute/MICCO decisions-per-sec ratio above
//                   --gate-max-ratio (checked-in default 1.8, the measured
//                   post-incremental-scheduler ratio ~1.5 at 8 GPUs plus
//                   headroom; ci.sh additionally gates 64 GPUs at 1.0,
//                   where MICCO's data-centric tiers beat Groute's
//                   all-device scan outright);
//                 * tuner speedup at 4 threads below 1.0 (below 0.9 on
//                   hosts with fewer than 4 cores, where the lane cap
//                   serialises the sweep and only overhead is measurable).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "core/tuner.hpp"
#include "obs/report.hpp"
#include "sched/baselines.hpp"
#include "sched/micco_scheduler.hpp"

namespace micco::bench {
namespace {

/// Streams one executed pass through the simulator (so residency, busy
/// times and memory pressure look like mid-run state), then times `passes`
/// decision-only passes: begin_vector + assign for every pair, nothing
/// else. Returns decisions per second.
double decisions_per_sec(Scheduler& scheduler, const WorkloadStream& stream,
                         const ClusterConfig& config, int passes) {
  ClusterSimulator sim(config);
  for (const VectorWorkload& vec : stream.vectors) {
    scheduler.begin_vector(vec, sim);
    for (const ContractionTask& task : vec.tasks) {
      const DeviceId dev = scheduler.assign(task, sim);
      const ExecuteResult exec = sim.execute(task, dev);
      MICCO_EXPECTS(exec.ok());
    }
    scheduler.end_vector();
    sim.barrier();
  }

  std::uint64_t decisions = 0;
  DeviceId sink = 0;  // keep the assign() result observable
  Stopwatch sw;
  for (int p = 0; p < passes; ++p) {
    for (const VectorWorkload& vec : stream.vectors) {
      scheduler.begin_vector(vec, sim);
      for (const ContractionTask& task : vec.tasks) {
        sink += scheduler.assign(task, sim);
        ++decisions;
      }
      scheduler.end_vector();
    }
  }
  const double elapsed_s = sw.elapsed_ms() / 1e3;
  MICCO_EXPECTS(elapsed_s > 0.0);
  if (sink == static_cast<DeviceId>(-1)) std::printf("(unreachable)\n");
  return static_cast<double>(decisions) / elapsed_s;
}

bool same_labels(const std::vector<TrainingSample>& a,
                 const std::vector<TrainingSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].best_bounds.values != b[i].best_bounds.values ||
        a[i].best_gflops != b[i].best_gflops ||
        a[i].worst_gflops != b[i].worst_gflops) {
      return false;
    }
  }
  return true;
}

int run(const CliArgs& args) {
  Env env = parse_env(args);
  const bool smoke = args.get_bool("smoke", false);
  const int passes = static_cast<int>(args.get_int("passes", smoke ? 4 : 40));
  const std::string out = args.get("out", "BENCH_sched.json");
  const bool gate = args.get_bool("gate", false);
  const double gate_max_ratio = args.get_double("gate-max-ratio", 1.8);
  warn_unused(args);
  print_header("Scheduler & Tuner Micro-Throughput", "hot path");

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "sched_micro");
  report.set("gpus", env.gpus);
  report.set("passes", passes);
  report.set("host_hardware_threads",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  // -- 1. decision throughput -------------------------------------------
  SyntheticConfig cfg = base_synth(env);
  cfg.num_vectors = smoke ? 2 : 6;
  cfg.vector_size = smoke ? 24 : 64;
  cfg.batch = 16;
  const WorkloadStream stream = generate_synthetic(cfg);

  TextTable table;
  table.add_column("scheduler", Align::kLeft);
  table.add_column("decisions/sec");
  obs::JsonValue decisions = obs::JsonValue::object();

  MiccoSchedulerOptions micco_options;
  micco_options.bounds = ReuseBounds{1, 1, 1};  // tiers admit and overflow
  micco_options.seed = env.seed;
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<MiccoScheduler>(micco_options));
  schedulers.push_back(std::make_unique<GrouteScheduler>());
  schedulers.push_back(std::make_unique<DmdaScheduler>());
  double micco_rate = 0.0;
  double groute_rate = 0.0;
  for (const auto& scheduler : schedulers) {
    const double rate =
        decisions_per_sec(*scheduler, stream, env.cluster(), passes);
    table.add_row({scheduler->name(), stats::format(rate / 1e6, 3) + "M"});
    decisions.set(scheduler->name(), rate);
    if (scheduler->name() == "MICCO") micco_rate = rate;
    if (scheduler->name() == "Groute") groute_rate = rate;
  }
  // How many times slower MICCO's richer decision (tier walk + Alg. 2
  // policies) is than Groute's locality scoring; the gate bounds it.
  const double ratio = micco_rate > 0.0 ? groute_rate / micco_rate : 0.0;
  report.set("decisions_per_sec", std::move(decisions));
  report.set("groute_over_micco_ratio", ratio);
  std::printf("%s", table.render().c_str());
  std::printf("Groute/MICCO ratio: %.3f\n", ratio);

  // -- 2. tuner sweep throughput ----------------------------------------
  TunerConfig tuner;
  tuner.samples = smoke ? 3 : 8;
  tuner.vector_sizes = {8, 16};
  tuner.tensor_extents = {128, 256};
  tuner.num_vectors = 3;
  tuner.batch = 8;
  tuner.num_devices = env.gpus;
  tuner.max_bound = 1;
  tuner.seeds_per_sample = 2;
  tuner.seed = env.seed;

  TextTable tuner_table;
  tuner_table.add_column("threads", Align::kLeft);
  tuner_table.add_column("samples/sec");
  tuner_table.add_column("speedup");
  obs::JsonValue sweeps = obs::JsonValue::array();
  std::vector<TrainingSample> reference;
  bool labels_identical = true;
  double base_rate = 0.0;
  double speedup_4t = 0.0;
  // Untimed warm-up pass: the first sweep pays one-off costs (page faults,
  // lazy pool spin-up, cold caches) that used to land entirely on the 1-
  // thread row and inflate every speedup below it.
  parallel::set_threads(1);
  (void)generate_tuning_data(tuner);
  const int reps = smoke ? 2 : 3;
  for (const int threads : {1, 2, 4, 8}) {
    parallel::set_threads(threads);
    // Best-of-N: the minimum elapsed time is the least-perturbed
    // measurement on a shared host; means drag in scheduler noise.
    double rate = 0.0;
    std::vector<TrainingSample> samples;
    for (int rep = 0; rep < reps; ++rep) {
      Stopwatch sw;
      TuningData data = generate_tuning_data(tuner);
      const double r =
          static_cast<double>(tuner.samples) / (sw.elapsed_ms() / 1e3);
      if (r > rate) rate = r;
      samples = std::move(data.samples);
    }
    if (threads == 1) {
      reference = samples;
      base_rate = rate;
    } else if (!same_labels(reference, samples)) {
      labels_identical = false;
    }
    if (threads == 4) speedup_4t = rate / base_rate;
    obs::JsonValue row = obs::JsonValue::object();
    row.set("threads", threads);
    row.set("samples_per_sec", rate);
    row.set("speedup_vs_1t", rate / base_rate);
    sweeps.push_back(std::move(row));
    tuner_table.add_row({std::to_string(threads),
                         stats::format(rate, 2),
                         fmt_speedup(rate / base_rate)});
  }
  parallel::set_threads(env.threads);  // restore the --threads setting
  report.set("tuner", std::move(sweeps));
  report.set("tuner_labels_identical_across_threads", labels_identical);
  std::printf("%s", tuner_table.render().c_str());

  if (!labels_identical) {
    std::fprintf(stderr,
                 "FAIL: tuner labels diverged across thread counts\n");
    return 1;
  }
  std::printf("tuner labels bit-identical across 1/2/4/8 threads\n");

  bool gate_failed = false;
  if (gate) {
    report.set("gate_max_ratio", gate_max_ratio);
    if (ratio > gate_max_ratio) {
      std::fprintf(stderr,
                   "GATE FAIL: Groute/MICCO decisions-per-sec ratio %.3f "
                   "exceeds threshold %.3f (MICCO hot path regressed)\n",
                   ratio, gate_max_ratio);
      gate_failed = true;
    }
    // Below 4 cores the lane cap serialises the 4-thread row, so only the
    // cap's own overhead is measurable; 0.9 bounds that overhead at 10 %.
    const unsigned hw = std::thread::hardware_concurrency();
    const double min_speedup = hw >= 4 ? 1.0 : 0.9;
    report.set("gate_min_speedup_4t", min_speedup);
    if (speedup_4t < min_speedup) {
      std::fprintf(stderr,
                   "GATE FAIL: tuner speedup at 4 threads %.3f below %.3f "
                   "(thread scaling regressed)\n",
                   speedup_4t, min_speedup);
      gate_failed = true;
    }
    if (!gate_failed) {
      std::printf("gate passed: ratio %.3f <= %.3f, 4-thread speedup "
                  "%.3f >= %.3f\n",
                  ratio, gate_max_ratio, speedup_4t, min_speedup);
    }
  }

  obs::write_report_file(report, out);
  std::printf("results written to %s\n", out.c_str());
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
