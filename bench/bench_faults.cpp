// Fault tolerance — graceful degradation under injected faults.
//
// Two experiments on the standard synthetic stream:
//   1. Device loss: kill k of the node's GPUs at the midpoint of the clean
//      run and compare the degraded makespan against the ideal (gpus-k)-GPU
//      run that never had the devices (how close recovery gets to the
//      shrink-the-cluster lower bound).
//   2. Transfer faults: sweep the per-attempt fault probability and measure
//      how retry + backoff stretch the makespan.
#include <cstdio>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "faults/fault_plan.hpp"

namespace micco::bench {
namespace {

RunResult run_micco(const WorkloadStream& stream, const ClusterConfig& cluster,
                    const FaultPlan* plan) {
  const std::unique_ptr<Scheduler> scheduler =
      make_scheduler(SchedulerKind::kMiccoNaive);
  RunOptions options;
  options.faults = plan;
  return run_stream(stream, *scheduler, cluster, options);
}

int run(const CliArgs& args) {
  const Env env = parse_env(args);
  warn_unused(args);
  print_header("Fault tolerance", "robustness extension");

  const WorkloadStream stream = generate_synthetic(base_synth(env));
  const RunResult clean = run_micco(stream, env.cluster(), nullptr);
  const double midpoint_s = clean.metrics.makespan_s / 2.0;

  // -- Experiment 1: kill k devices at the clean run's midpoint ----------
  std::printf("-- device loss at t=%.4f s (midpoint) --\n", midpoint_s);
  TextTable loss_table;
  loss_table.add_column("killed");
  loss_table.add_column("makespan ms");
  loss_table.add_column("GFLOPS");
  loss_table.add_column("re-executed");
  loss_table.add_column("vs ideal (gpus-k)");

  CsvWriter loss_csv;
  for (const char* column :
       {"killed", "makespan_ms", "gflops", "tasks_reexecuted",
        "ideal_makespan_ms", "degradation_ratio"}) {
    loss_csv.add_column(column);
  }

  const int max_kill = env.gpus > 4 ? 3 : env.gpus - 1;
  for (int killed = 0; killed <= max_kill; ++killed) {
    FaultPlan plan;
    for (int dev = 1; dev <= killed; ++dev) {
      plan.device_failures.push_back(DeviceFailure{dev, midpoint_s});
    }
    const RunResult faulted =
        run_micco(stream, env.cluster(), killed > 0 ? &plan : nullptr);

    Env ideal_env = env;
    ideal_env.gpus = env.gpus - killed;
    const RunResult ideal = run_micco(stream, ideal_env.cluster(), nullptr);

    const double ratio =
        faulted.metrics.makespan_s / ideal.metrics.makespan_s;
    loss_table.add_row({std::to_string(killed),
                        stats::format(faulted.total_time_ms, 2),
                        fmt_gflops(faulted.metrics.gflops()),
                        std::to_string(faulted.tasks_reexecuted),
                        stats::format(ratio, 3)});
    loss_csv.add_row({std::to_string(killed),
                      stats::format(faulted.total_time_ms, 4),
                      fmt_gflops(faulted.metrics.gflops()),
                      std::to_string(faulted.tasks_reexecuted),
                      stats::format(ideal.total_time_ms, 4),
                      stats::format(ratio, 4)});
  }
  std::printf("%s\n", loss_table.render().c_str());

  // -- Experiment 2: transient transfer fault probability sweep ----------
  std::printf("-- transient transfer faults (retry + backoff) --\n");
  TextTable fault_table;
  fault_table.add_column("p(fault)");
  fault_table.add_column("makespan ms");
  fault_table.add_column("faults");
  fault_table.add_column("backoff s");
  fault_table.add_column("slowdown vs clean");

  CsvWriter fault_csv;
  for (const char* column : {"probability", "makespan_ms", "transfer_faults",
                             "retry_backoff_s", "slowdown"}) {
    fault_csv.add_column(column);
  }

  for (const double p : {0.0, 0.01, 0.05, 0.1}) {
    FaultPlan plan;
    plan.transfer.probability = p;
    plan.transfer.seed = env.seed;
    const RunResult faulted =
        run_micco(stream, env.cluster(), p > 0.0 ? &plan : nullptr);
    const double slowdown =
        faulted.metrics.makespan_s / clean.metrics.makespan_s;
    fault_table.add_row({stats::format(p, 2),
                         stats::format(faulted.total_time_ms, 2),
                         std::to_string(faulted.metrics.transfer_faults),
                         stats::format(faulted.metrics.retry_backoff_s, 4),
                         stats::format(slowdown, 3)});
    fault_csv.add_row({stats::format(p, 3),
                       stats::format(faulted.total_time_ms, 4),
                       std::to_string(faulted.metrics.transfer_faults),
                       stats::format(faulted.metrics.retry_backoff_s, 6),
                       stats::format(slowdown, 4)});
  }
  std::printf("%s\n", fault_table.render().c_str());

  maybe_write_csv(env, "faults_device_loss", loss_csv);
  maybe_write_csv(env, "faults_transfer_sweep", fault_csv);
  std::printf(
      "expected shape: killing k devices at the midpoint lands near the "
      "(gpus-k)-GPU ideal (ratio ~1, recovery recomputes the casualties' "
      "un-backed outputs); transfer-fault slowdown grows roughly linearly "
      "in the fault probability.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
