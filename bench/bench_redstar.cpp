// Table VI — Real many-body correlation functions in the mini-Redstar
// frontend: a1_rhopi (a1 system), f0d2 and f0d4 (f0 system), each a mix of
// single- and two-particle meson constructions over sixteen time slices.
// Reports tensor size, total device-memory footprint and the MICCO speedup
// over Groute on eight GPUs.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "redstar/correlator.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Real Correlation Functions (Redstar)", "Table VI");

  TrainedBoundsModel model = train_model(env);

  TextTable table;
  table.add_column("Function", Align::kLeft);
  table.add_column("Tensor Size");
  table.add_column("Memory Cost");
  table.add_column("diagrams");
  table.add_column("contractions");
  table.add_column("dedup");
  table.add_column("Groute GFLOPS");
  table.add_column("MICCO GFLOPS");
  table.add_column("Speedup");

  // Table VI's three meson functions, plus the two baryon-system
  // demonstrators (rank-3 hadron nodes; extension beyond the paper's table).
  for (const std::string name :
       {"a1_rhopi", "f0d2", "f0d4", "nucleon_2pt", "nn_system"}) {
    redstar::CorrelatorSpec spec = redstar::real_function(name);
    if (env.quick) {
      spec.time_slices = 4;
      spec.batch = std::max<std::int64_t>(1, spec.batch / 8);
    }
    const redstar::CorrelatorWorkload workload =
        redstar::build_workload(spec);

    const auto entries = compare_schedulers(
        workload.stream, env.cluster(),
        {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal},
        model.provider.get());

    table.add_row(
        {name, std::to_string(spec.extent),
         fmt_bytes_gb(workload.stats.total_bytes),
         std::to_string(workload.stats.diagrams),
         std::to_string(workload.stats.contractions),
         std::to_string(workload.stats.deduplicated),
         fmt_gflops(entries[0].gflops()), fmt_gflops(entries[1].gflops()),
         fmt_speedup(speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                SchedulerKind::kGroute))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: a1_rhopi (tensor 128, 56.05G) 1.49x; f0d2 (256, 4645G) "
      "1.41x; f0d4 (256, 4064G) 1.36x. The claim under reproduction: MICCO "
      "beats the load-balance-only baseline on the three Table VI meson "
      "functions. The baryon rows are demonstrators beyond the paper's "
      "table; nn_system's hot set is tiny (36 tensors on 8 GPUs), the "
      "replicas converge quickly, and balance-only scheduling matches or "
      "beats reuse-aware placement - the small-hot-set boundary of MICCO's "
      "advantage.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
