// Fig. 11 — Memory oversubscription: Groute vs MICCO-optimal while device
// capacity shrinks so the working set is 125 % to 200 % of aggregate device
// memory. Vector size 64, tensor size 384, repeated rate 50 %, both
// distributions. Includes the eviction-sensitive-policy ablation (MICCO
// with the memory policy disabled).
//
// Second half: the eviction-policy sweep (mem/, DESIGN.md §11) over the
// Table VI f0d2/f0d4 functions at 200 % oversubscription. Per policy and
// scheduler it reports eviction-caused transfer bytes — write-backs of
// evicted tensors plus re-fetches of tensors a policy evicted — and writes
// BENCH_mem.json. Flags:
//   --out=FILE  JSON destination (default BENCH_mem.json)
//   --gate      fail (exit 1) when reuse-distance pays more eviction-caused
//               transfer bytes than LRU on either function, or when a
//               policy flips the Groute-vs-MICCO GFLOPS ranking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mem/policy.hpp"
#include "obs/report.hpp"
#include "redstar/correlator.hpp"

namespace micco::bench {
namespace {

/// One policy × scheduler measurement of the sweep.
struct PolicyRun {
  double gflops = 0.0;
  std::uint64_t evictions = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t refetch_bytes = 0;

  std::uint64_t transfer_bytes() const {
    return writeback_bytes + refetch_bytes;
  }
};

PolicyRun run_with_policy(const WorkloadStream& stream,
                          const ClusterConfig& cluster, SchedulerKind kind,
                          mem::EvictPolicyKind policy_kind,
                          BoundsProvider* bounds) {
  const std::unique_ptr<Scheduler> scheduler = make_scheduler(kind);
  const std::unique_ptr<mem::EvictionPolicy> policy =
      mem::make_policy(policy_kind);
  RunOptions options;
  options.bounds = bounds;
  options.evict_policy = policy.get();
  const RunResult result = run_stream(stream, *scheduler, cluster, options);
  PolicyRun out;
  out.gflops = result.metrics.gflops();
  out.evictions = result.metrics.evictions;
  out.writeback_bytes = result.metrics.writeback_bytes;
  out.refetch_bytes = result.metrics.eviction_refetch_bytes;
  return out;
}

int run(const CliArgs& args) {
  Env env = parse_env(args);
  const std::string out = args.get("out", "BENCH_mem.json");
  const bool gate = args.get_bool("gate", false);
  warn_unused(args);
  print_header("Memory Oversubscription", "Fig. 11");

  TrainedBoundsModel model = train_model(env);
  CsvWriter csv;
  for (const char* column :
       {"distribution", "oversub_rate", "groute_gflops", "micco_gflops",
        "speedup", "groute_evictions", "micco_evictions"}) {
    csv.add_column(column);
  }
  const std::vector<double> rates{1.25, 1.50, 1.75, 2.00};

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution --\n", to_string(dist));
    TextTable table;
    table.add_column("oversub");
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO GFLOPS");
    table.add_column("speedup");
    table.add_column("Groute evict");
    table.add_column("MICCO evict");
    table.add_column("no-mem-policy GFLOPS");

    std::vector<double> speedups;
    for (const double rate : rates) {
      SyntheticConfig cfg = base_synth(env);
      cfg.distribution = dist;
      const WorkloadStream stream = generate_synthetic(cfg);

      ClusterConfig cluster = env.cluster();
      // Floor: one task's working set (3 tensors) plus slack must fit.
      const std::uint64_t floor_bytes =
          8 * stream.vectors[0].tasks[0].a.bytes();
      cluster.device_capacity_bytes = capacity_for_oversubscription(
          stream, env.gpus, rate, floor_bytes);

      const auto entries = compare_schedulers(
          stream, cluster,
          {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal},
          model.provider.get());

      // Ablation: same bounds pipeline, memory-eviction policy off.
      MiccoSchedulerOptions no_mem;
      no_mem.eviction_sensitive = false;
      MiccoScheduler ablated(no_mem);
      const RunResult ablated_run =
          run_stream(stream, ablated, cluster, model.provider.get());

      const double speedup = speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                        SchedulerKind::kGroute);
      speedups.push_back(speedup);
      csv.add_row({to_string(dist), stats::format(rate, 2),
                   fmt_gflops(entries[0].gflops()),
                   fmt_gflops(entries[1].gflops()), stats::format(speedup, 4),
                   std::to_string(entries[0].result.metrics.evictions),
                   std::to_string(entries[1].result.metrics.evictions)});
      table.add_row({stats::format(rate * 100, 0) + "%",
                     fmt_gflops(entries[0].gflops()),
                     fmt_gflops(entries[1].gflops()), fmt_speedup(speedup),
                     std::to_string(entries[0].result.metrics.evictions),
                     std::to_string(entries[1].result.metrics.evictions),
                     fmt_gflops(ablated_run.metrics.gflops())});
    }
    std::printf("%s", table.render().c_str());
    std::printf("geomean speedup: %s\n\n",
                fmt_speedup(stats::geomean(speedups)).c_str());
  }
  maybe_write_csv(env, "fig11_oversubscription", csv);
  std::printf(
      "paper shape: GFLOPS decays as oversubscription grows (evictions "
      "dominate); MICCO stays ahead, up to 1.9x, geomean 1.2x (Uniform) / "
      "1.4x (Gaussian).\n");

  // -- Eviction-policy sweep (mem/, DESIGN.md §11) ------------------------
  std::printf("\n-- eviction-policy sweep: f0d2/f0d4 at 200%% "
              "oversubscription --\n");
  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "mem_policies");
  report.set("gpus", env.gpus);
  report.set("oversub_rate", 2.0);

  CsvWriter policy_csv;
  for (const char* column :
       {"function", "policy", "groute_gflops", "micco_gflops", "evictions",
        "writeback_bytes", "refetch_bytes", "transfer_bytes"}) {
    policy_csv.add_column(column);
  }

  bool gate_failed = false;
  obs::JsonValue functions = obs::JsonValue::object();
  for (const std::string name : {"f0d2", "f0d4"}) {
    redstar::CorrelatorSpec spec = redstar::real_function(name);
    if (env.quick) {
      spec.time_slices = 4;
      spec.batch = std::max<std::int64_t>(1, spec.batch / 8);
    }
    const WorkloadStream stream = redstar::build_workload(spec).stream;
    ClusterConfig cluster = env.cluster();
    const std::uint64_t floor_bytes = 8 * stream.vectors[0].tasks[0].a.bytes();
    cluster.device_capacity_bytes =
        capacity_for_oversubscription(stream, env.gpus, 2.0, floor_bytes);

    TextTable table;
    table.add_column("policy", Align::kLeft);
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO GFLOPS");
    table.add_column("MICCO evict");
    table.add_column("writeback MB");
    table.add_column("refetch MB");
    table.add_column("transfer MB");

    obs::JsonValue policies = obs::JsonValue::object();
    // Gate baselines, filled on the LRU row (the first swept policy).
    std::uint64_t lru_transfer = 0;
    double lru_speedup = 1.0;
    for (const mem::EvictPolicyKind kind : mem::all_evict_policies()) {
      const PolicyRun groute = run_with_policy(
          stream, cluster, SchedulerKind::kGroute, kind, nullptr);
      // Transfer accounting is read off the MICCO run — the paper's
      // scheduler is the one the policies co-design with.
      const PolicyRun micco =
          run_with_policy(stream, cluster, SchedulerKind::kMiccoOptimal, kind,
                          model.provider.get());
      const char* policy_name = mem::to_string(kind);
      const double speedup =
          groute.gflops > 0.0 ? micco.gflops / groute.gflops : 0.0;
      if (kind == mem::EvictPolicyKind::kLru) {
        lru_transfer = micco.transfer_bytes();
        lru_speedup = speedup;
      } else if (gate && ((lru_speedup >= 1.0 && speedup < 0.98) ||
                          (lru_speedup < 1.0 && speedup > 1.02))) {
        // A *material* ranking flip: a swing past 2 % in the other
        // direction. Policies lift both schedulers, so hairline lead
        // changes around 1.0x are expected and carry no signal.
        std::fprintf(stderr,
                     "GATE FAIL: %s flips the Groute-vs-MICCO GFLOPS "
                     "ranking on %s (MICCO/Groute %.3f vs %.3f under LRU)\n",
                     policy_name, name.c_str(), speedup, lru_speedup);
        gate_failed = true;
      }
      if (gate && kind == mem::EvictPolicyKind::kReuseDistance &&
          micco.transfer_bytes() > lru_transfer) {
        std::fprintf(stderr,
                     "GATE FAIL: reuse_distance eviction-caused transfer "
                     "bytes %llu exceed LRU's %llu on %s\n",
                     static_cast<unsigned long long>(micco.transfer_bytes()),
                     static_cast<unsigned long long>(lru_transfer),
                     name.c_str());
        gate_failed = true;
      }

      obs::JsonValue row = obs::JsonValue::object();
      row.set("groute_gflops", groute.gflops);
      row.set("micco_gflops", micco.gflops);
      row.set("evictions", micco.evictions);
      row.set("writeback_bytes", micco.writeback_bytes);
      row.set("refetch_bytes", micco.refetch_bytes);
      row.set("transfer_bytes", micco.transfer_bytes());
      policies.set(policy_name, std::move(row));

      const auto mb = [](std::uint64_t bytes) {
        return stats::format(static_cast<double>(bytes) / (1024.0 * 1024.0),
                             1);
      };
      policy_csv.add_row({name, policy_name, fmt_gflops(groute.gflops),
                          fmt_gflops(micco.gflops),
                          std::to_string(micco.evictions),
                          std::to_string(micco.writeback_bytes),
                          std::to_string(micco.refetch_bytes),
                          std::to_string(micco.transfer_bytes())});
      table.add_row({policy_name, fmt_gflops(groute.gflops),
                     fmt_gflops(micco.gflops),
                     std::to_string(micco.evictions),
                     mb(micco.writeback_bytes), mb(micco.refetch_bytes),
                     mb(micco.transfer_bytes())});
    }
    std::printf("%s: %s", name.c_str(), table.render().c_str());
    functions.set(name, std::move(policies));
  }
  report.set("functions", std::move(functions));
  report.set("gate", gate);
  if (gate) report.set("gate_passed", !gate_failed);
  maybe_write_csv(env, "mem_policy_sweep", policy_csv);
  obs::write_report_file(report, out);
  std::printf("results written to %s\n", out.c_str());
  if (gate && !gate_failed) {
    std::printf("gate passed: reuse_distance transfer bytes <= LRU on "
                "f0d2/f0d4, GFLOPS ranking stable across policies\n");
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
