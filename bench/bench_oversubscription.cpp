// Fig. 11 — Memory oversubscription: Groute vs MICCO-optimal while device
// capacity shrinks so the working set is 125 % to 200 % of aggregate device
// memory. Vector size 64, tensor size 384, repeated rate 50 %, both
// distributions. Includes the eviction-sensitive-policy ablation (MICCO
// with the memory policy disabled).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Memory Oversubscription", "Fig. 11");

  TrainedBoundsModel model = train_model(env);
  CsvWriter csv;
  for (const char* column :
       {"distribution", "oversub_rate", "groute_gflops", "micco_gflops",
        "speedup", "groute_evictions", "micco_evictions"}) {
    csv.add_column(column);
  }
  const std::vector<double> rates{1.25, 1.50, 1.75, 2.00};

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution --\n", to_string(dist));
    TextTable table;
    table.add_column("oversub");
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO GFLOPS");
    table.add_column("speedup");
    table.add_column("Groute evict");
    table.add_column("MICCO evict");
    table.add_column("no-mem-policy GFLOPS");

    std::vector<double> speedups;
    for (const double rate : rates) {
      SyntheticConfig cfg = base_synth(env);
      cfg.distribution = dist;
      const WorkloadStream stream = generate_synthetic(cfg);

      ClusterConfig cluster = env.cluster();
      // Floor: one task's working set (3 tensors) plus slack must fit.
      const std::uint64_t floor_bytes =
          8 * stream.vectors[0].tasks[0].a.bytes();
      cluster.device_capacity_bytes = capacity_for_oversubscription(
          stream, env.gpus, rate, floor_bytes);

      const auto entries = compare_schedulers(
          stream, cluster,
          {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal},
          model.provider.get());

      // Ablation: same bounds pipeline, memory-eviction policy off.
      MiccoSchedulerOptions no_mem;
      no_mem.eviction_sensitive = false;
      MiccoScheduler ablated(no_mem);
      const RunResult ablated_run =
          run_stream(stream, ablated, cluster, model.provider.get());

      const double speedup = speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                        SchedulerKind::kGroute);
      speedups.push_back(speedup);
      csv.add_row({to_string(dist), stats::format(rate, 2),
                   fmt_gflops(entries[0].gflops()),
                   fmt_gflops(entries[1].gflops()), stats::format(speedup, 4),
                   std::to_string(entries[0].result.metrics.evictions),
                   std::to_string(entries[1].result.metrics.evictions)});
      table.add_row({stats::format(rate * 100, 0) + "%",
                     fmt_gflops(entries[0].gflops()),
                     fmt_gflops(entries[1].gflops()), fmt_speedup(speedup),
                     std::to_string(entries[0].result.metrics.evictions),
                     std::to_string(entries[1].result.metrics.evictions),
                     fmt_gflops(ablated_run.metrics.gflops())});
    }
    std::printf("%s", table.render().c_str());
    std::printf("geomean speedup: %s\n\n",
                fmt_speedup(stats::geomean(speedups)).c_str());
  }
  maybe_write_csv(env, "fig11_oversubscription", csv);
  std::printf(
      "paper shape: GFLOPS decays as oversubscription grows (evictions "
      "dominate); MICCO stays ahead, up to 1.9x, geomean 1.2x (Uniform) / "
      "1.4x (Gaussian).\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
