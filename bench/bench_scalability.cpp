// Fig. 9 — Scalability: Groute vs MICCO-optimal GFLOPS while growing the
// cluster from 1 to 8 GPUs. Tensor size 384, vector size 64, repeated rate
// 50 %, both distributions.
#include <cstdio>

#include "bench_common.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  // The scalability story needs the working set to fit a single device, so
  // the 1-GPU baseline measures reuse hardness rather than capacity thrash;
  // a lighter batch than the other figures' default accomplishes that.
  if (!args.has("batch")) env.batch = env.quick ? 8 : 16;
  warn_unused(args);
  print_header("Scalability", "Fig. 9");

  CsvWriter csv;
  for (const char* column : {"distribution", "gpus", "groute_gflops",
                             "micco_gflops", "speedup"}) {
    csv.add_column(column);
  }

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution --\n", to_string(dist));
    TextTable table;
    table.add_column("GPUs");
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO GFLOPS");
    table.add_column("speedup");
    table.add_column("MICCO scaling vs 1 GPU");

    double gflops_at_one = 0.0;
    for (int gpus = 1; gpus <= env.gpus; gpus *= 2) {
      Env local = env;
      local.gpus = gpus;
      // The model must be trained for the cluster size it schedules.
      TrainedBoundsModel model = train_model(local);

      SyntheticConfig cfg = base_synth(env);
      cfg.distribution = dist;
      const WorkloadStream stream = generate_synthetic(cfg);

      const auto entries = compare_schedulers(
          stream, local.cluster(),
          {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal},
          model.provider.get());
      const double groute = entries[0].gflops();
      const double micco = entries[1].gflops();
      if (gpus == 1) gflops_at_one = micco;

      csv.add_row({to_string(dist), std::to_string(gpus),
                   fmt_gflops(groute), fmt_gflops(micco),
                   stats::format(micco / groute, 4)});
      table.add_row({std::to_string(gpus), fmt_gflops(groute),
                     fmt_gflops(micco), fmt_speedup(micco / groute),
                     fmt_speedup(micco / gflops_at_one)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  maybe_write_csv(env, "fig9_scalability", csv);
  std::printf(
      "paper shape: GFLOPS grows sublinearly with GPU count (more devices "
      "-> harder reuse, memory ops dominate small tensors); the MICCO/Groute "
      "speedup widens with the GPU count (1.18x at 2 -> 1.68x at 8; equal at "
      "1 GPU where placement is trivial).\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
