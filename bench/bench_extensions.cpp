// Extensions and ablations beyond the paper's evaluated system — the
// future-work directions Section VII names (asynchronous data copy,
// peer-to-peer communication, multi-node clusters) plus two design-choice
// ablations (pair visit order, and the stronger StarPU-style data-aware
// baseline the related-work section discusses).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sched/oracle.hpp"

namespace micco::bench {
namespace {

SyntheticConfig workload_for(const Env& env, DataDistribution dist) {
  SyntheticConfig cfg = base_synth(env);
  cfg.repeated_rate = 0.5;
  cfg.distribution = dist;
  return cfg;
}

double gflops_of(const WorkloadStream& stream, const ClusterConfig& cluster,
                 SchedulerKind kind, BoundsProvider* bounds,
                 PairOrdering ordering = PairOrdering::kAsGiven) {
  const std::unique_ptr<Scheduler> sched = make_scheduler(kind);
  RunOptions options;
  options.bounds = kind == SchedulerKind::kMiccoOptimal ? bounds : nullptr;
  options.ordering = ordering;
  return run_stream(stream, *sched, cluster, options).metrics.gflops();
}

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Extensions & Ablations", "Sec. VII future work");

  TrainedBoundsModel model = train_model(env);

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    const WorkloadStream stream = generate_synthetic(workload_for(env, dist));
    std::printf("-- %s distribution (vector 64, tensor 384, 50%% repeats) "
                "--\n",
                to_string(dist));

    // (1) Communication extensions: P2P replica fetches and asynchronous
    //     copy (dual-engine overlap), separately and together.
    {
      TextTable table;
      table.add_column("configuration", Align::kLeft);
      table.add_column("Groute GFLOPS");
      table.add_column("MICCO GFLOPS");
      table.add_column("speedup");
      struct Variant {
        const char* label;
        bool p2p;
        bool overlap;
      };
      for (const Variant v :
           {Variant{"baseline (host staging, sync copy)", false, false},
            Variant{"+ P2P replica fetches", true, false},
            Variant{"+ async copy (overlap)", false, true},
            Variant{"+ both", true, true}}) {
        ClusterConfig cluster = env.cluster();
        cluster.p2p_enabled = v.p2p;
        cluster.overlap_transfers = v.overlap;
        const double groute = gflops_of(stream, cluster,
                                        SchedulerKind::kGroute, nullptr);
        const double micco =
            gflops_of(stream, cluster, SchedulerKind::kMiccoOptimal,
                      model.provider.get());
        table.add_row({v.label, fmt_gflops(groute), fmt_gflops(micco),
                       fmt_speedup(micco / groute)});
      }
      std::printf("%s", table.render().c_str());
    }

    // (2) Multi-node topologies at a constant total GPU count.
    if (env.gpus >= 4) {
      TextTable table;
      table.add_column("topology", Align::kLeft);
      table.add_column("MICCO GFLOPS");
      table.add_column("internode transfers");
      for (const int per_node : {env.gpus, env.gpus / 2, env.gpus / 4}) {
        if (per_node < 1) continue;
        ClusterConfig cluster = env.cluster();
        cluster.p2p_enabled = true;
        cluster.devices_per_node = per_node;
        MiccoScheduler sched;
        RunOptions options;
        options.bounds = model.provider.get();
        const RunResult r = run_stream(stream, sched, cluster, options);
        const int nodes = (env.gpus + per_node - 1) / per_node;
        table.add_row({std::to_string(nodes) + " node(s) x " +
                           std::to_string(per_node) + " GPUs",
                       fmt_gflops(r.metrics.gflops()),
                       std::to_string(r.metrics.internode_transfers)});
      }
      std::printf("%s", table.render().c_str());
    }

    // (3) Pair visit-order ablation (the paper processes pairs as given).
    {
      TextTable table;
      table.add_column("pair ordering", Align::kLeft);
      table.add_column("MICCO GFLOPS");
      for (const PairOrdering ordering :
           {PairOrdering::kAsGiven, PairOrdering::kReuseTierFirst,
            PairOrdering::kLargestFirst}) {
        table.add_row(
            {to_string(ordering),
             fmt_gflops(gflops_of(stream, env.cluster(),
                                  SchedulerKind::kMiccoOptimal,
                                  model.provider.get(), ordering))});
      }
      std::printf("%s", table.render().c_str());
    }

    // (4) The stronger data-aware baseline from the related work.
    {
      TextTable table;
      table.add_column("scheduler", Align::kLeft);
      table.add_column("GFLOPS");
      for (const SchedulerKind kind :
           {SchedulerKind::kGroute, SchedulerKind::kDmda,
            SchedulerKind::kMiccoNaive, SchedulerKind::kMiccoOptimal}) {
        table.add_row(
            {to_string(kind),
             fmt_gflops(gflops_of(stream, env.cluster(), kind,
                                  model.provider.get()))});
      }
      std::printf("%s\n", table.render().c_str());
    }
  }
  // (5) Optimality gap: per-vector exhaustive/beam oracle vs the greedy
  //     heuristic on a small stream (the search the paper rules out as NP).
  {
    SyntheticConfig small = base_synth(env);
    small.vector_size = 8;
    small.num_vectors = 6;
    small.repeated_rate = 0.75;
    const WorkloadStream stream = generate_synthetic(small);
    ClusterConfig cluster = env.cluster();
    cluster.num_devices = std::min(env.gpus, 4);

    MiccoSchedulerOptions opts;
    opts.bounds = ReuseBounds{1, 1, 1};
    MiccoScheduler sched(opts);
    const RunResult micco = run_stream(stream, sched, cluster);
    const ExecutionMetrics oracle = run_oracle(stream, cluster);
    std::printf(
        "optimality gap (vector size 8, %d GPUs): MICCO %.2f ms vs "
        "per-vector oracle %.2f ms -> %.1f%% above optimal\n\n",
        cluster.num_devices, micco.metrics.makespan_s * 1e3,
        oracle.makespan_s * 1e3,
        100.0 * (micco.metrics.makespan_s / oracle.makespan_s - 1.0));
  }

  std::printf(
      "expected: P2P and async copy lift both schedulers and narrow (but do "
      "not erase) MICCO's lead; splitting the node raises internode traffic "
      "and lowers throughput; dmda closes part of the Groute-MICCO gap by "
      "seeing locality but still lacks reuse bounds and eviction "
      "awareness.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
