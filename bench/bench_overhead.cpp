// Table V — Execution time: MICCO-optimal's scheduling overhead (wall-clock
// spent in the scheduler + regression inference) against the total
// execution time of the stream, for a sum of 10 vectors at vector size 64,
// tensor size 384, repeated rate 50 %, in both distributions.
//
// --gate adds the observability regression gate (DESIGN.md §7): a long
// stream is run with tracing fully attached (span sink + trace context +
// per-decision latency scratch, the daemon's configuration) and fully
// detached (the batch default) in adjacent alternating pairs, and the
// gate fails (exit 1) when the median paired thread-CPU delta says
// tracing costs more than 2 % end to end.
#include <algorithm>
#include <cstdio>
#include <ctime>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace micco::bench {
namespace {

/// CPU milliseconds consumed by the calling thread so far. The gate
/// measures CPU time, not wall time: tracing overhead is pure CPU work on
/// the dispatching thread, and CPU time does not tick while a noisy
/// co-tenant preempts us — wall-time deltas on shared CI hosts were
/// measured to swing ±5 % between identical invocations, an order of
/// magnitude above the 2 % budget under test.
double thread_cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// One timed run of `stream`; `traced` attaches the full tracing bundle the
/// daemon uses (spans to an in-memory sink, per-decision latency scratch
/// flushed into a registry histogram afterwards, exactly as the dispatcher
/// does). Returns thread-CPU milliseconds for the whole run_stream call.
double timed_run(const WorkloadStream& stream, const ClusterConfig& cluster,
                 bool traced) {
  MiccoScheduler scheduler;
  obs::Telemetry telemetry;
  obs::MemorySpanSink sink;
  obs::TraceContext ctx;
  ctx.trace_id = "gate";
  ctx.job_id = 1;
  ctx.tenant = "bench";
  obs::HistogramScratch scratch(obs::names::decision_latency_bounds_us());

  RunOptions options;
  options.telemetry = &telemetry;
  if (traced) {
    options.span_sink = &sink;
    options.trace_context = &ctx;
    options.decision_latency = &scratch;
  }

  const double start_ms = thread_cpu_ms();
  const RunResult result = run_stream(stream, scheduler, cluster, options);
  if (traced) {
    obs::Histogram& h = telemetry.registry.histogram(
        obs::names::kSchedDecisionLatencyUs,
        obs::names::decision_latency_bounds_us());
    scratch.flush_into(h);
  }
  const double ms = thread_cpu_ms() - start_ms;
  (void)result;
  return ms;
}

/// The tracing-overhead gate. Runs the two arms in adjacent pairs
/// (alternating order within each pair, so neither arm systematically
/// inherits a warm cache) and judges the median of per-pair relative
/// deltas. Adjacent pairing cancels interference that is sustained across
/// a pair — frequency scaling, a memory-hungry co-tenant — which single-
/// arm estimators (min-of-reps, both wall and CPU time) were measured to
/// absorb as ±3–5 % swings on shared hosts; the median then needs more
/// than half the pairs skewed the same way before the verdict moves.
int run_gate(const Env& env) {
  constexpr int kPairs = 150;
  constexpr double kMaxOverhead = 0.02;

  SyntheticConfig cfg = base_synth(env);
  cfg.distribution = DataDistribution::kUniform;
  // A much longer stream than Table V's, so one run lasts several
  // milliseconds and timer granularity is amortised to nothing. Vectors are
  // production-sized (Table II's upper range), which is what the budget is
  // defined against: the two per-vector spans are a fixed cost, so tiny
  // vectors would overstate the traced share of real workloads.
  cfg.num_vectors = 25;
  cfg.vector_size = 256;
  const WorkloadStream stream = generate_synthetic(cfg);

  // Warm-up: first touch of the stream (page faults, allocator growth)
  // belongs to neither arm.
  timed_run(stream, env.cluster(), false);

  std::vector<double> deltas;
  deltas.reserve(kPairs);
  double base_ms = 0.0;
  double traced_ms = 0.0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const bool traced_first = pair % 2 != 0;
    const double first = timed_run(stream, env.cluster(), traced_first);
    const double second = timed_run(stream, env.cluster(), !traced_first);
    const double base = traced_first ? second : first;
    const double traced = traced_first ? first : second;
    if (base > 0.0) deltas.push_back((traced - base) / base);
    base_ms = pair == 0 ? base : std::min(base_ms, base);
    traced_ms = pair == 0 ? traced : std::min(traced_ms, traced);
  }
  std::sort(deltas.begin(), deltas.end());
  const double overhead = deltas.empty() ? 0.0 : deltas[deltas.size() / 2];

  const bool pass = overhead < kMaxOverhead;
  std::printf("tracing overhead gate: baseline min %.3f ms CPU, traced min "
              "%.3f ms CPU, median paired overhead %+.2f%% (budget "
              "%.0f%%): %s\n",
              base_ms, traced_ms, 100.0 * overhead, 100.0 * kMaxOverhead,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

int run(const CliArgs& args) {
  Env env = parse_env(args);
  const bool gate = args.get_bool("gate", false);
  warn_unused(args);
  if (gate) return run_gate(env);
  print_header("Scheduling Overhead vs Total Time", "Table V");

  TrainedBoundsModel model = train_model(env);

  TextTable table;
  table.add_column("Distribution", Align::kLeft);
  table.add_column("Scheduling Overhead (ms)");
  table.add_column("Total Time (ms)");
  table.add_column("overhead share");

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    SyntheticConfig cfg = base_synth(env);
    cfg.distribution = dist;
    const WorkloadStream stream = generate_synthetic(cfg);

    MiccoScheduler scheduler;
    const RunResult result =
        run_stream(stream, scheduler, env.cluster(), model.provider.get());

    table.add_row(
        {to_string(dist), stats::format(result.scheduling_overhead_ms, 2),
         stats::format(result.total_time_ms, 2),
         stats::format(100.0 * result.scheduling_overhead_ms /
                           (result.total_time_ms > 0 ? result.total_time_ms
                                                     : 1.0),
                       2) +
             "%"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: 8.27 ms / 4925.73 ms (Uniform, 0.17%%) and 8.52 ms / "
      "1550.88 ms (Gaussian, 0.55%%);\nthe claim under reproduction is that "
      "scheduling overhead is negligible relative to execution.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
