// Table V — Execution time: MICCO-optimal's scheduling overhead (wall-clock
// spent in the scheduler + regression inference) against the total
// execution time of the stream, for a sum of 10 vectors at vector size 64,
// tensor size 384, repeated rate 50 %, in both distributions.
#include <cstdio>

#include "bench_common.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Scheduling Overhead vs Total Time", "Table V");

  TrainedBoundsModel model = train_model(env);

  TextTable table;
  table.add_column("Distribution", Align::kLeft);
  table.add_column("Scheduling Overhead (ms)");
  table.add_column("Total Time (ms)");
  table.add_column("overhead share");

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    SyntheticConfig cfg = base_synth(env);
    cfg.distribution = dist;
    const WorkloadStream stream = generate_synthetic(cfg);

    MiccoScheduler scheduler;
    const RunResult result =
        run_stream(stream, scheduler, env.cluster(), model.provider.get());

    table.add_row(
        {to_string(dist), stats::format(result.scheduling_overhead_ms, 2),
         stats::format(result.total_time_ms, 2),
         stats::format(100.0 * result.scheduling_overhead_ms /
                           (result.total_time_ms > 0 ? result.total_time_ms
                                                     : 1.0),
                       2) +
             "%"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: 8.27 ms / 4925.73 ms (Uniform, 0.17%%) and 8.52 ms / "
      "1550.88 ms (Gaussian, 0.55%%);\nthe claim under reproduction is that "
      "scheduling overhead is negligible relative to execution.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
