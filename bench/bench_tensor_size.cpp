// Fig. 10 — Impact of tensor size: Groute vs MICCO-optimal across tensor
// sizes {128, 256, 384, 768}. Vector size 64, repeated rate 50 %, both
// distributions, eight GPUs.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Impact of Tensor Size", "Fig. 10");

  TrainedBoundsModel model = train_model(env);
  CsvWriter csv;
  for (const char* column : {"distribution", "tensor_size", "groute_gflops",
                             "micco_gflops", "speedup"}) {
    csv.add_column(column);
  }
  const std::vector<std::int64_t> extents{128, 256, 384, 768};

  for (const DataDistribution dist :
       {DataDistribution::kUniform, DataDistribution::kGaussian}) {
    std::printf("-- %s distribution --\n", to_string(dist));
    TextTable table;
    table.add_column("tensor size");
    table.add_column("Groute GFLOPS");
    table.add_column("MICCO GFLOPS");
    table.add_column("speedup");

    for (const std::int64_t extent : extents) {
      SyntheticConfig cfg = base_synth(env);
      cfg.tensor_extent = extent;
      cfg.distribution = dist;
      const WorkloadStream stream = generate_synthetic(cfg);

      const auto entries = compare_schedulers(
          stream, env.cluster(),
          {SchedulerKind::kGroute, SchedulerKind::kMiccoOptimal},
          model.provider.get());
      const double speedup = speedup_of(entries, SchedulerKind::kMiccoOptimal,
                                        SchedulerKind::kGroute);
      csv.add_row({to_string(dist), std::to_string(extent),
                   fmt_gflops(entries[0].gflops()),
                   fmt_gflops(entries[1].gflops()),
                   stats::format(speedup, 4)});
      table.add_row({std::to_string(extent), fmt_gflops(entries[0].gflops()),
                     fmt_gflops(entries[1].gflops()), fmt_speedup(speedup)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  maybe_write_csv(env, "fig10_tensor_size", csv);
  std::printf(
      "paper shape: absolute GFLOPS rises with tensor size (kernels get "
      "more efficient); MICCO wins at every size, 1.35x-1.92x.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
