// Table IV — R^2 score of the three reuse-bound regression models (Linear
// Regression, Gradient Boosting, Random Forest) on the held-out 20 % of the
// offline corpus, with the paper's hyperparameters (150 boosting stages /
// 150 trees, learning rate 0.1). Also reports training and inference cost.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner.hpp"

namespace micco::bench {
namespace {

int run(const CliArgs& args) {
  Env env = parse_env(args);
  warn_unused(args);
  print_header("Regression Model Comparison", "Table IV");

  TunerConfig tuner;
  tuner.samples = env.samples;
  tuner.num_vectors = env.vectors;
  tuner.batch = env.batch;
  tuner.num_devices = env.gpus;
  tuner.seed = env.seed;
  if (env.quick) {
    tuner.vector_sizes = {8, 16};
    tuner.tensor_extents = {128, 384};
  }
  std::printf("building offline corpus: %d samples, 20%% held out...\n\n",
              tuner.samples);
  const TuningData data = generate_tuning_data(tuner);

  const std::vector<std::pair<ml::RegressorFactory, std::string>> models{
      {linear_regression_factory(), "LinearRegression"},
      {gradient_boosting_factory(), "GradientBoosting"},
      {random_forest_factory(), "RandomForest"}};

  TextTable table;
  table.add_column("model", Align::kLeft);
  table.add_column("R^2 (mean)");
  table.add_column("R^2 bound1");
  table.add_column("R^2 bound2");
  table.add_column("R^2 bound3");
  table.add_column("train (ms)");
  table.add_column("inference (us)");

  for (const auto& [factory, name] : models) {
    const TrainedBoundsModel trained =
        train_bounds_model(data.samples, factory, name, tuner.max_bound,
                           env.seed);
    table.add_row({name, stats::format(trained.report.mean_r2, 2),
                   stats::format(trained.report.per_bound_r2[0], 2),
                   stats::format(trained.report.per_bound_r2[1], 2),
                   stats::format(trained.report.per_bound_r2[2], 2),
                   stats::format(trained.report.train_ms, 1),
                   stats::format(trained.report.inference_us, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: LinearRegression 0.57, GradientBoosting 0.91, RandomForest "
      "0.95. The claim under reproduction is the ordering - the "
      "characteristics->bounds surface is non-linear, so tree ensembles "
      "far outscore the linear baseline, and inference stays in the "
      "microsecond range.\n");
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
