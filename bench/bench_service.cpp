// bench_service — closed-loop throughput/latency of the scheduling daemon.
//
// Starts an in-process Server on a private Unix-domain socket, then drives
// it with N tenant client threads x M jobs each in closed loop: every
// thread keeps exactly one job outstanding (submit, poll status to a
// terminal state, read the server-measured queue latency from the result
// document, repeat). Written as BENCH_service.json:
//   1. jobs/sec over the whole session (all tenants, wall clock), and
//   2. p50 / p99 / max queue latency (submit -> terminal, measured by the
//      server's own session clock, so client poll granularity cannot skew
//      the tail), plus
//   3. the accounting totals (in a closed loop nothing queues past the
//      admission limits, so admitted == completed and rejected == 0).
//
// Flags: the shared bench set (--gpus --seed --threads ...), plus
//   --tenants=N  client threads, one tenant each (default 4)
//   --jobs=M     jobs per tenant (default 25)
//   --journal=FILE         run with the durable job journal enabled, to
//   --journal-fsync=POLICY measure the WAL's cost (never|interval|always;
//                          default always, matching the daemon)
//   --smoke      shrink for CI
//   --out=FILE   JSON destination (default BENCH_service.json)
//
// --threads sets the server's worker pool: 1 keeps the deterministic
// serial loop, >1 serves I/O on (threads - 1) lanes beside the dispatcher.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "obs/report.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "workload/serialize.hpp"

namespace micco::bench {
namespace {

using service::Client;
using service::Server;
using service::ServerConfig;

double percentile(std::vector<double> xs, double q) {
  MICCO_EXPECTS(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/// One tenant's closed loop; returns the server-measured queue latency of
/// every job it ran.
std::vector<double> drive_tenant(const std::string& socket,
                                 const std::string& tenant,
                                 const std::string& workload, int jobs) {
  Client client;
  std::string error;
  if (!client.connect(socket, &error)) {
    std::fprintf(stderr, "FAIL: %s: %s\n", tenant.c_str(), error.c_str());
    return {};
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    const auto submitted = client.submit(tenant, "", workload, &error);
    if (!submitted.has_value() || !submitted->at("ok").as_bool()) {
      std::fprintf(stderr, "FAIL: %s submit %d: %s\n", tenant.c_str(), j,
                   submitted.has_value() ? submitted->dump().c_str()
                                         : error.c_str());
      return latencies_ms;
    }
    const auto job_id =
        static_cast<std::uint64_t>(submitted->at("job_id").as_int());
    for (;;) {
      const auto reply = client.status(job_id, &error);
      if (!reply.has_value()) {
        std::fprintf(stderr, "FAIL: %s status: %s\n", tenant.c_str(),
                     error.c_str());
        return latencies_ms;
      }
      const std::string& state = reply->at("state").as_string();
      if (state == "QUEUED" || state == "RUNNING") {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      if (const obs::JsonValue* result = reply->find("result")) {
        latencies_ms.push_back(result->at("queue_latency_ms").as_double());
      }
      break;
    }
  }
  return latencies_ms;
}

int run(const CliArgs& args) {
  Env env = parse_env(args);
  const bool smoke = args.get_bool("smoke", false);
  const int tenants =
      static_cast<int>(args.get_int("tenants", smoke ? 2 : 4));
  const int jobs = static_cast<int>(args.get_int("jobs", smoke ? 4 : 25));
  const std::string out = args.get("out", "BENCH_service.json");
  warn_unused(args);
  print_header("Service Throughput & Queue Latency", "daemon closed loop");

  const std::string socket =
      "/tmp/micco_bench_svc_" + std::to_string(::getpid()) + ".sock";
  ::unlink(socket.c_str());

  ServerConfig config;
  config.socket_path = socket;
  config.cluster = env.cluster();
  config.seed = env.seed;
  config.io_lanes = parallel::configured_threads() - 1;
  // Closed loop: at most `tenants` jobs are in flight, so generous limits
  // mean admission control never rejects and every submit runs.
  config.admission.max_queue_per_tenant = static_cast<std::size_t>(jobs) + 1;
  config.admission.max_queued_total =
      static_cast<std::size_t>(tenants) * static_cast<std::size_t>(jobs) + 1;
  config.journal.path = args.get("journal", "");
  const std::string fsync_name = args.get("journal-fsync", "always");
  if (const auto policy = service::parse_fsync_policy(fsync_name)) {
    config.journal.fsync = *policy;
  } else {
    std::fprintf(stderr, "FAIL: --journal-fsync wants never|interval|always, "
                         "got '%s'\n",
                 fsync_name.c_str());
    return 1;
  }

  Server server(std::move(config));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
    return 1;
  }
  int exit_code = -1;
  std::thread serve_thread([&] { exit_code = server.serve(); });

  // One small deterministic workload per tenant, serialized once up front
  // so the timed loop measures the daemon, not workload generation.
  std::vector<std::string> workloads;
  for (int t = 0; t < tenants; ++t) {
    SyntheticConfig cfg = base_synth(env);
    cfg.num_vectors = 1;
    cfg.vector_size = smoke ? 6 : 12;
    cfg.seed = env.seed + static_cast<std::uint64_t>(t);
    std::ostringstream text;
    save_stream(generate_synthetic(cfg), text);
    workloads.push_back(text.str());
  }

  Stopwatch wall;
  std::vector<std::vector<double>> per_tenant(
      static_cast<std::size_t>(tenants));
  std::vector<std::thread> drivers;
  for (int t = 0; t < tenants; ++t) {
    drivers.emplace_back([&, t] {
      per_tenant[static_cast<std::size_t>(t)] =
          drive_tenant(socket, "tenant" + std::to_string(t),
                       workloads[static_cast<std::size_t>(t)], jobs);
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double elapsed_s = wall.elapsed_ms() / 1e3;

  std::vector<double> latencies_ms;
  for (const std::vector<double>& xs : per_tenant) {
    latencies_ms.insert(latencies_ms.end(), xs.begin(), xs.end());
  }

  // Accounting snapshot before drain, then a clean shutdown.
  Client control;
  obs::JsonValue accounting = obs::JsonValue::object();
  if (control.connect(socket, &error)) {
    if (const auto stats = control.stats(&error)) {
      accounting = stats->at("stats");
    }
    control.drain(&error);
    control.close();
  }
  serve_thread.join();

  const auto total_jobs = static_cast<std::size_t>(tenants) *
                          static_cast<std::size_t>(jobs);
  const bool complete = latencies_ms.size() == total_jobs;
  if (!complete) {
    std::fprintf(stderr, "FAIL: %zu of %zu jobs finished (exit %d)\n",
                 latencies_ms.size(), total_jobs, exit_code);
  }
  if (latencies_ms.empty() || exit_code != 0) return 1;

  const double jobs_per_sec =
      static_cast<double>(latencies_ms.size()) / elapsed_s;
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double max_ms =
      *std::max_element(latencies_ms.begin(), latencies_ms.end());

  TextTable table;
  table.add_column("metric", Align::kLeft);
  table.add_column("value");
  table.add_row({"tenants x jobs", std::to_string(tenants) + " x " +
                                       std::to_string(jobs)});
  table.add_row({"io lanes",
                 std::to_string(parallel::configured_threads() - 1)});
  table.add_row({"jobs/sec", stats::format(jobs_per_sec, 1)});
  table.add_row({"queue latency p50 ms", stats::format(p50, 3)});
  table.add_row({"queue latency p99 ms", stats::format(p99, 3)});
  table.add_row({"queue latency max ms", stats::format(max_ms, 3)});
  std::printf("%s", table.render().c_str());

  obs::JsonValue report = obs::JsonValue::object();
  report.set("bench", "service");
  report.set("gpus", env.gpus);
  report.set("tenants", tenants);
  report.set("jobs_per_tenant", jobs);
  report.set("total_jobs", static_cast<std::uint64_t>(latencies_ms.size()));
  report.set("io_lanes",
             static_cast<std::int64_t>(parallel::configured_threads() - 1));
  report.set("elapsed_s", elapsed_s);
  report.set("jobs_per_sec", jobs_per_sec);
  obs::JsonValue latency = obs::JsonValue::object();
  latency.set("p50_ms", p50);
  latency.set("p99_ms", p99);
  latency.set("max_ms", max_ms);
  latency.set("mean_ms", stats::mean(latencies_ms));
  report.set("queue_latency", std::move(latency));
  report.set("accounting", std::move(accounting));
  obs::write_report_file(report, out);
  std::printf("results written to %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace micco::bench

int main(int argc, char** argv) {
  return micco::bench::run(micco::CliArgs(argc, argv));
}
